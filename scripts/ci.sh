#!/usr/bin/env bash
# CI gate: build, test, lint, and guard the observability vocabulary.
#
#   ./scripts/ci.sh
#
# The last step extracts every `EngineEvent` variant from
# crates/core/src/events.rs and fails if any is missing from
# tests/observability.rs — adding an event without display/serde test
# coverage is a CI failure.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (default thread budget)"
cargo test -q

echo "==> cargo test -q (SETRULES_THREADS=1: exact serial paths)"
# Parallelism must be invisible — the whole suite has to pass with the
# worker pool pinned off just as it does with the default budget.
SETRULES_THREADS=1 cargo test -q

echo "==> cargo test -q (SETRULES_THREADS=8: every exchange forced on)"
# ...and with the pool forced wide, so every exchange-eligible stage
# (scan, join build/probe, WHERE, two-phase aggregation, distinct,
# sort/top-K) actually partitions while the whole suite's golden outputs
# stay bit-identical.
SETRULES_THREADS=8 cargo test -q

echo "==> cargo test -q (SETRULES_INCR=0: full re-scan condition evaluation)"
# Incremental condition evaluation must be a pure optimisation — the whole
# suite has to pass with the delta-driven evaluator pinned off and every
# condition re-scanned from the composite window.
SETRULES_INCR=0 cargo test -q

echo "==> cargo test -q (SETRULES_INCR=0 x SETRULES_THREADS=8: re-scan on the wide pool)"
# The two switches must compose: re-scan-only evaluation with every
# exchange-eligible stage partitioned is the configuration the
# incremental evaluator's differential suites are implicitly trusted
# against, so it gets its own full-suite pass.
SETRULES_INCR=0 SETRULES_THREADS=8 cargo test -q

echo "==> fault-injection sweep (bounded: first/middle/last site per kind)"
# The full sweep (every (kind, n) site on the paper workloads) runs as part
# of `cargo test` above; this re-runs it explicitly in the env-bounded mode
# so a CI log names the crash-consistency gate even when tests are filtered.
FAULT_SWEEP_FAST=1 cargo test -q -p setrules-core --test fault_injection

echo "==> WAL crash-recovery sweep (bounded: first/middle/last site per kind)"
# Kill-at-every-WAL-record recovery: the full sweep (every wal_append /
# wal_sync site on the paper workloads, both sync policies, plus torn-tail
# truncation at every byte and the 300-case durable-vs-in-memory
# differential) runs under `cargo test` above; this names the durability
# gate explicitly in the CI log with the env-bounded site selection.
FAULT_SWEEP_FAST=1 cargo test -q -p setrules-core --test wal_recovery

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench smoke (query pipeline acceptance counters)"
# BENCH_FAST shrinks warm-up/measurement budgets; the bench itself asserts
# the pipeline acceptance bars (>=2x per-row-work reduction on the 3-way
# join, plan-cache hits on rule refire) and writes the counters snapshot.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench query_pipeline
test -f "$PWD/target/bench-snapshots/BENCH_query_pipeline.json" \
  || { echo "error: BENCH_query_pipeline.json not written" >&2; exit 1; }

echo "==> bench smoke (ordered-index acceptance counters)"
# In-bench asserts: >=10x range scan over full scan on 100k rows, >=5x
# order-by-limit via sort elision, min/max answered without a scan.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench ordered_index
test -f "$PWD/target/bench-snapshots/BENCH_ordered_index.json" \
  || { echo "error: BENCH_ordered_index.json not written" >&2; exit 1; }

echo "==> bench smoke (parallel-execution determinism + speedup bars)"
# In-bench asserts: byte-identical relations and row-level counters for
# pooled vs single-threaded execution, parallel_scans > 0 on the pooled
# engine, and (on >=4 cores) >=2x on the partitioned filter scan.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench parallel_exec
test -f "$PWD/target/bench-snapshots/BENCH_parallel_exec.json" \
  || { echo "error: BENCH_parallel_exec.json not written" >&2; exit 1; }

echo "==> bench smoke (exchange-operator determinism + speedup bars)"
# In-bench asserts: byte-identical relations and row-level counters for
# pooled vs single-threaded group-by aggregation / distinct / top-K,
# parallel_scans > 0 on every query, and (on >=4 cores) >=2x on the
# two-phase group-by aggregation.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench exchange
test -f "$PWD/target/bench-snapshots/BENCH_exchange.json" \
  || { echo "error: BENCH_exchange.json not written" >&2; exit 1; }

echo "==> bench smoke (WAL group commit vs sync-per-record)"
# In-bench asserts: byte-identical images across in-memory / group-commit /
# sync-per-record engines, recovery reproduces the image, exactly one sink
# append+sync per transaction under group commit, and >=20x sync
# amplification for the per-record baseline.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench wal
test -f "$PWD/target/bench-snapshots/BENCH_wal.json" \
  || { echo "error: BENCH_wal.json not written" >&2; exit 1; }

echo "==> bench smoke (incremental condition evaluation vs re-scan)"
# In-bench asserts: identical firing traces and state images for the
# incremental and re-scan evaluators on the refire storm, repairs (not
# rebuilds) on reconsideration, zero fallbacks, and >=10x wall-clock
# speedup over per-consideration re-scan.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench incremental
test -f "$PWD/target/bench-snapshots/BENCH_incremental.json" \
  || { echo "error: BENCH_incremental.json not written" >&2; exit 1; }

echo "==> bench smoke (widened incremental shapes: joins, accumulators, shared cursors)"
# In-bench asserts: identical firing traces and state images on the
# two-view join storm and the 60-rule shared-view aggregate storm, zero
# fallbacks for the widened shapes, shared-cursor fan-out
# (incr_shared_hits covers most reconsiderations), and >=10x wall-clock
# speedup on both storms.
BENCH_FAST=1 BENCH_OUT_DIR="$PWD/target/bench-snapshots" \
  cargo bench -p setrules-bench --bench incremental_wide
test -f "$PWD/target/bench-snapshots/BENCH_incremental_wide.json" \
  || { echo "error: BENCH_incremental_wide.json not written" >&2; exit 1; }

echo "==> EngineEvent enum guard"
# Variant names: capitalized identifiers at 4-space indent inside the
# `pub enum EngineEvent { ... }` block.
variants=$(awk '/^pub enum EngineEvent \{/,/^\}/' crates/core/src/events.rs \
  | sed -n 's/^    \([A-Z][A-Za-z0-9]*\).*$/\1/p' | sort -u)
if [ -z "$variants" ]; then
  echo "error: could not extract EngineEvent variants" >&2
  exit 1
fi
missing=0
for v in $variants; do
  if ! grep -q "EngineEvent::$v" tests/observability.rs; then
    echo "error: EngineEvent::$v has no display/serde coverage in tests/observability.rs" >&2
    missing=1
  fi
done
if [ "$missing" -ne 0 ]; then
  echo "add a sample for each new variant to event_samples()" >&2
  exit 1
fi
echo "    all $(echo "$variants" | wc -l) EngineEvent variants covered"

echo "CI OK"
