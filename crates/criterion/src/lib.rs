//! Offline drop-in replacement for the `criterion` benchmark harness.
//!
//! The build container has no network access to crates.io, so this crate
//! reimplements exactly the API surface the workspace's benches use:
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`],
//! [`BenchmarkGroup`], [`BenchmarkId`], [`BatchSize`], and a [`Bencher`]
//! with `iter` / `iter_batched`. Timing is wall-clock via
//! [`std::time::Instant`]; each benchmark reports the median of its
//! samples. Statistical rigor is intentionally lighter than real
//! criterion — the goal is that `cargo bench` runs, produces comparable
//! numbers, and exercises the same code paths.
//!
//! Environment knobs:
//! * `BENCH_FAST=1` shrinks warm-up/measurement budgets (used by CI to
//!   smoke-test benches quickly).

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Top-level benchmark driver, passed to each `criterion_group!` target.
pub struct Criterion {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var("BENCH_FAST").map(|v| v == "1").unwrap_or(false);
        if fast {
            Criterion {
                warm_up_time: Duration::from_millis(20),
                measurement_time: Duration::from_millis(80),
                sample_size: 10,
            }
        } else {
            Criterion {
                warm_up_time: Duration::from_millis(500),
                measurement_time: Duration::from_secs(2),
                sample_size: 50,
            }
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            fast: std::env::var("BENCH_FAST").map(|v| v == "1").unwrap_or(false),
            _parent: std::marker::PhantomData,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group(name.to_string());
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    fast: bool,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Set how long to warm up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        if !self.fast {
            self.warm_up_time = d;
        }
        self
    }

    /// Set the target total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        if !self.fast {
            self.measurement_time = d;
        }
        self
    }

    /// Set how many samples to collect.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        if !self.fast {
            self.sample_size = n.max(1);
        }
        self
    }

    /// Benchmark a routine parameterised by an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.0, |b| f(b, input));
        self
    }

    /// Benchmark a routine with no parameter.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self {
        let id = id.into();
        self.run(&id, |b| f(b));
        self
    }

    /// End the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let mut b = Bencher {
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        let label = format!("{}/{}", self.name, id);
        match summarize(&mut b.samples) {
            Some((median, n)) => eprintln!("  {label}: {} /iter ({n} samples)", fmt_ns(median)),
            None => eprintln!("  {label}: no samples collected"),
        }
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", name.into(), param))
    }

    /// Just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId(param.to_string())
    }
}

/// How `iter_batched` sizes its setup batches. Only `PerIteration` is
/// used by this workspace; all variants behave identically here (fresh
/// setup per iteration), which is the most conservative interpretation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Run setup before every routine invocation.
    PerIteration,
    /// Nominally few large batches; treated as `PerIteration` here.
    SmallInput,
    /// Nominally one large batch; treated as `PerIteration` here.
    LargeInput,
}

/// Passed to each benchmark closure; drives timed iterations.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Time a routine with no per-iteration setup.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm up and estimate the per-iteration cost.
        let per_iter = {
            let start = Instant::now();
            let mut n = 0u64;
            while start.elapsed() < self.warm_up_time || n == 0 {
                black_box(f());
                n += 1;
            }
            start.elapsed().as_secs_f64() / n as f64
        };
        // Pick an inner-loop count so one sample is long enough to time.
        let inner = ((1e-4 / per_iter.max(1e-12)).ceil() as u64).clamp(1, 1_000_000);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..inner {
                black_box(f());
            }
            self.samples.push(start.elapsed().as_secs_f64() / inner as f64);
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }

    /// Time a routine whose input is rebuilt by `setup` each iteration;
    /// only the routine is timed.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        // Warm up once (setup cost excluded from the estimate's use).
        {
            let input = setup();
            black_box(routine(input));
        }
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn summarize(samples: &mut [f64]) -> Option<(f64, usize)> {
    if samples.is_empty() {
        return None;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    Some((samples[samples.len() / 2], samples.len()))
}

fn fmt_ns(secs: f64) -> String {
    let ns = secs * 1e9;
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Define a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` running the listed groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_and_samples() {
        std::env::set_var("BENCH_FAST", "1");
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
            .sample_size(3);
        let mut ran = 0u32;
        g.bench_with_input(BenchmarkId::new("add", 4), &4u64, |b, &n| {
            ran += 1;
            b.iter(|| n + 1);
        });
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::PerIteration);
        });
        g.finish();
        assert_eq!(ran, 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("set", 10).0, "set/10");
        assert_eq!(BenchmarkId::from_parameter("d3_f4").0, "d3_f4");
    }
}
