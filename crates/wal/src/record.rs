//! Typed log records and their JSON codec.
//!
//! Records are *physical redo*: DML records carry the exact tuple handle
//! the original execution issued (handles are global, monotone, and never
//! reused — §2 — and the engine's `state_image` prints them, so replay
//! must reproduce them bit for bit). `Commit`/`Abort` carry the handle
//! high-water mark so numbers burned by rolled-back inserts stay burned
//! across recovery. DDL records carry the statement's canonical SQL (the
//! `Display` form of the parsed AST, which reparses to the same AST).

use setrules_json::Json;
use setrules_storage::Value;

use crate::WalError;

/// One write-ahead-log record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A transaction opened.
    Begin,
    /// A tuple was inserted with handle `handle` and the given values.
    Insert {
        /// Target table name.
        table: String,
        /// The exact handle the insert issued.
        handle: u64,
        /// The full tuple, in column order.
        values: Vec<Value>,
    },
    /// The tuple with `handle` was deleted.
    Delete {
        /// Target table name.
        table: String,
        /// The deleted tuple's handle.
        handle: u64,
    },
    /// The tuple with `handle` was updated; `values` is the complete
    /// *post-update* tuple (physical redo, not per-column deltas).
    Update {
        /// Target table name.
        table: String,
        /// The updated tuple's handle.
        handle: u64,
        /// The full new tuple, in column order.
        values: Vec<Value>,
    },
    /// `create table` / `drop table`, as canonical SQL.
    TableDdl {
        /// The statement's canonical SQL.
        sql: String,
    },
    /// `create index` / `drop index`, as canonical SQL.
    IndexDdl {
        /// The statement's canonical SQL.
        sql: String,
    },
    /// Rule DDL (`create`/`drop`/`activate`/`deactivate rule`,
    /// `create rule priority`), as canonical SQL.
    RuleDdl {
        /// The statement's canonical SQL.
        sql: String,
    },
    /// The transaction committed — including every triggered rule action
    /// that precedes this record since the matching [`WalRecord::Begin`].
    Commit {
        /// Handle high-water mark at commit (handles ever issued).
        handles: u64,
    },
    /// The transaction aborted gracefully; its preceding records must be
    /// discarded on replay, but the handles it burned stay burned.
    Abort {
        /// Handle high-water mark at abort.
        handles: u64,
    },
    /// A full-state checkpoint; replay restores it and then applies only
    /// the records that follow.
    Checkpoint {
        /// The engine-encoded state (schema, rows with handles, rules).
        state: Json,
    },
    /// The deferred transition window a commit leaves behind (§5.3):
    /// inside a transaction, the last such record before `Commit` is the
    /// pending window recovery must re-present to `process_deferred`;
    /// outside any transaction it applies immediately (a durable
    /// `clear_deferred`).
    DeferredWindow {
        /// The engine-encoded window (handles, old tuples, columns).
        state: Json,
    },
}

impl WalRecord {
    /// Stable snake_case tag for this record kind (used as the JSON `"t"`
    /// field and in `EngineEvent::WalAppend`).
    pub fn kind(&self) -> &'static str {
        match self {
            WalRecord::Begin => "begin",
            WalRecord::Insert { .. } => "insert",
            WalRecord::Delete { .. } => "delete",
            WalRecord::Update { .. } => "update",
            WalRecord::TableDdl { .. } => "table_ddl",
            WalRecord::IndexDdl { .. } => "index_ddl",
            WalRecord::RuleDdl { .. } => "rule_ddl",
            WalRecord::Commit { .. } => "commit",
            WalRecord::Abort { .. } => "abort",
            WalRecord::Checkpoint { .. } => "checkpoint",
            WalRecord::DeferredWindow { .. } => "deferred_window",
        }
    }

    /// Encode to the framed JSON payload.
    pub fn to_json(&self) -> Json {
        let tag = |t: &str| ("t".to_string(), Json::Str(t.to_string()));
        match self {
            WalRecord::Begin => Json::Object(vec![tag("begin")]),
            WalRecord::Insert { table, handle, values } => Json::Object(vec![
                tag("insert"),
                ("table".into(), Json::Str(table.clone())),
                ("h".into(), Json::Int(*handle as i64)),
                ("v".into(), Json::Array(values.iter().map(value_to_json).collect())),
            ]),
            WalRecord::Delete { table, handle } => Json::Object(vec![
                tag("delete"),
                ("table".into(), Json::Str(table.clone())),
                ("h".into(), Json::Int(*handle as i64)),
            ]),
            WalRecord::Update { table, handle, values } => Json::Object(vec![
                tag("update"),
                ("table".into(), Json::Str(table.clone())),
                ("h".into(), Json::Int(*handle as i64)),
                ("v".into(), Json::Array(values.iter().map(value_to_json).collect())),
            ]),
            WalRecord::TableDdl { sql } => {
                Json::Object(vec![tag("table_ddl"), ("sql".into(), Json::Str(sql.clone()))])
            }
            WalRecord::IndexDdl { sql } => {
                Json::Object(vec![tag("index_ddl"), ("sql".into(), Json::Str(sql.clone()))])
            }
            WalRecord::RuleDdl { sql } => {
                Json::Object(vec![tag("rule_ddl"), ("sql".into(), Json::Str(sql.clone()))])
            }
            WalRecord::Commit { handles } => {
                Json::Object(vec![tag("commit"), ("handles".into(), Json::Int(*handles as i64))])
            }
            WalRecord::Abort { handles } => {
                Json::Object(vec![tag("abort"), ("handles".into(), Json::Int(*handles as i64))])
            }
            WalRecord::Checkpoint { state } => {
                Json::Object(vec![tag("checkpoint"), ("state".into(), state.clone())])
            }
            WalRecord::DeferredWindow { state } => {
                Json::Object(vec![tag("deferred_window"), ("state".into(), state.clone())])
            }
        }
    }

    /// Decode from a framed JSON payload.
    pub fn from_json(j: &Json) -> Result<WalRecord, WalError> {
        let tag = j
            .get("t")
            .and_then(Json::as_str)
            .ok_or_else(|| WalError::Record("missing record tag".into()))?;
        let str_field = |k: &str| -> Result<String, WalError> {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| WalError::Record(format!("{tag}: missing '{k}'")))
        };
        let u64_field = |k: &str| -> Result<u64, WalError> {
            j.get(k)
                .and_then(Json::as_i64)
                .and_then(|i| u64::try_from(i).ok())
                .ok_or_else(|| WalError::Record(format!("{tag}: missing '{k}'")))
        };
        let values = || -> Result<Vec<Value>, WalError> {
            j.get("v")
                .and_then(Json::as_array)
                .ok_or_else(|| WalError::Record(format!("{tag}: missing 'v'")))?
                .iter()
                .map(value_from_json)
                .collect()
        };
        match tag {
            "begin" => Ok(WalRecord::Begin),
            "insert" => Ok(WalRecord::Insert {
                table: str_field("table")?,
                handle: u64_field("h")?,
                values: values()?,
            }),
            "delete" => Ok(WalRecord::Delete { table: str_field("table")?, handle: u64_field("h")? }),
            "update" => Ok(WalRecord::Update {
                table: str_field("table")?,
                handle: u64_field("h")?,
                values: values()?,
            }),
            "table_ddl" => Ok(WalRecord::TableDdl { sql: str_field("sql")? }),
            "index_ddl" => Ok(WalRecord::IndexDdl { sql: str_field("sql")? }),
            "rule_ddl" => Ok(WalRecord::RuleDdl { sql: str_field("sql")? }),
            "commit" => Ok(WalRecord::Commit { handles: u64_field("handles")? }),
            "abort" => Ok(WalRecord::Abort { handles: u64_field("handles")? }),
            "checkpoint" => Ok(WalRecord::Checkpoint {
                state: j
                    .get("state")
                    .cloned()
                    .ok_or_else(|| WalError::Record("checkpoint: missing 'state'".into()))?,
            }),
            "deferred_window" => Ok(WalRecord::DeferredWindow {
                state: j
                    .get("state")
                    .cloned()
                    .ok_or_else(|| WalError::Record("deferred_window: missing 'state'".into()))?,
            }),
            other => Err(WalError::Record(format!("unknown record tag '{other}'"))),
        }
    }
}

/// Encode a storage [`Value`] for the log.
///
/// Floats are written as `{"f": <IEEE-754 bits as i64>}` rather than as
/// JSON numbers: the log must round-trip *exactly* (including `-0.0`,
/// `NaN`, and infinities, which [`Json::float`] would flatten to `null`),
/// because replay rebuilds an image compared byte-for-byte against the
/// original.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Null => Json::Null,
        Value::Bool(b) => Json::Bool(*b),
        Value::Int(i) => Json::Int(*i),
        Value::Float(f) => Json::Object(vec![("f".to_string(), Json::Int(f.to_bits() as i64))]),
        Value::Text(s) => Json::Str(s.clone()),
    }
}

/// Decode a storage [`Value`] written by [`value_to_json`].
pub fn value_from_json(j: &Json) -> Result<Value, WalError> {
    match j {
        Json::Null => Ok(Value::Null),
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Int(i) => Ok(Value::Int(*i)),
        Json::Str(s) => Ok(Value::Text(s.clone())),
        Json::Object(_) => {
            let bits = j
                .get("f")
                .and_then(Json::as_i64)
                .ok_or_else(|| WalError::Record("malformed float value".into()))?;
            Ok(Value::Float(f64::from_bits(bits as u64)))
        }
        Json::Float(_) | Json::Array(_) => Err(WalError::Record("malformed value".into())),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: WalRecord) {
        let back = WalRecord::from_json(&rec.to_json()).unwrap();
        assert_eq!(back, rec);
    }

    #[test]
    fn records_round_trip_through_json() {
        roundtrip(WalRecord::Begin);
        roundtrip(WalRecord::Insert {
            table: "emp".into(),
            handle: 7,
            values: vec![
                Value::Text("Jane".into()),
                Value::Int(1),
                Value::Float(95000.0),
                Value::Null,
            ],
        });
        roundtrip(WalRecord::Delete { table: "dept".into(), handle: 3 });
        roundtrip(WalRecord::Update {
            table: "emp".into(),
            handle: 7,
            values: vec![Value::Bool(true), Value::Float(-0.0)],
        });
        roundtrip(WalRecord::TableDdl { sql: "create table t (k int)".into() });
        roundtrip(WalRecord::IndexDdl { sql: "create index on t (k)".into() });
        roundtrip(WalRecord::RuleDdl { sql: "drop rule r".into() });
        roundtrip(WalRecord::Commit { handles: 42 });
        roundtrip(WalRecord::Abort { handles: 42 });
        roundtrip(WalRecord::Checkpoint { state: Json::obj([("tables", Json::Array(vec![]))]) });
        roundtrip(WalRecord::DeferredWindow {
            state: Json::obj([("ins", Json::Array(vec![Json::Int(7)]))]),
        });
    }

    #[test]
    fn float_values_round_trip_exactly() {
        for f in [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY, f64::MIN_POSITIVE] {
            let j = value_to_json(&Value::Float(f));
            let Value::Float(back) = value_from_json(&j).unwrap() else {
                panic!("float decoded as non-float");
            };
            assert_eq!(back.to_bits(), f.to_bits(), "{f} lost bits");
        }
        // The bit-exact codec must not collapse 2.0 into the integer 2.
        let j = value_to_json(&Value::Float(2.0));
        assert!(matches!(value_from_json(&j).unwrap(), Value::Float(v) if v == 2.0));
    }

    #[test]
    fn unknown_tags_and_malformed_fields_are_errors() {
        assert!(WalRecord::from_json(&Json::obj([("t", Json::Str("nope".into()))])).is_err());
        assert!(WalRecord::from_json(&Json::obj([("x", Json::Int(1))])).is_err());
        assert!(
            WalRecord::from_json(&Json::obj([("t", Json::Str("insert".into()))])).is_err(),
            "insert without table/h/v"
        );
    }
}
