//! The buffered log writer: group-commit batching over a [`LogSink`].
//!
//! [`WalWriter`] encodes records into an in-process buffer; [`flush`]
//! hands the buffer to the sink in one append, and [`sync`] flushes then
//! crosses the fsync boundary. Under group commit a whole transaction —
//! `Begin`, its DML, every rule-action write, `Commit` — reaches the sink
//! as one append and one sync. The writer never decides *when* to sync:
//! the engine drives the schedule (and polls its fault injector first),
//! which is what makes every append and sync an addressable crash site
//! for the recovery sweep.
//!
//! [`flush`]: WalWriter::flush
//! [`sync`]: WalWriter::sync

use crate::frame;
use crate::record::WalRecord;
use crate::sink::{FileSink, LogSink};
use crate::{SinkSpec, WalConfig, WalError};

/// A buffered writer over a [`LogSink`], plus the recovery scan that runs
/// when the log is opened.
#[derive(Debug)]
pub struct WalWriter {
    sink: Box<dyn LogSink>,
    buf: Vec<u8>,
    synced_len: u64,
    config: WalConfig,
}

/// What [`WalWriter::open`] found in the existing log.
#[derive(Debug)]
pub struct OpenOutcome {
    /// Every valid record, in append order.
    pub records: Vec<WalRecord>,
    /// Bytes of torn or corrupt tail that were discarded (the sink was
    /// truncated back to the last valid frame boundary).
    pub truncated_bytes: u64,
}

impl WalWriter {
    /// Open the configured sink, scan whatever it holds, truncate any
    /// torn tail, and return the writer positioned for appending.
    pub fn open(config: WalConfig) -> Result<(WalWriter, OpenOutcome), WalError> {
        let mut sink: Box<dyn LogSink> = match &config.sink {
            SinkSpec::Path(p) => Box::new(FileSink::open(p)?),
            SinkSpec::Memory(m) => Box::new(m.clone()),
        };
        let data = sink.read_all()?;
        let (records, valid_len) = frame::scan(&data);
        let truncated_bytes = data.len() as u64 - valid_len;
        if truncated_bytes > 0 {
            sink.truncate(valid_len)?;
        }
        let writer = WalWriter { sink, buf: Vec::new(), synced_len: valid_len, config };
        Ok((writer, OpenOutcome { records, truncated_bytes }))
    }

    /// The configuration this writer was opened with.
    pub fn config(&self) -> &WalConfig {
        &self.config
    }

    /// Encode `rec` into the group-commit buffer (no sink I/O).
    pub fn append_record(&mut self, rec: &WalRecord) {
        frame::encode_into(&mut self.buf, rec);
    }

    /// Hand the buffered bytes to the sink (one append), leaving them
    /// *appended but not yet durable*.
    pub fn flush(&mut self) -> Result<(), WalError> {
        if !self.buf.is_empty() {
            self.sink.append(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flush, then cross the fsync boundary: everything appended so far
    /// is durable afterwards.
    pub fn sync(&mut self) -> Result<(), WalError> {
        self.flush()?;
        self.sink.sync()?;
        self.synced_len = self.sink.len();
        Ok(())
    }

    /// Drop everything that is not durable: clear the buffer and truncate
    /// the sink back to the last synced length. This is the engine's
    /// "crash" transition — after an injected WAL fault the unsynced
    /// suffix is what a real kill would have lost.
    pub fn discard_unsynced(&mut self) -> Result<(), WalError> {
        self.buf.clear();
        if self.sink.len() > self.synced_len {
            self.sink.truncate(self.synced_len)?;
        }
        Ok(())
    }

    /// Bytes currently buffered in process (not yet appended).
    pub fn buffered_len(&self) -> usize {
        self.buf.len()
    }

    /// Bytes known durable (through the last successful [`Self::sync`]).
    pub fn synced_len(&self) -> u64 {
        self.synced_len
    }

    /// Total sink length (appended, durable or not).
    pub fn sink_len(&self) -> u64 {
        self.sink.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::{SharedMemSink, SinkOp};
    use crate::SyncPolicy;
    use setrules_storage::Value;

    fn mem_config(sink: &SharedMemSink) -> WalConfig {
        WalConfig::memory(sink.clone())
    }

    #[test]
    fn group_commit_is_one_append_one_sync() {
        let mem = SharedMemSink::new();
        let (mut w, _) = WalWriter::open(mem_config(&mem)).unwrap();
        w.append_record(&WalRecord::Begin);
        w.append_record(&WalRecord::Insert {
            table: "t".into(),
            handle: 1,
            values: vec![Value::Int(1)],
        });
        w.append_record(&WalRecord::Commit { handles: 1 });
        assert_eq!(mem.appends(), 0, "records buffer in process");
        w.sync().unwrap();
        assert_eq!((mem.appends(), mem.syncs()), (1, 1));
        let (records, _) = frame::scan(&mem.bytes());
        assert_eq!(records.len(), 3);
    }

    #[test]
    fn discard_unsynced_reverts_to_the_last_sync_boundary() {
        let mem = SharedMemSink::new();
        let (mut w, _) = WalWriter::open(mem_config(&mem)).unwrap();
        w.append_record(&WalRecord::Begin);
        w.append_record(&WalRecord::Commit { handles: 0 });
        w.sync().unwrap();
        let durable = mem.bytes();

        w.append_record(&WalRecord::Begin);
        w.flush().unwrap(); // appended but never synced
        w.append_record(&WalRecord::Commit { handles: 9 }); // still buffered
        assert!(mem.bytes().len() > durable.len());
        w.discard_unsynced().unwrap();
        assert_eq!(mem.bytes(), durable);
        assert_eq!(w.buffered_len(), 0);
    }

    #[test]
    fn open_truncates_a_torn_tail_and_returns_the_valid_prefix() {
        let mem = SharedMemSink::new();
        let (mut w, _) = WalWriter::open(mem_config(&mem)).unwrap();
        w.append_record(&WalRecord::Begin);
        w.append_record(&WalRecord::Commit { handles: 0 });
        w.sync().unwrap();
        let clean = mem.bytes();
        // Simulate a torn write: half of a third record.
        let mut torn = clean.clone();
        let mut extra = Vec::new();
        frame::encode_into(&mut extra, &WalRecord::Begin);
        torn.extend_from_slice(&extra[..extra.len() / 2]);
        mem.set_bytes(torn);

        let (w2, outcome) = WalWriter::open(mem_config(&mem)).unwrap();
        assert_eq!(outcome.records.len(), 2);
        assert_eq!(outcome.truncated_bytes as usize, extra.len() / 2);
        assert_eq!(mem.bytes(), clean, "tail truncated on open");
        assert_eq!(w2.synced_len(), clean.len() as u64);
        assert!(mem.ops().contains(&SinkOp::Truncate(clean.len() as u64)));
    }

    #[test]
    fn sync_policy_is_carried_in_the_config() {
        let mem = SharedMemSink::new();
        let cfg = mem_config(&mem).with_sync(SyncPolicy::EachRecord).with_checkpoint_every(4);
        let (w, _) = WalWriter::open(cfg).unwrap();
        assert_eq!(w.config().sync, SyncPolicy::EachRecord);
        assert_eq!(w.config().checkpoint_every, 4);
    }
}
