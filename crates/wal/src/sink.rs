//! Log sinks: where framed bytes go.
//!
//! [`LogSink`] is the fsync-boundary abstraction — `append` hands bytes
//! to the medium, `sync` makes everything appended so far durable. The
//! engine treats `sync` as the only durability point: anything appended
//! but not yet synced is assumed lost in a crash (and the test harness
//! enforces exactly that by truncating a [`SharedMemSink`] back to the
//! synced length when it simulates a kill).

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::WalError;

/// An append-only byte log with an explicit durability boundary.
pub trait LogSink: std::fmt::Debug {
    /// Append bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError>;
    /// Make every appended byte durable (the fsync boundary).
    fn sync(&mut self) -> Result<(), WalError>;
    /// Current length in bytes (including appended-but-unsynced bytes).
    fn len(&self) -> u64;
    /// Whether the log is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Read the whole log (recovery).
    fn read_all(&mut self) -> Result<Vec<u8>, WalError>;
    /// Truncate the log to `len` bytes (discarding a torn tail or
    /// unsynced appends).
    fn truncate(&mut self, len: u64) -> Result<(), WalError>;
}

fn io_err(e: std::io::Error) -> WalError {
    WalError::Io(e.to_string())
}

/// A [`LogSink`] backed by a file; `sync` is `File::sync_data`.
#[derive(Debug)]
pub struct FileSink {
    file: File,
    path: PathBuf,
    len: u64,
}

impl FileSink {
    /// Open (creating if absent) the log file at `path`.
    pub fn open(path: &Path) -> Result<FileSink, WalError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(io_err)?;
        let len = file.metadata().map_err(io_err)?.len();
        Ok(FileSink { file, path: path.to_path_buf(), len })
    }

    /// The file path this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl LogSink for FileSink {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        self.file.seek(SeekFrom::Start(self.len)).map_err(io_err)?;
        self.file.write_all(bytes).map_err(io_err)?;
        self.len += bytes.len() as u64;
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        self.file.sync_data().map_err(io_err)
    }

    fn len(&self) -> u64 {
        self.len
    }

    fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
        self.file.seek(SeekFrom::Start(0)).map_err(io_err)?;
        let mut buf = Vec::with_capacity(self.len as usize);
        self.file.read_to_end(&mut buf).map_err(io_err)?;
        Ok(buf)
    }

    fn truncate(&mut self, len: u64) -> Result<(), WalError> {
        self.file.set_len(len).map_err(io_err)?;
        self.len = len;
        Ok(())
    }
}

/// One operation a [`SharedMemSink`] observed (for tests asserting the
/// write/sync schedule, e.g. "group commit syncs once per transaction").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SinkOp {
    /// `append` of this many bytes.
    Append(u64),
    /// `sync`.
    Sync,
    /// `truncate` to this length.
    Truncate(u64),
}

#[derive(Debug, Default)]
struct MemInner {
    data: Vec<u8>,
    ops: Vec<SinkOp>,
    appends: u64,
    syncs: u64,
}

/// An in-memory [`LogSink`] behind a shared handle.
///
/// Cloning shares the underlying buffer, so a test can keep a handle,
/// drop the engine (simulating a kill), and reopen a new engine on the
/// same "disk". Every `append`/`sync`/`truncate` is recorded in an op
/// trace, and the raw bytes can be read back, replaced, truncated, or
/// bit-flipped for torn-tail and corruption tests.
#[derive(Debug, Clone, Default)]
pub struct SharedMemSink {
    inner: Arc<Mutex<MemInner>>,
}

impl SharedMemSink {
    /// A fresh, empty sink.
    pub fn new() -> SharedMemSink {
        SharedMemSink::default()
    }

    /// A copy of the log's raw bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.inner.lock().expect("sink lock").data.clone()
    }

    /// Replace the log's raw bytes (corruption / torn-tail harnesses).
    pub fn set_bytes(&self, data: Vec<u8>) {
        self.inner.lock().expect("sink lock").data = data;
    }

    /// XOR one byte at `offset` with `mask` (single-byte corruption).
    pub fn flip_byte(&self, offset: usize, mask: u8) {
        self.inner.lock().expect("sink lock").data[offset] ^= mask;
    }

    /// The operation trace since creation (or the last [`Self::clear_ops`]).
    pub fn ops(&self) -> Vec<SinkOp> {
        self.inner.lock().expect("sink lock").ops.clone()
    }

    /// Forget the operation trace (the byte log is untouched).
    pub fn clear_ops(&self) {
        self.inner.lock().expect("sink lock").ops.clear();
    }

    /// Total `append` calls observed.
    pub fn appends(&self) -> u64 {
        self.inner.lock().expect("sink lock").appends
    }

    /// Total `sync` calls observed.
    pub fn syncs(&self) -> u64 {
        self.inner.lock().expect("sink lock").syncs
    }
}

impl LogSink for SharedMemSink {
    fn append(&mut self, bytes: &[u8]) -> Result<(), WalError> {
        let mut g = self.inner.lock().expect("sink lock");
        g.data.extend_from_slice(bytes);
        g.appends += 1;
        let n = bytes.len() as u64;
        g.ops.push(SinkOp::Append(n));
        Ok(())
    }

    fn sync(&mut self) -> Result<(), WalError> {
        let mut g = self.inner.lock().expect("sink lock");
        g.syncs += 1;
        g.ops.push(SinkOp::Sync);
        Ok(())
    }

    fn len(&self) -> u64 {
        self.inner.lock().expect("sink lock").data.len() as u64
    }

    fn read_all(&mut self) -> Result<Vec<u8>, WalError> {
        Ok(self.bytes())
    }

    fn truncate(&mut self, len: u64) -> Result<(), WalError> {
        let mut g = self.inner.lock().expect("sink lock");
        g.data.truncate(len as usize);
        g.ops.push(SinkOp::Truncate(len));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_sink_records_every_operation() {
        let handle = SharedMemSink::new();
        let mut sink = handle.clone();
        sink.append(b"abc").unwrap();
        sink.sync().unwrap();
        sink.append(b"de").unwrap();
        sink.truncate(3).unwrap();
        assert_eq!(handle.bytes(), b"abc");
        assert_eq!(
            handle.ops(),
            vec![SinkOp::Append(3), SinkOp::Sync, SinkOp::Append(2), SinkOp::Truncate(3)]
        );
        assert_eq!((handle.appends(), handle.syncs()), (2, 1));
    }

    #[test]
    fn file_sink_round_trips_and_truncates() {
        let dir = std::env::temp_dir().join(format!("setrules-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("log.wal");
        let _ = std::fs::remove_file(&path);
        {
            let mut sink = FileSink::open(&path).unwrap();
            sink.append(b"hello ").unwrap();
            sink.append(b"world").unwrap();
            sink.sync().unwrap();
            assert_eq!(sink.len(), 11);
        }
        {
            let mut sink = FileSink::open(&path).unwrap();
            assert_eq!(sink.read_all().unwrap(), b"hello world");
            sink.truncate(5).unwrap();
            sink.append(b"!").unwrap();
            assert_eq!(sink.read_all().unwrap(), b"hello!");
        }
        let _ = std::fs::remove_file(&path);
    }
}
