//! The on-disk frame: `[len: u32 LE][crc32(payload): u32 LE][payload]`,
//! where payload is a record's compact JSON — and the torn-tail-tolerant
//! scanner that walks a byte buffer frame by frame.
//!
//! The scanner's contract is the recovery contract: it decodes frames
//! until the first sign of damage — a short header, a length that runs
//! past the buffer, a checksum mismatch, unparseable JSON, or an unknown
//! record shape — and reports how many bytes formed valid frames, so the
//! writer can truncate the torn tail and resume appending from a clean
//! boundary. It never panics on arbitrary bytes.

use setrules_json::Json;

use crate::record::WalRecord;

/// Bytes of frame header preceding each payload.
pub const FRAME_HEADER: usize = 8;

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append one framed record to `out`.
pub fn encode_into(out: &mut Vec<u8>, rec: &WalRecord) {
    let payload = rec.to_json().compact();
    let bytes = payload.as_bytes();
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(bytes).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Scan `data` frame by frame. Returns the decoded records and the number
/// of leading bytes that formed valid frames; everything past that point
/// is a torn or corrupt tail the caller should truncate.
pub fn scan(data: &[u8]) -> (Vec<WalRecord>, u64) {
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let rest = &data[pos..];
        if rest.len() < FRAME_HEADER {
            break;
        }
        let len = u32::from_le_bytes(rest[0..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(rest[4..8].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(FRAME_HEADER..FRAME_HEADER + len) else {
            break; // length runs past the buffer: torn frame
        };
        if crc32(payload) != crc {
            break; // bit rot or a torn payload
        }
        let Ok(text) = std::str::from_utf8(payload) else {
            break;
        };
        let Ok(json) = Json::parse(text) else {
            break;
        };
        let Ok(rec) = WalRecord::from_json(&json) else {
            break;
        };
        records.push(rec);
        pos += FRAME_HEADER + len;
    }
    (records, pos as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_log() -> (Vec<u8>, Vec<WalRecord>) {
        let recs = vec![
            WalRecord::Begin,
            WalRecord::Insert {
                table: "t".into(),
                handle: 1,
                values: vec![setrules_storage::Value::Int(7)],
            },
            WalRecord::Commit { handles: 1 },
        ];
        let mut buf = Vec::new();
        for r in &recs {
            encode_into(&mut buf, r);
        }
        (buf, recs)
    }

    #[test]
    fn clean_log_scans_fully() {
        let (buf, recs) = sample_log();
        let (back, valid) = scan(&buf);
        assert_eq!(back, recs);
        assert_eq!(valid, buf.len() as u64);
    }

    #[test]
    fn truncation_at_any_byte_never_panics_and_keeps_whole_frames() {
        let (buf, recs) = sample_log();
        // Frame boundaries (cumulative lengths after each record).
        let mut boundaries = vec![0u64];
        {
            let mut b = Vec::new();
            for r in &recs {
                encode_into(&mut b, r);
                boundaries.push(b.len() as u64);
            }
        }
        for cut in 0..=buf.len() {
            let (back, valid) = scan(&buf[..cut]);
            let whole = boundaries.iter().filter(|&&b| b <= cut as u64).count() - 1;
            assert_eq!(back.len(), whole, "cut at {cut}");
            assert_eq!(valid, boundaries[whole], "cut at {cut}");
            assert_eq!(back[..], recs[..whole], "cut at {cut}");
        }
    }

    #[test]
    fn single_byte_flip_invalidates_its_frame_and_stops_the_scan() {
        let (buf, recs) = sample_log();
        for i in 0..buf.len() {
            for flip in [0x01u8, 0x80u8] {
                let mut bad = buf.clone();
                bad[i] ^= flip;
                let (back, valid) = scan(&bad);
                assert!(valid <= buf.len() as u64);
                // The scan stops at or before the flipped frame; every
                // record it does return is one of the originals, in order.
                assert!(back.len() <= recs.len(), "flip at {i}");
                assert_eq!(back[..], recs[..back.len()], "flip at {i}: corrupt frame replayed");
            }
        }
    }

    #[test]
    fn crc_reference_vector() {
        // The standard IEEE check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
