//! # setrules-wal
//!
//! A write-ahead log for the rule engine: typed [`WalRecord`]s encoded
//! with `setrules-json` inside a length+CRC32 [frame](crate::frame),
//! appended through a pluggable [`LogSink`] (a real file or a test
//! [`SharedMemSink`] that records every write and sync), buffered for
//! group commit by [`WalWriter`], and recovered by a torn-tail-tolerant
//! [scanner](crate::frame::scan) that stops cleanly at the last valid
//! record.
//!
//! The crate knows nothing about the engine: it moves bytes and records.
//! The engine (`setrules-core`) decides *what* to log and *when* to hit
//! the fsync boundary — including polling its fault injector before every
//! append and sync, which is how the kill-at-every-record recovery sweep
//! in `tests/wal_recovery.rs` drives a crash at each durability site.
//!
//! Durability contract (matching the paper's §4 all-or-nothing
//! transactions): a transaction's records — user statements *and* every
//! triggered rule action — reach the sink before its `Commit` record is
//! synced; replay applies a transaction's effects only when its `Commit`
//! is present, so an image recovered after a crash is always a committed
//! image, never a half-applied one.

#![warn(missing_docs)]

pub mod frame;
pub mod record;
pub mod sink;
pub mod writer;

use std::fmt;
use std::path::PathBuf;

pub use frame::{crc32, scan};
pub use record::{value_from_json, value_to_json, WalRecord};
pub use sink::{FileSink, LogSink, SharedMemSink, SinkOp};
pub use writer::{OpenOutcome, WalWriter};

/// Where the log lives.
#[derive(Debug, Clone)]
pub enum SinkSpec {
    /// A file on disk ([`FileSink`]); created if absent.
    Path(PathBuf),
    /// A shared in-memory sink (tests, benches). The handle is cloned, so
    /// the "disk" contents survive dropping the engine and can be
    /// inspected, truncated, or corrupted by the test harness.
    Memory(SharedMemSink),
}

/// When the log syncs to its sink (the fsync boundary).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// Buffer a transaction's records and sync once, at its commit — one
    /// sync per transaction (the default).
    GroupCommit,
    /// Flush and sync after every record (the slow, maximally-paranoid
    /// baseline the B14 bench compares group commit against).
    EachRecord,
}

/// Durability configuration handed to the engine via
/// `EngineConfig::durability`.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Where the log lives.
    pub sink: SinkSpec,
    /// When the log syncs.
    pub sync: SyncPolicy,
    /// Write a checkpoint every this many commits; `0` disables periodic
    /// checkpoints (recovery then replays the whole log).
    pub checkpoint_every: u64,
}

impl WalConfig {
    /// Log to a file at `path` with group commit and no periodic
    /// checkpoints.
    pub fn path(path: impl Into<PathBuf>) -> WalConfig {
        WalConfig { sink: SinkSpec::Path(path.into()), sync: SyncPolicy::GroupCommit, checkpoint_every: 0 }
    }

    /// Log to the given shared in-memory sink with group commit and no
    /// periodic checkpoints.
    pub fn memory(sink: SharedMemSink) -> WalConfig {
        WalConfig { sink: SinkSpec::Memory(sink), sync: SyncPolicy::GroupCommit, checkpoint_every: 0 }
    }

    /// Builder: set the sync policy.
    pub fn with_sync(mut self, sync: SyncPolicy) -> WalConfig {
        self.sync = sync;
        self
    }

    /// Builder: set the checkpoint interval (commits between checkpoints;
    /// `0` disables).
    pub fn with_checkpoint_every(mut self, every: u64) -> WalConfig {
        self.checkpoint_every = every;
        self
    }
}

/// A write-ahead-log failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// The sink failed (I/O error text).
    Io(String),
    /// A record failed to encode or decode.
    Record(String),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(m) => write!(f, "wal I/O error: {m}"),
            WalError::Record(m) => write!(f, "wal record error: {m}"),
        }
    }
}

impl std::error::Error for WalError {}
