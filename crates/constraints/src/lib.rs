//! # setrules-constraints
//!
//! Semi-automatic translation of declarative integrity constraints into
//! set-oriented production rules — the facility sketched in §6 of Widom &
//! Finkelstein (SIGMOD 1990) and developed in the companion paper
//! \[CW90\] (Ceri & Widom, *Deriving Production Rules for Constraint
//! Maintenance*, VLDB 1990): "the user defines integrity constraints in a
//! high-level non-procedural language \[and\] the system performs
//! semi-automatic translation of these constraints into sets of lower-level
//! production rules that maintain the constraints."
//!
//! Each [`Constraint`] compiles to one or more `create rule` statements;
//! [`install`] defines them on a [`RuleSystem`]. Violations are either
//! *repaired* (cascade / set-null / set-default, following Example 3.1's
//! "cascaded delete" pattern) or *rejected* with a `rollback` action.
//!
//! ```
//! use setrules_core::RuleSystem;
//! use setrules_constraints::{install, Constraint, RepairPolicy};
//!
//! let mut sys = RuleSystem::new();
//! sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
//! sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
//! install(&mut sys, &Constraint::referential("emp_dept", "emp", "dept_no", "dept", "dept_no",
//!     RepairPolicy::Cascade)).unwrap();
//! sys.execute("insert into dept values (1, 10)").unwrap();
//! sys.execute("insert into emp values ('Jane', 10, 9.5, 1)").unwrap();
//! sys.execute("delete from dept where dept_no = 1").unwrap();
//! assert!(sys.query("select * from emp").unwrap().is_empty());
//! ```

#![warn(missing_docs)]

use setrules_core::{RuleError, RuleId, RuleSystem};
use setrules_storage::Value;

/// What to do with orphaned child rows when a referenced parent key
/// disappears (by delete or key update).
#[derive(Debug, Clone, PartialEq)]
pub enum RepairPolicy {
    /// Delete the orphans (Example 3.1's cascaded delete).
    Cascade,
    /// Reject the transaction (`rollback`).
    Restrict,
    /// Set the orphaned foreign keys to `NULL`.
    SetNull,
    /// Set the orphaned foreign keys to a default value.
    SetDefault(Value),
}

/// A declarative integrity constraint.
#[derive(Debug, Clone, PartialEq)]
pub enum Constraint {
    /// Every non-null `child.child_column` must equal some
    /// `parent.parent_column`.
    ReferentialIntegrity {
        /// Constraint name (prefixes the generated rule names).
        name: String,
        /// Referencing table.
        child_table: String,
        /// Referencing (foreign-key) column.
        child_column: String,
        /// Referenced table.
        parent_table: String,
        /// Referenced (key) column.
        parent_column: String,
        /// Repair policy for parent-side violations. Child-side
        /// violations (inserting or re-pointing to a missing parent)
        /// always roll back.
        policy: RepairPolicy,
    },
    /// `table.column` must never be `NULL`.
    NotNull {
        /// Constraint name.
        name: String,
        /// Table.
        table: String,
        /// Column.
        column: String,
    },
    /// `table.column` values must be unique (among non-null values).
    Unique {
        /// Constraint name.
        name: String,
        /// Table.
        table: String,
        /// Column.
        column: String,
    },
    /// Every row of `table` must satisfy `predicate` (an SQL boolean
    /// expression over the row's columns; rows where it evaluates to
    /// *unknown* pass, like SQL `CHECK`).
    Check {
        /// Constraint name.
        name: String,
        /// Table.
        table: String,
        /// The row predicate, as SQL text.
        predicate: String,
    },
}

impl Constraint {
    /// Convenience constructor for referential integrity.
    pub fn referential(
        name: &str,
        child_table: &str,
        child_column: &str,
        parent_table: &str,
        parent_column: &str,
        policy: RepairPolicy,
    ) -> Constraint {
        Constraint::ReferentialIntegrity {
            name: name.into(),
            child_table: child_table.into(),
            child_column: child_column.into(),
            parent_table: parent_table.into(),
            parent_column: parent_column.into(),
            policy,
        }
    }

    /// The constraint's name.
    pub fn name(&self) -> &str {
        match self {
            Constraint::ReferentialIntegrity { name, .. }
            | Constraint::NotNull { name, .. }
            | Constraint::Unique { name, .. }
            | Constraint::Check { name, .. } => name,
        }
    }
}

/// Compile a constraint into `create rule` statements (returned as SQL
/// text so they can be inspected, stored, or edited — the
/// "semi-automatic" part of \[CW90\]).
pub fn compile(c: &Constraint) -> Vec<String> {
    match c {
        Constraint::ReferentialIntegrity {
            name,
            child_table: ct,
            child_column: cc,
            parent_table: pt,
            parent_column: pc,
            policy,
        } => {
            // A parent key has *departed* if it was deleted or updated away
            // and no other live parent row still carries it.
            let departed_by_delete =
                format!("{cc} in (select {pc} from deleted {pt}) and {cc} not in (select {pc} from {pt})");
            let departed_by_update = format!(
                "{cc} in (select {pc} from old updated {pt}.{pc}) and {cc} not in (select {pc} from {pt})"
            );
            let repair = |cond: &str| -> String {
                match policy {
                    RepairPolicy::Cascade => format!("delete from {ct} where {cond}"),
                    RepairPolicy::Restrict => unreachable!("handled separately"),
                    RepairPolicy::SetNull => {
                        format!("update {ct} set {cc} = NULL where {cond}")
                    }
                    RepairPolicy::SetDefault(v) => {
                        format!("update {ct} set {cc} = {v} where {cond}")
                    }
                }
            };
            let mut rules = Vec::new();
            if matches!(policy, RepairPolicy::Restrict) {
                rules.push(format!(
                    "create rule {name}_parent_delete when deleted from {pt} \
                     if exists (select * from {ct} where {departed_by_delete}) then rollback"
                ));
                rules.push(format!(
                    "create rule {name}_parent_update when updated {pt}.{pc} \
                     if exists (select * from {ct} where {departed_by_update}) then rollback"
                ));
            } else {
                rules.push(format!(
                    "create rule {name}_parent_delete when deleted from {pt} then {}",
                    repair(&departed_by_delete)
                ));
                rules.push(format!(
                    "create rule {name}_parent_update when updated {pt}.{pc} then {}",
                    repair(&departed_by_update)
                ));
            }
            // Child-side: inserting or re-pointing a child at a missing
            // parent is always an error.
            rules.push(format!(
                "create rule {name}_child_check \
                 when inserted into {ct} or updated {ct}.{cc} \
                 if exists (select * from inserted {ct} where {cc} is not null \
                            and {cc} not in (select {pc} from {pt})) \
                 or exists (select * from new updated {ct}.{cc} where {cc} is not null \
                            and {cc} not in (select {pc} from {pt})) \
                 then rollback"
            ));
            rules
        }
        Constraint::NotNull { name, table, column } => vec![format!(
            "create rule {name}_notnull \
             when inserted into {table} or updated {table}.{column} \
             if exists (select * from inserted {table} where {column} is null) \
             or exists (select * from new updated {table}.{column} where {column} is null) \
             then rollback"
        )],
        Constraint::Unique { name, table, column } => vec![format!(
            "create rule {name}_unique \
             when inserted into {table} or updated {table}.{column} \
             if exists (select {column} from {table} where {column} is not null \
                        group by {column} having count(*) > 1) \
             then rollback"
        )],
        Constraint::Check { name, table, predicate } => vec![format!(
            "create rule {name}_check \
             when inserted into {table} or updated {table} \
             if exists (select * from {table} where not ({predicate})) \
             then rollback"
        )],
    }
}

/// Compile and define a constraint's rules on a system. Returns the rule
/// ids in definition order.
pub fn install(sys: &mut RuleSystem, c: &Constraint) -> Result<Vec<RuleId>, RuleError> {
    let mut ids = Vec::new();
    for sql in compile(c) {
        ids.push(sys.create_rule_str(&sql)?);
    }
    Ok(ids)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn emp_dept() -> RuleSystem {
        let mut sys = RuleSystem::new();
        sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
        sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)")
            .unwrap();
        sys
    }

    fn counts(sys: &RuleSystem) -> (i64, i64) {
        let e = sys.query("select count(*) from emp").unwrap().scalar().unwrap().as_i64().unwrap();
        let d = sys.query("select count(*) from dept").unwrap().scalar().unwrap().as_i64().unwrap();
        (e, d)
    }

    #[test]
    fn compiled_sql_parses() {
        for policy in [
            RepairPolicy::Cascade,
            RepairPolicy::Restrict,
            RepairPolicy::SetNull,
            RepairPolicy::SetDefault(Value::Int(0)),
        ] {
            let c = Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", policy);
            for sql in compile(&c) {
                setrules_sql::parse_statement(&sql)
                    .unwrap_or_else(|e| panic!("generated SQL must parse: {e}\n{sql}"));
            }
        }
    }

    #[test]
    fn cascade_on_parent_delete() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10), (2, 20)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 2)").unwrap();
        sys.execute("delete from dept where dept_no = 1").unwrap();
        assert_eq!(counts(&sys), (1, 1));
    }

    #[test]
    fn cascade_respects_duplicate_parent_keys() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
        )
        .unwrap();
        // Two dept rows share dept_no 1 (the schema allows duplicates);
        // deleting one of them must not orphan-cascade.
        sys.execute("insert into dept values (1, 10), (1, 11)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        sys.execute("delete from dept where mgr_no = 10").unwrap();
        assert_eq!(counts(&sys), (1, 1), "a parent with key 1 remains");
        sys.execute("delete from dept where mgr_no = 11").unwrap();
        assert_eq!(counts(&sys), (0, 0), "last parent gone, cascade fires");
    }

    #[test]
    fn cascade_on_parent_key_update() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        // Renumbering the department orphans its employees.
        let out = sys.transaction("update dept set dept_no = 9 where dept_no = 1").unwrap();
        assert!(out.committed());
        assert_eq!(counts(&sys), (0, 1));
    }

    #[test]
    fn restrict_rolls_back_parent_delete() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Restrict),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        let out = sys.transaction("delete from dept where dept_no = 1").unwrap();
        assert!(!out.committed());
        assert_eq!(counts(&sys), (1, 1));
        // Deleting the child first makes the parent delete legal.
        sys.execute("delete from emp").unwrap();
        let out = sys.transaction("delete from dept where dept_no = 1").unwrap();
        assert!(out.committed());
    }

    #[test]
    fn restrict_allows_delete_of_child_and_parent_in_one_block() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Restrict),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        // Set-oriented checking at the transition level: deleting both in
        // one block leaves no violation.
        let out = sys
            .transaction("delete from emp where dept_no = 1; delete from dept where dept_no = 1")
            .unwrap();
        assert!(out.committed());
        assert_eq!(counts(&sys), (0, 0));
    }

    #[test]
    fn set_null_and_set_default() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::SetNull),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        sys.execute("delete from dept where dept_no = 1").unwrap();
        let rel = sys.query("select dept_no from emp").unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Null]]);

        let mut sys = emp_dept();
        sys.execute("insert into dept values (0, 0)").unwrap(); // the default parent
        install(
            &mut sys,
            &Constraint::referential(
                "ri",
                "emp",
                "dept_no",
                "dept",
                "dept_no",
                RepairPolicy::SetDefault(Value::Int(0)),
            ),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10)").unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        sys.execute("delete from dept where dept_no = 1").unwrap();
        let rel = sys.query("select dept_no from emp").unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Int(0)]]);
    }

    #[test]
    fn orphan_insert_rejected_null_allowed() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
        )
        .unwrap();
        sys.execute("insert into dept values (1, 10)").unwrap();
        let out = sys.transaction("insert into emp values ('a', 1, 1.0, 99)").unwrap();
        assert!(!out.committed(), "dept 99 does not exist");
        let out = sys.transaction("insert into emp values ('a', 1, 1.0, NULL)").unwrap();
        assert!(out.committed(), "null foreign keys are allowed");
        let out = sys.transaction("insert into emp values ('b', 2, 1.0, 1)").unwrap();
        assert!(out.committed());
        // Re-pointing at a missing parent is also rejected.
        let out = sys.transaction("update emp set dept_no = 42 where name = 'b'").unwrap();
        assert!(!out.committed());
    }

    #[test]
    fn not_null_constraint() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::NotNull { name: "nn".into(), table: "emp".into(), column: "name".into() },
        )
        .unwrap();
        let out = sys.transaction("insert into emp values (NULL, 1, 1.0, 1)").unwrap();
        assert!(!out.committed());
        let out = sys.transaction("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        assert!(out.committed());
        let out = sys.transaction("update emp set name = NULL").unwrap();
        assert!(!out.committed());
    }

    #[test]
    fn unique_constraint() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::Unique { name: "uq".into(), table: "emp".into(), column: "emp_no".into() },
        )
        .unwrap();
        sys.execute("insert into emp values ('a', 1, 1.0, 1)").unwrap();
        let out = sys.transaction("insert into emp values ('b', 1, 1.0, 1)").unwrap();
        assert!(!out.committed(), "duplicate key rejected");
        let out = sys.transaction("insert into emp values ('b', 2, 1.0, 1)").unwrap();
        assert!(out.committed());
        let out = sys.transaction("update emp set emp_no = 2 where name = 'a'").unwrap();
        assert!(!out.committed(), "update creating a duplicate rejected");
    }

    #[test]
    fn check_constraint_with_null_semantics() {
        let mut sys = emp_dept();
        install(
            &mut sys,
            &Constraint::Check {
                name: "pos".into(),
                table: "emp".into(),
                predicate: "salary >= 0".into(),
            },
        )
        .unwrap();
        let out = sys.transaction("insert into emp values ('a', 1, -5.0, 1)").unwrap();
        assert!(!out.committed());
        let out = sys.transaction("insert into emp values ('a', 1, 5.0, 1)").unwrap();
        assert!(out.committed());
        // NULL salary: predicate is unknown → the row passes (SQL CHECK).
        let out = sys.transaction("insert into emp values ('b', 2, NULL, 1)").unwrap();
        assert!(out.committed());
        let out = sys.transaction("update emp set salary = -1.0 where name = 'a'").unwrap();
        assert!(!out.committed());
    }

    #[test]
    fn install_reports_rule_ids_and_names() {
        let mut sys = emp_dept();
        let ids = install(
            &mut sys,
            &Constraint::referential("ri", "emp", "dept_no", "dept", "dept_no", RepairPolicy::Cascade),
        )
        .unwrap();
        assert_eq!(ids.len(), 3);
        assert!(sys.rule("ri_parent_delete").is_some());
        assert!(sys.rule("ri_parent_update").is_some());
        assert!(sys.rule("ri_child_check").is_some());
    }
}
