//! Abstract syntax for the SQL dialect, including the production-rule DDL
//! of the paper (§3) and its §5 extensions.

use setrules_storage::{DataType, IndexKind, Value};

/// A top-level statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `create table t (c1 ty1, ...)`
    CreateTable(CreateTable),
    /// `drop table t`
    DropTable(String),
    /// `create index on t (c) [using hash | using ordered]`
    CreateIndex {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
        /// Physical structure (`using ...`); hash when omitted.
        kind: IndexKind,
    },
    /// `drop index on t (c)`
    DropIndex {
        /// Table name.
        table: String,
        /// Column name.
        column: String,
    },
    /// `create rule name when ... [if ...] then ...` (paper §3)
    CreateRule(CreateRule),
    /// `drop rule name`
    DropRule(String),
    /// `activate rule name` — re-enable a deactivated rule.
    ActivateRule(String),
    /// `deactivate rule name` — the rule stays defined but never triggers.
    DeactivateRule(String),
    /// `create rule priority r1 before r2` (paper §4.4): `r1` has higher
    /// priority than `r2`.
    CreatePriority {
        /// The higher-priority rule.
        higher: String,
        /// The lower-priority rule.
        lower: String,
    },
    /// `process rules` — a user-defined rule triggering point (paper §5.3).
    ProcessRules,
    /// A data manipulation (or retrieval) operation.
    Dml(DmlOp),
}

/// `create table` payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CreateTable {
    /// Table name.
    pub name: String,
    /// Column names and types in declaration order.
    pub columns: Vec<(String, DataType)>,
}

/// A production rule definition (paper §3):
///
/// ```text
/// create rule name
///   when trans-pred
///   [ if condition ]
///   then action
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CreateRule {
    /// Rule name (unique among defined rules).
    pub name: String,
    /// Disjunction of basic transition predicates.
    pub when: Vec<BasicTransPred>,
    /// Optional condition; omitted means `if true`.
    pub condition: Option<Expr>,
    /// The action: an operation block or `rollback`.
    pub action: RuleAction,
}

/// A basic transition predicate (paper §3, extended with `selected` §5.1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BasicTransPred {
    /// `inserted into t`
    InsertedInto(String),
    /// `deleted from t`
    DeletedFrom(String),
    /// `updated t` or `updated t.c`
    Updated {
        /// Table name.
        table: String,
        /// Specific column, or `None` for any column.
        column: Option<String>,
    },
    /// `selected t` or `selected t.c` (extension, §5.1)
    Selected {
        /// Table name.
        table: String,
        /// Specific column, or `None` for any column.
        column: Option<String>,
    },
}

impl BasicTransPred {
    /// The table this predicate watches.
    pub fn table(&self) -> &str {
        match self {
            BasicTransPred::InsertedInto(t) | BasicTransPred::DeletedFrom(t) => t,
            BasicTransPred::Updated { table, .. } | BasicTransPred::Selected { table, .. } => table,
        }
    }
}

/// A rule action (paper §3): an operation block, or transaction rollback.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleAction {
    /// A non-empty sequence of SQL operations, executed as one operation
    /// block (one transition).
    Block(Vec<DmlOp>),
    /// Roll the current transaction back to its start state.
    Rollback,
}

/// One SQL operation inside an operation block. `select` is included per
/// the §5.1 extension (data retrieval in rules' actions and select-triggered
/// rules); plain DML matches the §2.1 grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum DmlOp {
    /// `insert into t values (...) | insert into t (select ...)`
    Insert(InsertStmt),
    /// `delete from t [where p]`
    Delete(DeleteStmt),
    /// `update t set c = e, ... [where p]`
    Update(UpdateStmt),
    /// `select ...`
    Select(SelectStmt),
}

/// `insert` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct InsertStmt {
    /// Target table.
    pub table: String,
    /// Row source.
    pub source: InsertSource,
}

/// The source of inserted rows.
#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    /// `values (e, ...), (e, ...), ...` — one or more literal rows.
    Values(Vec<Vec<Expr>>),
    /// `( select ... )` — the §2.1 "insert with select operation".
    Select(Box<SelectStmt>),
}

/// `delete` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeleteStmt {
    /// Target table.
    pub table: String,
    /// Optional predicate; omitted means `where true` (§2.1).
    pub predicate: Option<Expr>,
}

/// `update` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStmt {
    /// Target table.
    pub table: String,
    /// `set` assignments in order.
    pub sets: Vec<(String, Expr)>,
    /// Optional predicate; omitted means `where true` (§2.1).
    pub predicate: Option<Expr>,
}

/// `select` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// `select distinct`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `from` items (comma joins).
    pub from: Vec<TableRef>,
    /// `where` predicate.
    pub predicate: Option<Expr>,
    /// `group by` keys.
    pub group_by: Vec<Expr>,
    /// `having` predicate.
    pub having: Option<Expr>,
    /// `order by` items (expression, ascending?).
    pub order_by: Vec<(Expr, bool)>,
    /// `limit` row count.
    pub limit: Option<u64>,
}

impl SelectStmt {
    /// A minimal `select <projection> from <from>` with everything else
    /// defaulted — handy for building queries programmatically.
    pub fn simple(projection: Vec<SelectItem>, from: Vec<TableRef>, predicate: Option<Expr>) -> Self {
        SelectStmt {
            distinct: false,
            projection,
            from,
            predicate,
            group_by: vec![],
            having: None,
            order_by: vec![],
            limit: None,
        }
    }
}

/// One item of a `select` projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String),
    /// An expression with an optional output alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `as alias`.
        alias: Option<String>,
    },
}

/// A `from`-clause item: a table source plus an optional variable name
/// ("table variable `tvar`", paper §3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// What is being scanned.
    pub source: TableSource,
    /// The table variable bound to it.
    pub alias: Option<String>,
}

impl TableRef {
    /// A plain named-table reference without alias.
    pub fn named(name: impl Into<String>) -> Self {
        TableRef { source: TableSource::Named(name.into()), alias: None }
    }

    /// The name by which columns of this item are qualified: the alias if
    /// present, else the base table name.
    pub fn binding_name(&self) -> &str {
        if let Some(a) = &self.alias {
            return a;
        }
        match &self.source {
            TableSource::Named(n) => n,
            TableSource::Transition { table, .. } => table,
        }
    }
}

/// The source scanned by a `from` item.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableSource {
    /// An ordinary stored table.
    Named(String),
    /// A transition table (paper §3): `inserted t`, `deleted t`,
    /// `old updated t[.c]`, `new updated t[.c]`, `selected t[.c]`.
    Transition {
        /// Which transition table.
        kind: TransitionKind,
        /// The underlying stored table.
        table: String,
        /// Restrict to tuples whose *column `c`* was updated/selected.
        column: Option<String>,
    },
}

/// The five kinds of transition table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TransitionKind {
    /// Tuples inserted by the triggering transition (current values).
    Inserted,
    /// Tuples deleted by the triggering transition (pre-transition values).
    Deleted,
    /// Updated tuples, pre-transition values.
    OldUpdated,
    /// Updated tuples, current values.
    NewUpdated,
    /// Selected tuples (extension §5.1, current values).
    Selected,
}

/// Scalar and predicate expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A literal value.
    Literal(Value),
    /// A column reference, optionally qualified by a table variable.
    Column {
        /// Table variable / table name qualifier.
        qualifier: Option<String>,
        /// Column name.
        name: String,
    },
    /// Unary operator application.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<Expr>,
    },
    /// Binary operator application.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `e is [not] null`
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// `is not null`?
        negated: bool,
    },
    /// `e [not] in (e1, e2, ...)`
    InList {
        /// The tested expression.
        expr: Box<Expr>,
        /// The candidate list.
        list: Vec<Expr>,
        /// `not in`?
        negated: bool,
    },
    /// `e [not] in (select ...)`
    InSubquery {
        /// The tested expression.
        expr: Box<Expr>,
        /// The subquery (must produce one column).
        subquery: Box<SelectStmt>,
        /// `not in`?
        negated: bool,
    },
    /// `[not] exists (select ...)`
    Exists {
        /// The subquery.
        subquery: Box<SelectStmt>,
        /// `not exists`?
        negated: bool,
    },
    /// `(select ...)` used as a scalar (must produce at most one row and
    /// exactly one column; zero rows yield `NULL`).
    ScalarSubquery(Box<SelectStmt>),
    /// `e [not] between lo and hi`
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// `not between`?
        negated: bool,
    },
    /// `e [not] like pattern [escape c]` — `%` and `_` wildcards; the
    /// escape character makes the following wildcard (or itself) literal.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern expression.
        pattern: Box<Expr>,
        /// The `escape` expression, if given (must evaluate to a
        /// single-character string).
        escape: Option<Box<Expr>>,
        /// `not like`?
        negated: bool,
    },
    /// An aggregate call: `count(*)`, `sum(e)`, `avg(e)`, `min(e)`, `max(e)`,
    /// optionally `distinct`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument; `None` only for `count(*)`.
        arg: Option<Box<Expr>>,
        /// `count(distinct e)` etc.
        distinct: bool,
    },
}

impl Expr {
    /// Shorthand for an unqualified column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: None, name: name.into() }
    }

    /// Shorthand for a qualified column reference.
    pub fn qcol(qualifier: impl Into<String>, name: impl Into<String>) -> Expr {
        Expr::Column { qualifier: Some(qualifier.into()), name: name.into() }
    }

    /// Shorthand for a literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// Shorthand for a binary expression.
    pub fn binary(left: Expr, op: BinaryOp, right: Expr) -> Expr {
        Expr::Binary { left: Box::new(left), op, right: Box::new(right) }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    /// Logical negation (three-valued).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `and` (three-valued)
    And,
    /// `or` (three-valued)
    Or,
}

impl BinaryOp {
    /// Whether this is a comparison operator.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq | BinaryOp::NotEq | BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
        )
    }
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `count`
    Count,
    /// `sum`
    Sum,
    /// `avg`
    Avg,
    /// `min`
    Min,
    /// `max`
    Max,
}

impl AggFunc {
    /// Canonical lower-case name.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Avg => "avg",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
        }
    }
}
