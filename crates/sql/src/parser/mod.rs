//! Recursive-descent parser for the dialect.
//!
//! Entry points: [`parse_statement`], [`parse_statements`],
//! [`parse_op_block`], [`parse_expr`].
//!
//! One dialect quirk inherited from the paper's grammar: a rule's action is
//! an *operation block* — a `;`-separated sequence of operations — so in a
//! multi-statement script a `create rule ... then op` greedily absorbs
//! subsequent `;`-separated DML operations into its action. Scripts should
//! place rule definitions last or issue them as separate `execute` calls.

mod expr;
pub(crate) mod rule;
mod stmt;

use crate::ast::{DmlOp, Expr, Statement};
use crate::error::SqlError;
use crate::lexer::lex;
use crate::token::{Keyword, Token, TokenKind};

/// Parse a single statement; trailing `;` allowed, trailing garbage is an
/// error. A `create rule` consumes the entire remaining input as its action
/// block (see module docs).
pub fn parse_statement(src: &str) -> Result<Statement, SqlError> {
    let mut p = Parser::new(src)?;
    let stmt = p.statement()?;
    p.eat(&TokenKind::Semicolon);
    p.expect_eof()?;
    Ok(stmt)
}

/// Parse a `;`-separated script of statements.
pub fn parse_statements(src: &str) -> Result<Vec<Statement>, SqlError> {
    let mut p = Parser::new(src)?;
    let mut out = Vec::new();
    loop {
        while p.eat(&TokenKind::Semicolon) {}
        if p.at_eof() {
            return Ok(out);
        }
        out.push(p.statement()?);
        if !p.at_eof() && !p.check(&TokenKind::Semicolon) {
            return Err(p.unexpected("';' between statements"));
        }
    }
}

/// Parse an operation block: `sql-op ; sql-op ; ... ; sql-op` (paper §2.1).
pub fn parse_op_block(src: &str) -> Result<Vec<DmlOp>, SqlError> {
    let mut p = Parser::new(src)?;
    let block = p.op_block()?;
    p.expect_eof()?;
    if block.is_empty() {
        return Err(SqlError::parse(0, "operation block must be non-empty"));
    }
    Ok(block)
}

/// Parse a standalone expression (used by the constraint compiler and tests).
pub fn parse_expr(src: &str) -> Result<Expr, SqlError> {
    let mut p = Parser::new(src)?;
    let e = p.expr()?;
    p.expect_eof()?;
    Ok(e)
}

/// The parser state: a token stream and a cursor.
pub(crate) struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    pub(crate) fn new(src: &str) -> Result<Self, SqlError> {
        Ok(Parser { tokens: lex(src)?, pos: 0 })
    }

    pub(crate) fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    pub(crate) fn peek_at(&self, n: usize) -> &TokenKind {
        let i = (self.pos + n).min(self.tokens.len() - 1);
        &self.tokens[i].kind
    }

    pub(crate) fn offset(&self) -> usize {
        self.tokens[self.pos].offset
    }

    pub(crate) fn at_eof(&self) -> bool {
        matches!(self.peek(), TokenKind::Eof)
    }

    pub(crate) fn advance(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    pub(crate) fn check(&self, kind: &TokenKind) -> bool {
        self.peek() == kind
    }

    pub(crate) fn check_kw(&self, kw: Keyword) -> bool {
        matches!(self.peek(), TokenKind::Keyword(k) if *k == kw)
    }

    /// Whether the current token is the soft keyword `word` (lexed as an
    /// identifier).
    pub(crate) fn check_word(&self, word: &str) -> bool {
        matches!(self.peek(), TokenKind::Ident(s) if s == word)
    }

    pub(crate) fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.check(kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_kw(&mut self, kw: Keyword) -> bool {
        if self.check_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn eat_word(&mut self, word: &str) -> bool {
        if self.check_word(word) {
            self.advance();
            true
        } else {
            false
        }
    }

    pub(crate) fn expect(&mut self, kind: &TokenKind) -> Result<(), SqlError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(SqlError::parse(self.offset(), format!("expected {kind}, found {}", self.peek())))
        }
    }

    pub(crate) fn expect_kw(&mut self, kw: Keyword) -> Result<(), SqlError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.offset(),
                format!("expected keyword '{}', found {}", kw.as_str(), self.peek()),
            ))
        }
    }

    pub(crate) fn expect_eof(&self) -> Result<(), SqlError> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.offset(),
                format!("unexpected trailing input: {}", self.peek()),
            ))
        }
    }

    /// An identifier; type-name keywords are allowed as identifiers so that
    /// e.g. a column may be named `text`.
    pub(crate) fn ident(&mut self) -> Result<String, SqlError> {
        match self.peek().clone() {
            TokenKind::Ident(s) => {
                self.advance();
                Ok(s)
            }
            TokenKind::Keyword(k @ (Keyword::Int | Keyword::Text | Keyword::Float | Keyword::Bool)) => {
                self.advance();
                Ok(k.as_str().to_string())
            }
            other => Err(SqlError::parse(self.offset(), format!("expected identifier, found {other}"))),
        }
    }

    pub(crate) fn unexpected(&self, wanted: &str) -> SqlError {
        SqlError::parse(self.offset(), format!("expected {wanted}, found {}", self.peek()))
    }
}
