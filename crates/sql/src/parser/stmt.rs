//! Statement parsing: DDL, DML, and `select`.

use setrules_storage::{DataType, IndexKind};

use crate::ast::{
    CreateTable, DeleteStmt, DmlOp, InsertSource, InsertStmt, SelectItem, SelectStmt, Statement,
    TableRef, TableSource, TransitionKind, UpdateStmt,
};
use crate::error::SqlError;
use crate::token::{Keyword, TokenKind};

use super::Parser;

impl Parser {
    pub(crate) fn statement(&mut self) -> Result<Statement, SqlError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Create) => self.create(),
            TokenKind::Keyword(Keyword::Drop) => self.drop(),
            TokenKind::Keyword(Keyword::Activate) => {
                self.advance();
                self.expect_kw(Keyword::Rule)?;
                Ok(Statement::ActivateRule(self.ident()?))
            }
            TokenKind::Keyword(Keyword::Deactivate) => {
                self.advance();
                self.expect_kw(Keyword::Rule)?;
                Ok(Statement::DeactivateRule(self.ident()?))
            }
            TokenKind::Keyword(Keyword::Process) => {
                self.advance();
                self.expect_kw(Keyword::Rules)?;
                Ok(Statement::ProcessRules)
            }
            TokenKind::Keyword(Keyword::Select | Keyword::Insert | Keyword::Delete | Keyword::Update) => {
                Ok(Statement::Dml(self.dml_op()?))
            }
            _ => Err(self.unexpected("a statement")),
        }
    }

    fn create(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Create)?;
        if self.eat_kw(Keyword::Table) {
            return self.create_table();
        }
        if self.eat_kw(Keyword::Index) {
            self.expect_kw(Keyword::On)?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let column = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            // `using` and the kind names are soft words, not keywords, so
            // they stay usable as identifiers everywhere else.
            let kind = if self.eat_word("using") {
                if self.eat_word("hash") {
                    IndexKind::Hash
                } else if self.eat_word("ordered") {
                    IndexKind::Ordered
                } else {
                    return Err(self.unexpected("'hash' or 'ordered' after 'using'"));
                }
            } else {
                IndexKind::Hash
            };
            return Ok(Statement::CreateIndex { table, column, kind });
        }
        if self.eat_kw(Keyword::Rule) {
            if self.eat_kw(Keyword::Priority) {
                let higher = self.ident()?;
                self.expect_kw(Keyword::Before)?;
                let lower = self.ident()?;
                return Ok(Statement::CreatePriority { higher, lower });
            }
            return self.create_rule().map(Statement::CreateRule);
        }
        Err(self.unexpected("'table', 'index', or 'rule' after 'create'"))
    }

    fn drop(&mut self) -> Result<Statement, SqlError> {
        self.expect_kw(Keyword::Drop)?;
        if self.eat_kw(Keyword::Table) {
            return Ok(Statement::DropTable(self.ident()?));
        }
        if self.eat_kw(Keyword::Index) {
            self.expect_kw(Keyword::On)?;
            let table = self.ident()?;
            self.expect(&TokenKind::LParen)?;
            let column = self.ident()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Statement::DropIndex { table, column });
        }
        if self.eat_kw(Keyword::Rule) {
            return Ok(Statement::DropRule(self.ident()?));
        }
        Err(self.unexpected("'table', 'index', or 'rule' after 'drop'"))
    }

    fn create_table(&mut self) -> Result<Statement, SqlError> {
        let name = self.ident()?;
        self.expect(&TokenKind::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.ident()?;
            let ty = self.data_type()?;
            columns.push((col, ty));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Statement::CreateTable(CreateTable { name, columns }))
    }

    fn data_type(&mut self) -> Result<DataType, SqlError> {
        let ty = match self.peek() {
            TokenKind::Keyword(Keyword::Int | Keyword::Integer) => DataType::Int,
            TokenKind::Keyword(Keyword::Float | Keyword::Real) => DataType::Float,
            TokenKind::Keyword(Keyword::Text) => DataType::Text,
            TokenKind::Keyword(Keyword::Bool | Keyword::Boolean) => DataType::Bool,
            _ => return Err(self.unexpected("a column type (int, float, text, bool)")),
        };
        self.advance();
        Ok(ty)
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// An operation block: DML ops separated by `;` (paper §2.1). Stops at
    /// EOF or before a non-DML statement.
    pub(crate) fn op_block(&mut self) -> Result<Vec<DmlOp>, SqlError> {
        let mut ops = vec![self.dml_op()?];
        while self.check(&TokenKind::Semicolon) {
            // Only continue if what follows the semicolon is another DML op.
            if !matches!(
                self.peek_at(1),
                TokenKind::Keyword(Keyword::Select | Keyword::Insert | Keyword::Delete | Keyword::Update)
            ) {
                break;
            }
            self.advance();
            ops.push(self.dml_op()?);
        }
        Ok(ops)
    }

    pub(crate) fn dml_op(&mut self) -> Result<DmlOp, SqlError> {
        match self.peek() {
            TokenKind::Keyword(Keyword::Select) => Ok(DmlOp::Select(self.select_stmt()?)),
            TokenKind::Keyword(Keyword::Insert) => self.insert_stmt().map(DmlOp::Insert),
            TokenKind::Keyword(Keyword::Delete) => self.delete_stmt().map(DmlOp::Delete),
            TokenKind::Keyword(Keyword::Update) => self.update_stmt().map(DmlOp::Update),
            _ => Err(self.unexpected("an SQL operation")),
        }
    }

    fn insert_stmt(&mut self) -> Result<InsertStmt, SqlError> {
        self.expect_kw(Keyword::Insert)?;
        self.expect_kw(Keyword::Into)?;
        let table = self.ident()?;
        if self.eat_kw(Keyword::Values) {
            let mut rows = Vec::new();
            loop {
                self.expect(&TokenKind::LParen)?;
                let mut row = vec![self.expr()?];
                while self.eat(&TokenKind::Comma) {
                    row.push(self.expr()?);
                }
                self.expect(&TokenKind::RParen)?;
                rows.push(row);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            return Ok(InsertStmt { table, source: InsertSource::Values(rows) });
        }
        if self.eat(&TokenKind::LParen) {
            let sel = self.select_stmt()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(InsertStmt { table, source: InsertSource::Select(Box::new(sel)) });
        }
        Err(self.unexpected("'values' or '(select ...)' in insert"))
    }

    fn delete_stmt(&mut self) -> Result<DeleteStmt, SqlError> {
        self.expect_kw(Keyword::Delete)?;
        self.expect_kw(Keyword::From)?;
        let table = self.ident()?;
        let predicate = if self.eat_kw(Keyword::Where) { Some(self.expr()?) } else { None };
        Ok(DeleteStmt { table, predicate })
    }

    fn update_stmt(&mut self) -> Result<UpdateStmt, SqlError> {
        self.expect_kw(Keyword::Update)?;
        let table = self.ident()?;
        self.expect_kw(Keyword::Set)?;
        let mut sets = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let value = self.expr()?;
            sets.push((col, value));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let predicate = if self.eat_kw(Keyword::Where) { Some(self.expr()?) } else { None };
        Ok(UpdateStmt { table, sets, predicate })
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    pub(crate) fn select_stmt(&mut self) -> Result<SelectStmt, SqlError> {
        self.expect_kw(Keyword::Select)?;
        let distinct = self.eat_kw(Keyword::Distinct);
        let mut projection = vec![self.select_item()?];
        while self.eat(&TokenKind::Comma) {
            projection.push(self.select_item()?);
        }
        self.expect_kw(Keyword::From)?;
        let mut from = vec![self.table_ref()?];
        while self.eat(&TokenKind::Comma) {
            from.push(self.table_ref()?);
        }
        let predicate = if self.eat_kw(Keyword::Where) { Some(self.expr()?) } else { None };
        let mut group_by = Vec::new();
        if self.eat_kw(Keyword::Group) {
            self.expect_kw(Keyword::By)?;
            group_by.push(self.expr()?);
            while self.eat(&TokenKind::Comma) {
                group_by.push(self.expr()?);
            }
        }
        let having = if self.eat_kw(Keyword::Having) { Some(self.expr()?) } else { None };
        let mut order_by = Vec::new();
        if self.eat_kw(Keyword::Order) {
            self.expect_kw(Keyword::By)?;
            loop {
                let e = self.expr()?;
                let asc = if self.eat_kw(Keyword::Desc) {
                    false
                } else {
                    self.eat_kw(Keyword::Asc);
                    true
                };
                order_by.push((e, asc));
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_kw(Keyword::Limit) {
            match self.advance() {
                TokenKind::Int(n) if n >= 0 => Some(n as u64),
                other => {
                    return Err(SqlError::parse(
                        self.offset(),
                        format!("expected non-negative integer after 'limit', found {other}"),
                    ))
                }
            }
        } else {
            None
        };
        Ok(SelectStmt { distinct, projection, from, predicate, group_by, having, order_by, limit })
    }

    fn select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.eat(&TokenKind::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if matches!(self.peek(), TokenKind::Ident(_))
            && matches!(self.peek_at(1), TokenKind::Dot)
            && matches!(self.peek_at(2), TokenKind::Star)
        {
            let q = self.ident()?;
            self.advance(); // dot
            self.advance(); // star
            return Ok(SelectItem::QualifiedWildcard(q));
        }
        let expr = self.expr()?;
        // Projection aliases are bare identifiers after `as` or directly
        // after the expression (transition-table soft keywords never appear
        // in projection position, so no boundary issues arise).
        let alias = if self.eat_kw(Keyword::As) || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    /// A `from` item: a stored table or a transition table (paper §3),
    /// optionally followed by a table-variable alias.
    ///
    /// Transition-table words win over same-named stored tables: in
    /// `from inserted x`, `x` is the underlying table of transition table
    /// `inserted x`, not an alias for a stored table named `inserted`.
    pub(crate) fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        // old updated t[.c] | new updated t[.c]
        for (word, kind) in [("old", TransitionKind::OldUpdated), ("new", TransitionKind::NewUpdated)] {
            if self.check_word(word) && matches!(self.peek_at(1), TokenKind::Ident(s) if s == "updated") {
                self.advance();
                self.advance();
                return self.transition_tail(kind, true);
            }
        }
        for (word, kind, cols) in [
            ("inserted", TransitionKind::Inserted, false),
            ("deleted", TransitionKind::Deleted, false),
            ("selected", TransitionKind::Selected, true),
        ] {
            if self.check_word(word) && matches!(self.peek_at(1), TokenKind::Ident(_)) {
                self.advance();
                return self.transition_tail(kind, cols);
            }
        }
        let name = self.ident()?;
        let alias = self.maybe_alias();
        Ok(TableRef { source: TableSource::Named(name), alias })
    }

    fn transition_tail(&mut self, kind: TransitionKind, allow_column: bool) -> Result<TableRef, SqlError> {
        let table = self.ident()?;
        let column = if allow_column && self.eat(&TokenKind::Dot) {
            Some(self.ident()?)
        } else {
            None
        };
        let alias = self.maybe_alias();
        Ok(TableRef { source: TableSource::Transition { kind, table, column }, alias })
    }

    fn maybe_alias(&mut self) -> Option<String> {
        if self.eat_kw(Keyword::As) {
            return self.ident().ok();
        }
        if matches!(self.peek(), TokenKind::Ident(_)) {
            return self.ident().ok();
        }
        None
    }
}
