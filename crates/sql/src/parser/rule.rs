//! Parsing of `create rule` (paper §3):
//!
//! ```text
//! prod-rule-def ::= create rule name
//!                     when trans-pred
//!                     [ if condition ]
//!                     then action
//! trans-pred       ::= basic-trans-pred | basic-trans-pred or trans-pred
//! basic-trans-pred ::= inserted into table | deleted from table
//!                    | updated table.column | updated table
//!                    | selected table[.column]            -- §5.1 extension
//! action           ::= op-block | rollback
//! ```

use crate::ast::{BasicTransPred, CreateRule, RuleAction};
use crate::error::SqlError;
use crate::token::{Keyword, TokenKind};

use super::Parser;

impl Parser {
    /// Parse the body of `create rule` (the `create rule` tokens already
    /// consumed).
    pub(crate) fn create_rule(&mut self) -> Result<CreateRule, SqlError> {
        let name = self.ident()?;
        self.expect_kw(Keyword::When)?;
        let mut when = vec![self.basic_trans_pred()?];
        while self.eat_kw(Keyword::Or) {
            when.push(self.basic_trans_pred()?);
        }
        let condition = if self.eat_kw(Keyword::If) { Some(self.expr()?) } else { None };
        self.expect_kw(Keyword::Then)?;
        let action = if self.eat_kw(Keyword::Rollback) {
            RuleAction::Rollback
        } else {
            RuleAction::Block(self.op_block()?)
        };
        Ok(CreateRule { name, when, condition, action })
    }

    /// Parse one basic transition predicate.
    pub(crate) fn basic_trans_pred(&mut self) -> Result<BasicTransPred, SqlError> {
        if self.eat_word("inserted") {
            self.expect_kw(Keyword::Into)?;
            return Ok(BasicTransPred::InsertedInto(self.ident()?));
        }
        if self.eat_word("deleted") {
            self.expect_kw(Keyword::From)?;
            return Ok(BasicTransPred::DeletedFrom(self.ident()?));
        }
        for (word, selected) in [("updated", false), ("selected", true)] {
            if self.eat_word(word) {
                let table = self.ident()?;
                let column =
                    if self.eat(&TokenKind::Dot) { Some(self.ident()?) } else { None };
                return Ok(if selected {
                    BasicTransPred::Selected { table, column }
                } else {
                    BasicTransPred::Updated { table, column }
                });
            }
        }
        Err(self.unexpected("a transition predicate ('inserted into', 'deleted from', 'updated', 'selected')"))
    }
}

/// Parse a standalone transition predicate list (`p1 or p2 or ...`), used
/// by programmatic rule construction.
pub fn parse_trans_pred(src: &str) -> Result<Vec<BasicTransPred>, SqlError> {
    let mut p = Parser::new(src)?;
    let mut preds = vec![p.basic_trans_pred()?];
    while p.eat_kw(Keyword::Or) {
        preds.push(p.basic_trans_pred()?);
    }
    p.expect_eof()?;
    Ok(preds)
}
