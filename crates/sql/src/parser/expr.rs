//! Expression parsing with conventional SQL precedence:
//! `or` < `and` < `not` < comparisons/`in`/`between`/`like`/`is` <
//! `+ -` < `* / %` < unary `-` < primary.

use setrules_storage::Value;

use crate::ast::{AggFunc, BinaryOp, Expr, UnaryOp};
use crate::error::SqlError;
use crate::token::{Keyword, TokenKind};

use super::Parser;

impl Parser {
    pub(crate) fn expr(&mut self) -> Result<Expr, SqlError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_kw(Keyword::Or) {
            let right = self.and_expr()?;
            left = Expr::binary(left, BinaryOp::Or, right);
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.check_kw(Keyword::And) {
            self.advance();
            let right = self.not_expr()?;
            left = Expr::binary(left, BinaryOp::And, right);
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        if self.check_kw(Keyword::Not) {
            // `not exists (...)` gets the dedicated negated form.
            if matches!(self.peek_at(1), TokenKind::Keyword(Keyword::Exists)) {
                self.advance();
                return self.exists(true);
            }
            self.advance();
            let inner = self.not_expr()?;
            return Ok(Expr::Unary { op: UnaryOp::Not, expr: Box::new(inner) });
        }
        self.predicate()
    }

    /// A comparison or special predicate over additive expressions.
    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::binary(left, op, right));
        }
        if self.eat_kw(Keyword::Is) {
            let negated = self.eat_kw(Keyword::Not);
            self.expect_kw(Keyword::Null)?;
            return Ok(Expr::IsNull { expr: Box::new(left), negated });
        }
        let negated = self.eat_kw(Keyword::Not);
        if self.eat_kw(Keyword::In) {
            return self.in_tail(left, negated);
        }
        if self.eat_kw(Keyword::Between) {
            let low = self.additive()?;
            self.expect_kw(Keyword::And)?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }
        if self.eat_kw(Keyword::Like) {
            let pattern = self.additive()?;
            let escape = if self.eat_kw(Keyword::Escape) {
                Some(Box::new(self.additive()?))
            } else {
                None
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                escape,
                negated,
            });
        }
        if negated {
            return Err(self.unexpected("'in', 'between', or 'like' after 'not'"));
        }
        Ok(left)
    }

    fn in_tail(&mut self, left: Expr, negated: bool) -> Result<Expr, SqlError> {
        self.expect(&TokenKind::LParen)?;
        if self.check_kw(Keyword::Select) {
            let sub = self.select_stmt()?;
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::InSubquery {
                expr: Box::new(left),
                subquery: Box::new(sub),
                negated,
            });
        }
        let mut list = vec![self.expr()?];
        while self.eat(&TokenKind::Comma) {
            list.push(self.expr()?);
        }
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::InList { expr: Box::new(left), list, negated })
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                TokenKind::Percent => BinaryOp::Mod,
                _ => return Ok(left),
            };
            self.advance();
            let right = self.unary()?;
            left = Expr::binary(left, op, right);
        }
    }

    fn unary(&mut self) -> Result<Expr, SqlError> {
        if self.eat(&TokenKind::Minus) {
            let inner = self.unary()?;
            return Ok(Expr::Unary { op: UnaryOp::Neg, expr: Box::new(inner) });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        match self.peek().clone() {
            TokenKind::Int(i) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(i)))
            }
            TokenKind::Float(x) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(x)))
            }
            TokenKind::Str(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Keyword(Keyword::Null) => {
                self.advance();
                Ok(Expr::Literal(Value::Null))
            }
            TokenKind::Keyword(Keyword::True) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(true)))
            }
            TokenKind::Keyword(Keyword::False) => {
                self.advance();
                Ok(Expr::Literal(Value::Bool(false)))
            }
            TokenKind::Keyword(Keyword::Exists) => self.exists(false),
            TokenKind::Keyword(
                kw @ (Keyword::Count | Keyword::Sum | Keyword::Avg | Keyword::Min | Keyword::Max),
            ) => {
                self.advance();
                self.aggregate(kw)
            }
            TokenKind::LParen => {
                self.advance();
                if self.check_kw(Keyword::Select) {
                    let sub = self.select_stmt()?;
                    self.expect(&TokenKind::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(sub)));
                }
                let inner = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(inner)
            }
            TokenKind::Ident(_) => self.column_ref(),
            other => Err(SqlError::parse(self.offset(), format!("expected expression, found {other}"))),
        }
    }

    fn exists(&mut self, negated: bool) -> Result<Expr, SqlError> {
        self.expect_kw(Keyword::Exists)?;
        self.expect(&TokenKind::LParen)?;
        let sub = self.select_stmt()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::Exists { subquery: Box::new(sub), negated })
    }

    fn aggregate(&mut self, kw: Keyword) -> Result<Expr, SqlError> {
        let func = match kw {
            Keyword::Count => AggFunc::Count,
            Keyword::Sum => AggFunc::Sum,
            Keyword::Avg => AggFunc::Avg,
            Keyword::Min => AggFunc::Min,
            Keyword::Max => AggFunc::Max,
            _ => unreachable!("caller checked"),
        };
        self.expect(&TokenKind::LParen)?;
        if func == AggFunc::Count && self.eat(&TokenKind::Star) {
            self.expect(&TokenKind::RParen)?;
            return Ok(Expr::Aggregate { func, arg: None, distinct: false });
        }
        let distinct = self.eat_kw(Keyword::Distinct);
        let arg = self.expr()?;
        self.expect(&TokenKind::RParen)?;
        Ok(Expr::Aggregate { func, arg: Some(Box::new(arg)), distinct })
    }

    fn column_ref(&mut self) -> Result<Expr, SqlError> {
        let first = self.ident()?;
        if self.check(&TokenKind::Dot) && !matches!(self.peek_at(1), TokenKind::Star) {
            self.advance();
            let name = self.ident()?;
            return Ok(Expr::Column { qualifier: Some(first), name });
        }
        Ok(Expr::Column { qualifier: None, name: first })
    }
}
