//! Canonical SQL rendering of the AST.
//!
//! The printer emits text the parser accepts, and printing then reparsing
//! yields the same AST (property-tested in `tests/sql_roundtrip.rs`).
//! Parenthesization is conservative: every binary sub-expression is
//! parenthesized, which keeps the printer trivially correct w.r.t.
//! precedence.

use std::fmt;

use crate::ast::*;

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable(ct) => write!(f, "{ct}"),
            Statement::DropTable(t) => write!(f, "drop table {t}"),
            Statement::CreateIndex { table, column, kind } => {
                write!(f, "create index on {table} ({column})")?;
                // Hash is the default; printing it bare keeps pre-ordered
                // scripts byte-stable.
                if *kind == setrules_storage::IndexKind::Ordered {
                    write!(f, " using ordered")?;
                }
                Ok(())
            }
            Statement::DropIndex { table, column } => write!(f, "drop index on {table} ({column})"),
            Statement::CreateRule(r) => write!(f, "{r}"),
            Statement::DropRule(r) => write!(f, "drop rule {r}"),
            Statement::ActivateRule(r) => write!(f, "activate rule {r}"),
            Statement::DeactivateRule(r) => write!(f, "deactivate rule {r}"),
            Statement::CreatePriority { higher, lower } => {
                write!(f, "create rule priority {higher} before {lower}")
            }
            Statement::ProcessRules => write!(f, "process rules"),
            Statement::Dml(op) => write!(f, "{op}"),
        }
    }
}

impl fmt::Display for CreateTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create table {} (", self.name)?;
        for (i, (c, ty)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c} {ty}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for CreateRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "create rule {} when ", self.name)?;
        for (i, p) in self.when.iter().enumerate() {
            if i > 0 {
                write!(f, " or ")?;
            }
            write!(f, "{p}")?;
        }
        if let Some(c) = &self.condition {
            write!(f, " if {c}")?;
        }
        write!(f, " then {}", self.action)
    }
}

impl fmt::Display for BasicTransPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BasicTransPred::InsertedInto(t) => write!(f, "inserted into {t}"),
            BasicTransPred::DeletedFrom(t) => write!(f, "deleted from {t}"),
            BasicTransPred::Updated { table, column: Some(c) } => write!(f, "updated {table}.{c}"),
            BasicTransPred::Updated { table, column: None } => write!(f, "updated {table}"),
            BasicTransPred::Selected { table, column: Some(c) } => write!(f, "selected {table}.{c}"),
            BasicTransPred::Selected { table, column: None } => write!(f, "selected {table}"),
        }
    }
}

impl fmt::Display for RuleAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleAction::Rollback => write!(f, "rollback"),
            RuleAction::Block(ops) => {
                for (i, op) in ops.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{op}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for DmlOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DmlOp::Insert(s) => write!(f, "{s}"),
            DmlOp::Delete(s) => write!(f, "{s}"),
            DmlOp::Update(s) => write!(f, "{s}"),
            DmlOp::Select(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for InsertStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "insert into {}", self.table)?;
        match &self.source {
            InsertSource::Values(rows) => {
                write!(f, " values ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "(")?;
                    for (j, e) in row.iter().enumerate() {
                        if j > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{e}")?;
                    }
                    write!(f, ")")?;
                }
                Ok(())
            }
            InsertSource::Select(sel) => write!(f, " ({sel})"),
        }
    }
}

impl fmt::Display for DeleteStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "delete from {}", self.table)?;
        if let Some(p) = &self.predicate {
            write!(f, " where {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for UpdateStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "update {} set ", self.table)?;
        for (i, (c, e)) in self.sets.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c} = {e}")?;
        }
        if let Some(p) = &self.predicate {
            write!(f, " where {p}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "select ")?;
        if self.distinct {
            write!(f, "distinct ")?;
        }
        for (i, item) in self.projection.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{item}")?;
        }
        write!(f, " from ")?;
        for (i, t) in self.from.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        if let Some(p) = &self.predicate {
            write!(f, " where {p}")?;
        }
        if !self.group_by.is_empty() {
            write!(f, " group by ")?;
            for (i, e) in self.group_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " having {h}")?;
        }
        if !self.order_by.is_empty() {
            write!(f, " order by ")?;
            for (i, (e, asc)) in self.order_by.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{e}")?;
                if !asc {
                    write!(f, " desc")?;
                }
            }
        }
        if let Some(n) = self.limit {
            write!(f, " limit {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Wildcard => write!(f, "*"),
            SelectItem::QualifiedWildcard(q) => write!(f, "{q}.*"),
            SelectItem::Expr { expr, alias: Some(a) } => write!(f, "{expr} as {a}"),
            SelectItem::Expr { expr, alias: None } => write!(f, "{expr}"),
        }
    }
}

impl fmt::Display for TableRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)?;
        if let Some(a) = &self.alias {
            write!(f, " {a}")?;
        }
        Ok(())
    }
}

impl fmt::Display for TableSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableSource::Named(n) => write!(f, "{n}"),
            TableSource::Transition { kind, table, column } => {
                let kw = match kind {
                    TransitionKind::Inserted => "inserted",
                    TransitionKind::Deleted => "deleted",
                    TransitionKind::OldUpdated => "old updated",
                    TransitionKind::NewUpdated => "new updated",
                    TransitionKind::Selected => "selected",
                };
                write!(f, "{kw} {table}")?;
                if let Some(c) = column {
                    write!(f, ".{c}")?;
                }
                Ok(())
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Column { qualifier: Some(q), name } => write!(f, "{q}.{name}"),
            Expr::Column { qualifier: None, name } => write!(f, "{name}"),
            Expr::Unary { op: UnaryOp::Not, expr } => write!(f, "(not ({expr}))"),
            Expr::Unary { op: UnaryOp::Neg, expr } => write!(f, "-({expr})"),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::IsNull { expr, negated: false } => write!(f, "(({expr}) is null)"),
            Expr::IsNull { expr, negated: true } => write!(f, "(({expr}) is not null)"),
            Expr::InList { expr, list, negated } => {
                write!(f, "(({expr}) {}in (", if *negated { "not " } else { "" })?;
                for (i, e) in list.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{e}")?;
                }
                write!(f, "))")
            }
            Expr::InSubquery { expr, subquery, negated } => {
                write!(f, "(({expr}) {}in ({subquery}))", if *negated { "not " } else { "" })
            }
            Expr::Exists { subquery, negated: false } => write!(f, "exists ({subquery})"),
            Expr::Exists { subquery, negated: true } => write!(f, "(not exists ({subquery}))"),
            Expr::ScalarSubquery(s) => write!(f, "({s})"),
            Expr::Between { expr, low, high, negated } => write!(
                f,
                "(({expr}) {}between ({low}) and ({high}))",
                if *negated { "not " } else { "" }
            ),
            Expr::Like { expr, pattern, escape, negated } => {
                write!(f, "(({expr}) {}like ({pattern})", if *negated { "not " } else { "" })?;
                if let Some(e) = escape {
                    write!(f, " escape ({e})")?;
                }
                write!(f, ")")
            }
            Expr::Aggregate { func, arg: None, .. } => write!(f, "{}(*)", func.name()),
            Expr::Aggregate { func, arg: Some(a), distinct } => {
                write!(f, "{}({}{a})", func.name(), if *distinct { "distinct " } else { "" })
            }
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
            BinaryOp::Mod => "%",
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "and",
            BinaryOp::Or => "or",
        };
        write!(f, "{s}")
    }
}
