//! Hand-written lexer for the SQL dialect.
//!
//! Case-insensitive; `--` line comments; string literals in single quotes
//! with `''` escaping. Transition-table words (`inserted`, `deleted`,
//! `updated`, `selected`, `old`, `new`) are deliberately *not* reserved —
//! the parser treats them as soft keywords so ordinary tables may use those
//! names.

use crate::error::SqlError;
use crate::token::{Keyword, Token, TokenKind};

/// Tokenize `input`, returning the token stream terminated by
/// [`TokenKind::Eof`].
pub fn lex(input: &str) -> Result<Vec<Token>, SqlError> {
    Lexer { input, bytes: input.as_bytes(), pos: 0 }.run()
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Result<Vec<Token>, SqlError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let offset = self.pos;
            let Some(&b) = self.bytes.get(self.pos) else {
                out.push(Token { kind: TokenKind::Eof, offset });
                return Ok(out);
            };
            let kind = match b {
                b'(' => self.one(TokenKind::LParen),
                b')' => self.one(TokenKind::RParen),
                b',' => self.one(TokenKind::Comma),
                b';' => self.one(TokenKind::Semicolon),
                b'*' => self.one(TokenKind::Star),
                b'/' => self.one(TokenKind::Slash),
                b'%' => self.one(TokenKind::Percent),
                b'+' => self.one(TokenKind::Plus),
                b'-' => self.one(TokenKind::Minus),
                b'=' => self.one(TokenKind::Eq),
                b'.' => {
                    // A dot may start a float literal (e.g. `.95`).
                    if self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit) {
                        self.number(offset)?
                    } else {
                        self.one(TokenKind::Dot)
                    }
                }
                b'<' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.one(TokenKind::LtEq),
                        Some(b'>') => self.one(TokenKind::NotEq),
                        _ => TokenKind::Lt,
                    }
                }
                b'>' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.one(TokenKind::GtEq),
                        _ => TokenKind::Gt,
                    }
                }
                b'!' => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'=') => self.one(TokenKind::NotEq),
                        _ => {
                            return Err(SqlError::lex(offset, "unexpected character '!'"));
                        }
                    }
                }
                b'\'' => self.string(offset)?,
                b'0'..=b'9' => self.number(offset)?,
                b if b.is_ascii_alphabetic() || b == b'_' => self.word(),
                _ => {
                    let ch = self.input[self.pos..].chars().next().unwrap();
                    return Err(SqlError::lex(offset, format!("unexpected character '{ch}'")));
                }
            };
            out.push(Token { kind, offset });
        }
    }

    fn one(&mut self, kind: TokenKind) -> TokenKind {
        self.pos += 1;
        kind
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
                self.pos += 1;
            }
            if self.bytes.get(self.pos) == Some(&b'-') && self.bytes.get(self.pos + 1) == Some(&b'-') {
                while self.bytes.get(self.pos).is_some_and(|&b| b != b'\n') {
                    self.pos += 1;
                }
            } else {
                return;
            }
        }
    }

    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_')
        {
            self.pos += 1;
        }
        let word = self.input[start..self.pos].to_ascii_lowercase();
        match Keyword::from_str(&word) {
            Some(kw) => TokenKind::Keyword(kw),
            None => TokenKind::Ident(word),
        }
    }

    fn number(&mut self, offset: usize) -> Result<TokenKind, SqlError> {
        let start = self.pos;
        let mut is_float = false;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        if self.bytes.get(self.pos) == Some(&b'.')
            && self.bytes.get(self.pos + 1).is_some_and(u8::is_ascii_digit)
        {
            is_float = true;
            self.pos += 1;
            while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                self.pos += 1;
            }
        } else if self.bytes.get(self.pos) == Some(&b'.')
            && start < self.pos
            && !self.bytes.get(self.pos + 1).is_some_and(|b| b.is_ascii_alphabetic() || *b == b'_')
        {
            // Trailing dot as in `1.` — accept as float.
            is_float = true;
            self.pos += 1;
        }
        if matches!(self.bytes.get(self.pos), Some(b'e') | Some(b'E')) {
            let mut look = self.pos + 1;
            if matches!(self.bytes.get(look), Some(b'+') | Some(b'-')) {
                look += 1;
            }
            if self.bytes.get(look).is_some_and(u8::is_ascii_digit) {
                is_float = true;
                self.pos = look;
                while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.input[start..self.pos];
        if is_float {
            text.parse::<f64>()
                .map(TokenKind::Float)
                .map_err(|_| SqlError::lex(offset, format!("invalid float literal '{text}'")))
        } else {
            text.parse::<i64>()
                .map(TokenKind::Int)
                .map_err(|_| SqlError::lex(offset, format!("integer literal '{text}' out of range")))
        }
    }

    fn string(&mut self, offset: usize) -> Result<TokenKind, SqlError> {
        self.pos += 1; // opening quote
        let mut s = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(SqlError::lex(offset, "unterminated string literal")),
                Some(b'\'') => {
                    if self.bytes.get(self.pos + 1) == Some(&b'\'') {
                        s.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        return Ok(TokenKind::Str(s));
                    }
                }
                Some(_) => {
                    let ch = self.input[self.pos..].chars().next().unwrap();
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Keyword as K;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents_case_insensitive() {
        assert_eq!(
            kinds("SELECT Name FROM Emp"),
            vec![
                TokenKind::Keyword(K::Select),
                TokenKind::Ident("name".into()),
                TokenKind::Keyword(K::From),
                TokenKind::Ident("emp".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn soft_keywords_are_identifiers() {
        assert_eq!(
            kinds("inserted deleted updated old new selected"),
            vec![
                TokenKind::Ident("inserted".into()),
                TokenKind::Ident("deleted".into()),
                TokenKind::Ident("updated".into()),
                TokenKind::Ident("old".into()),
                TokenKind::Ident("new".into()),
                TokenKind::Ident("selected".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn numbers() {
        assert_eq!(
            kinds("42 0.95 2.5e3 1e-2 7."),
            vec![
                TokenKind::Int(42),
                TokenKind::Float(0.95),
                TokenKind::Float(2500.0),
                TokenKind::Float(0.01),
                TokenKind::Float(7.0),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn leading_dot_float() {
        assert_eq!(kinds(".95"), vec![TokenKind::Float(0.95), TokenKind::Eof]);
    }

    #[test]
    fn dotted_column_not_a_float() {
        assert_eq!(
            kinds("emp.salary"),
            vec![
                TokenKind::Ident("emp".into()),
                TokenKind::Dot,
                TokenKind::Ident("salary".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            kinds("'it''s' ''"),
            vec![TokenKind::Str("it's".into()), TokenKind::Str(String::new()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(lex("'oops").is_err());
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("= <> != < <= > >= + - * / %"),
            vec![
                TokenKind::Eq,
                TokenKind::NotEq,
                TokenKind::NotEq,
                TokenKind::Lt,
                TokenKind::LtEq,
                TokenKind::Gt,
                TokenKind::GtEq,
                TokenKind::Plus,
                TokenKind::Minus,
                TokenKind::Star,
                TokenKind::Slash,
                TokenKind::Percent,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(
            kinds("select -- the projection\n 1"),
            vec![TokenKind::Keyword(K::Select), TokenKind::Int(1), TokenKind::Eof]
        );
    }

    #[test]
    fn bare_bang_is_error() {
        assert!(lex("!x").is_err());
    }

    #[test]
    fn offsets_recorded() {
        let toks = lex("select  x").unwrap();
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].offset, 8);
    }
}
