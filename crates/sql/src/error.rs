//! SQL front-end errors.

use std::fmt;

/// An error from the lexer or parser, carrying the byte offset at which it
/// was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SqlError {
    /// Byte offset in the source text.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
    /// Whether the error came from the lexer (`true`) or parser (`false`).
    pub lexical: bool,
}

impl SqlError {
    /// Build a lexer error.
    pub fn lex(offset: usize, message: impl Into<String>) -> Self {
        SqlError { offset, message: message.into(), lexical: true }
    }

    /// Build a parser error.
    pub fn parse(offset: usize, message: impl Into<String>) -> Self {
        SqlError { offset, message: message.into(), lexical: false }
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stage = if self.lexical { "lex" } else { "parse" };
        write!(f, "{stage} error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for SqlError {}
