//! # setrules-sql
//!
//! The SQL front-end for the `setrules` system: a hand-written lexer,
//! recursive-descent parser, AST, and canonical printer for the dialect of
//! Widom & Finkelstein's SIGMOD 1990 paper — SQL DML (§2.1), production-rule
//! DDL (§3), rule priorities (§4.4), and the §5 extensions (`selected`
//! predicates, `process rules` triggering points).
//!
//! ```
//! use setrules_sql::{parse_statement, ast::Statement};
//!
//! let stmt = parse_statement(
//!     "create rule cascade when deleted from dept \
//!      then delete from emp where dept_no in (select dept_no from deleted dept)",
//! ).unwrap();
//! assert!(matches!(stmt, Statement::CreateRule(_)));
//! ```

#![warn(missing_docs)]

pub mod ast;
mod display;
mod error;
mod lexer;
mod parser;
pub mod token;

pub use error::SqlError;
pub use lexer::lex;
pub use parser::rule::parse_trans_pred;
pub use parser::{parse_expr, parse_op_block, parse_statement, parse_statements};

#[cfg(test)]
mod tests {
    use super::ast::*;
    use super::*;
    use setrules_storage::{DataType, Value};

    #[test]
    fn create_table() {
        let s = parse_statement("create table emp (name text, emp_no int, salary float, dept_no int)")
            .unwrap();
        let Statement::CreateTable(ct) = s else { panic!() };
        assert_eq!(ct.name, "emp");
        assert_eq!(ct.columns.len(), 4);
        assert_eq!(ct.columns[2], ("salary".into(), DataType::Float));
    }

    #[test]
    fn paper_example_3_1_parses() {
        let s = parse_statement(
            "create rule r31 when deleted from dept \
             then delete from emp where dept_no in (select dept_no from deleted dept)",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else { panic!() };
        assert_eq!(r.name, "r31");
        assert_eq!(r.when, vec![BasicTransPred::DeletedFrom("dept".into())]);
        assert!(r.condition.is_none());
        let RuleAction::Block(ops) = &r.action else { panic!() };
        assert_eq!(ops.len(), 1);
        let DmlOp::Delete(d) = &ops[0] else { panic!() };
        assert_eq!(d.table, "emp");
        let Some(Expr::InSubquery { subquery, negated: false, .. }) = &d.predicate else { panic!() };
        assert!(matches!(
            &subquery.from[0].source,
            TableSource::Transition { kind: TransitionKind::Deleted, table, column: None } if table == "dept"
        ));
    }

    #[test]
    fn paper_example_3_2_parses() {
        let s = parse_statement(
            "create rule r32 when updated emp.salary \
             if (select sum(salary) from new updated emp.salary) > \
                (select sum(salary) from old updated emp.salary) \
             then update emp set salary = 0.95 * salary where dept_no = 2; \
                  update emp set salary = 0.85 * salary where dept_no = 3",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else { panic!() };
        assert_eq!(
            r.when,
            vec![BasicTransPred::Updated { table: "emp".into(), column: Some("salary".into()) }]
        );
        let Some(Expr::Binary { op: BinaryOp::Gt, left, .. }) = &r.condition else { panic!() };
        let Expr::ScalarSubquery(sub) = left.as_ref() else { panic!() };
        assert!(matches!(
            &sub.from[0].source,
            TableSource::Transition { kind: TransitionKind::NewUpdated, column: Some(c), .. } if c == "salary"
        ));
        let RuleAction::Block(ops) = &r.action else { panic!() };
        assert_eq!(ops.len(), 2, "the action is a two-operation block");
    }

    #[test]
    fn paper_example_3_3_parses() {
        let s = parse_statement(
            "create rule r33 when inserted into emp or deleted from emp \
               or updated emp.salary or updated emp.dept_no \
             if exists (select * from emp e1 where salary > \
                 2 * (select avg(salary) from emp e2 where e2.dept_no = e1.dept_no)) \
             then delete from emp where emp_no = \
                 (select mgr_no from dept where dept_no = 5)",
        )
        .unwrap();
        let Statement::CreateRule(r) = s else { panic!() };
        assert_eq!(r.when.len(), 4);
        let Some(Expr::Exists { negated: false, subquery }) = &r.condition else { panic!() };
        assert_eq!(subquery.from[0].alias.as_deref(), Some("e1"));
    }

    #[test]
    fn rollback_action() {
        let s = parse_statement("create rule guard when inserted into emp then rollback").unwrap();
        let Statement::CreateRule(r) = s else { panic!() };
        assert_eq!(r.action, RuleAction::Rollback);
    }

    #[test]
    fn priority_statement() {
        let s = parse_statement("create rule priority r2 before r1").unwrap();
        assert_eq!(s, Statement::CreatePriority { higher: "r2".into(), lower: "r1".into() });
    }

    #[test]
    fn rule_admin_statements() {
        assert_eq!(parse_statement("drop rule r").unwrap(), Statement::DropRule("r".into()));
        assert_eq!(parse_statement("activate rule r").unwrap(), Statement::ActivateRule("r".into()));
        assert_eq!(
            parse_statement("deactivate rule r").unwrap(),
            Statement::DeactivateRule("r".into())
        );
        assert_eq!(parse_statement("process rules").unwrap(), Statement::ProcessRules);
    }

    #[test]
    fn op_block_multiple_ops() {
        let ops = parse_op_block(
            "insert into emp values ('Jane', 1, 9.5, 2); update emp set salary = salary + 1; \
             delete from dept",
        )
        .unwrap();
        assert_eq!(ops.len(), 3);
    }

    #[test]
    fn multi_row_values() {
        let ops = parse_op_block("insert into dept values (1, 10), (2, 20)").unwrap();
        let DmlOp::Insert(ins) = &ops[0] else { panic!() };
        let InsertSource::Values(rows) = &ins.source else { panic!() };
        assert_eq!(rows.len(), 2);
    }

    #[test]
    fn insert_from_select() {
        let ops = parse_op_block("insert into backup (select * from emp where salary > 100)").unwrap();
        let DmlOp::Insert(ins) = &ops[0] else { panic!() };
        assert!(matches!(ins.source, InsertSource::Select(_)));
    }

    #[test]
    fn select_with_all_clauses() {
        let s = parse_statement(
            "select dept_no, avg(salary) as a from emp where salary > 0 \
             group by dept_no having count(*) > 1 order by dept_no desc limit 10",
        )
        .unwrap();
        let Statement::Dml(DmlOp::Select(sel)) = s else { panic!() };
        assert_eq!(sel.projection.len(), 2);
        assert_eq!(sel.group_by.len(), 1);
        assert!(sel.having.is_some());
        assert_eq!(sel.order_by.len(), 1);
        assert!(!sel.order_by[0].1, "desc");
        assert_eq!(sel.limit, Some(10));
    }

    #[test]
    fn transition_table_with_alias() {
        let s = parse_statement("select tvar.name from inserted emp tvar").unwrap();
        let Statement::Dml(DmlOp::Select(sel)) = s else { panic!() };
        assert_eq!(sel.from[0].alias.as_deref(), Some("tvar"));
        assert_eq!(sel.from[0].binding_name(), "tvar");
    }

    #[test]
    fn old_new_updated_without_column() {
        let s = parse_statement("select * from old updated emp, new updated emp").unwrap();
        let Statement::Dml(DmlOp::Select(sel)) = s else { panic!() };
        assert!(matches!(
            &sel.from[0].source,
            TableSource::Transition { kind: TransitionKind::OldUpdated, column: None, .. }
        ));
        assert!(matches!(
            &sel.from[1].source,
            TableSource::Transition { kind: TransitionKind::NewUpdated, column: None, .. }
        ));
    }

    #[test]
    fn selected_transition_table() {
        let s = parse_statement("select * from selected emp.salary").unwrap();
        let Statement::Dml(DmlOp::Select(sel)) = s else { panic!() };
        assert!(matches!(
            &sel.from[0].source,
            TableSource::Transition { kind: TransitionKind::Selected, column: Some(c), .. } if c == "salary"
        ));
    }

    #[test]
    fn plain_table_named_old_is_fine() {
        // `old` alone (not followed by `updated`) is an ordinary name.
        let s = parse_statement("select * from old").unwrap();
        let Statement::Dml(DmlOp::Select(sel)) = s else { panic!() };
        assert_eq!(sel.from[0].source, TableSource::Named("old".into()));
    }

    #[test]
    fn expression_precedence() {
        let e = parse_expr("1 + 2 * 3 = 7 and not 1 > 2 or false").unwrap();
        // ((1 + (2*3)) = 7 and not (1 > 2)) or false
        let Expr::Binary { op: BinaryOp::Or, left, right } = e else { panic!() };
        assert_eq!(*right, Expr::lit(false));
        let Expr::Binary { op: BinaryOp::And, left: l2, .. } = *left else { panic!() };
        let Expr::Binary { op: BinaryOp::Eq, left: sum, .. } = *l2 else { panic!() };
        let Expr::Binary { op: BinaryOp::Add, right: prod, .. } = *sum else { panic!() };
        assert!(matches!(*prod, Expr::Binary { op: BinaryOp::Mul, .. }));
    }

    #[test]
    fn between_and_binds_to_between() {
        let e = parse_expr("x between 1 and 2 and y = 3").unwrap();
        let Expr::Binary { op: BinaryOp::And, left, .. } = e else { panic!() };
        assert!(matches!(*left, Expr::Between { negated: false, .. }));
    }

    #[test]
    fn not_in_and_not_between_and_not_like() {
        assert!(matches!(parse_expr("x not in (1, 2)").unwrap(), Expr::InList { negated: true, .. }));
        assert!(matches!(
            parse_expr("x not between 1 and 2").unwrap(),
            Expr::Between { negated: true, .. }
        ));
        assert!(matches!(parse_expr("x not like 'a%'").unwrap(), Expr::Like { negated: true, .. }));
        assert!(matches!(
            parse_expr("not exists (select * from t)").unwrap(),
            Expr::Exists { negated: true, .. }
        ));
    }

    #[test]
    fn is_null_forms() {
        assert!(matches!(parse_expr("x is null").unwrap(), Expr::IsNull { negated: false, .. }));
        assert!(matches!(parse_expr("x is not null").unwrap(), Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn count_star_and_distinct() {
        assert_eq!(
            parse_expr("count(*)").unwrap(),
            Expr::Aggregate { func: AggFunc::Count, arg: None, distinct: false }
        );
        assert!(matches!(
            parse_expr("count(distinct dept_no)").unwrap(),
            Expr::Aggregate { func: AggFunc::Count, arg: Some(_), distinct: true }
        ));
    }

    #[test]
    fn string_literal_with_quote() {
        assert_eq!(parse_expr("'it''s'").unwrap(), Expr::Literal(Value::Text("it's".into())));
    }

    #[test]
    fn scripts_split_on_semicolons() {
        let stmts = parse_statements(
            "create table t (a int); insert into t values (1); select * from t;",
        )
        .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn script_rule_action_absorbs_following_dml() {
        // Documented greediness: the op-block of a rule action extends
        // across semicolons through subsequent DML.
        let stmts = parse_statements(
            "create rule r when inserted into t then delete from u; insert into v values (1)",
        )
        .unwrap();
        assert_eq!(stmts.len(), 1);
        let Statement::CreateRule(r) = &stmts[0] else { panic!() };
        let RuleAction::Block(ops) = &r.action else { panic!() };
        assert_eq!(ops.len(), 2);
    }

    #[test]
    fn script_rule_action_stops_before_ddl() {
        let stmts = parse_statements(
            "create rule r when inserted into t then delete from u; drop rule r",
        )
        .unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn errors_carry_position() {
        let err = parse_statement("select from").unwrap_err();
        assert!(!err.lexical);
        assert!(err.offset >= 7, "error at the 'from', got offset {}", err.offset);
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_statement("select * from t garbage garbage").is_err());
        assert!(parse_expr("1 + 2 extra").is_err());
    }

    #[test]
    fn empty_op_block_rejected() {
        assert!(parse_op_block("").is_err());
    }

    #[test]
    fn parse_trans_pred_list() {
        let preds = parse_trans_pred("inserted into emp or updated emp.salary or updated dept").unwrap();
        assert_eq!(preds.len(), 3);
        assert_eq!(preds[2], BasicTransPred::Updated { table: "dept".into(), column: None });
    }

    #[test]
    fn create_index_using_clause() {
        use setrules_storage::IndexKind;
        let plain = parse_statement("create index on emp (dept_no)").unwrap();
        assert_eq!(
            plain,
            Statement::CreateIndex {
                table: "emp".into(),
                column: "dept_no".into(),
                kind: IndexKind::Hash
            }
        );
        let hash = parse_statement("create index on emp (dept_no) using hash").unwrap();
        assert_eq!(hash, plain);
        let ordered = parse_statement("create index on emp (salary) using ordered").unwrap();
        assert_eq!(
            ordered,
            Statement::CreateIndex {
                table: "emp".into(),
                column: "salary".into(),
                kind: IndexKind::Ordered
            }
        );
        assert!(parse_statement("create index on emp (salary) using btree").is_err());
        // Printing round-trips both kinds; hash stays bare for
        // byte-stability of pre-ordered scripts.
        assert_eq!(plain.to_string(), "create index on emp (dept_no)");
        assert_eq!(ordered.to_string(), "create index on emp (salary) using ordered");
        assert_eq!(parse_statement(&ordered.to_string()).unwrap(), ordered);
        // `using` stays an ordinary identifier elsewhere.
        let s = parse_statement("select using from ordered where hash = 1").unwrap();
        assert!(matches!(s, Statement::Dml(DmlOp::Select(_))));
    }

    #[test]
    fn display_round_trips_paper_rules() {
        let srcs = [
            "create rule r31 when deleted from dept then delete from emp where dept_no in (select dept_no from deleted dept)",
            "create rule r32 when updated emp.salary if (select sum(salary) from new updated emp.salary) > (select sum(salary) from old updated emp.salary) then update emp set salary = 0.95 * salary where dept_no = 2; update emp set salary = 0.85 * salary where dept_no = 3",
            "select distinct a, b as c from t x, u where a = 1 group by a, b having count(*) > 0 order by a desc limit 3",
            "insert into t values (1, 'x', NULL, true), (2, 'y', 3.5, false)",
            "create rule g when updated t then rollback",
        ];
        for src in srcs {
            let ast1 = parse_statement(src).unwrap();
            let printed = ast1.to_string();
            let ast2 = parse_statement(&printed)
                .unwrap_or_else(|e| panic!("reparse of '{printed}' failed: {e}"));
            assert_eq!(ast1, ast2, "round-trip mismatch for: {src}");
        }
    }
}
