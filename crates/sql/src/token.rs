//! Tokens produced by the lexer.

use std::fmt;

/// A lexical token with its source position (for error messages).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the token's first character in the input.
    pub offset: usize,
}

/// Token kinds.
///
/// Keywords are recognized case-insensitively by the lexer and carried as
/// [`TokenKind::Keyword`]; all other words become lower-cased
/// [`TokenKind::Ident`]s (the dialect is case-insensitive throughout,
/// matching the paper's free mixing of cases).
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A reserved word (stored lower-case).
    Keyword(Keyword),
    /// An identifier (stored lower-case).
    Ident(String),
    /// An integer literal.
    Int(i64),
    /// A floating-point literal.
    Float(f64),
    /// A string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// End of input.
    Eof,
}

macro_rules! keywords {
    ($($kw:ident => $text:literal),+ $(,)?) => {
        /// Reserved words of the dialect.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        #[allow(missing_docs)]
        pub enum Keyword {
            $($kw,)+
        }

        impl Keyword {
            /// Look up a lower-cased word.
            #[allow(clippy::should_implement_trait)] // fallible lookup, not parsing
            pub fn from_str(s: &str) -> Option<Keyword> {
                match s {
                    $($text => Some(Keyword::$kw),)+
                    _ => None,
                }
            }

            /// Canonical (lower-case) spelling.
            pub fn as_str(self) -> &'static str {
                match self {
                    $(Keyword::$kw => $text,)+
                }
            }
        }
    };
}

keywords! {
    Select => "select", Insert => "insert", Delete => "delete", Update => "update",
    Into => "into", From => "from", Where => "where", Set => "set", Values => "values",
    Create => "create", Drop => "drop", Table => "table", Index => "index", On => "on",
    Rule => "rule", When => "when", If => "if", Then => "then", Priority => "priority",
    Before => "before", Activate => "activate", Deactivate => "deactivate",
    Process => "process", Rules => "rules", Rollback => "rollback",
    And => "and", Or => "or", Not => "not", In => "in", Exists => "exists",
    Between => "between", Like => "like", Escape => "escape", Is => "is", Null => "null",
    True => "true", False => "false",
    Distinct => "distinct", Group => "group", By => "by", Having => "having",
    Order => "order", Asc => "asc", Desc => "desc", Limit => "limit",
    As => "as",
    Count => "count", Sum => "sum", Avg => "avg", Min => "min", Max => "max",
    Int => "int", Integer => "integer", Float => "float", Real => "real",
    Text => "text", Bool => "bool", Boolean => "boolean",
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Keyword(k) => write!(f, "keyword '{}'", k.as_str()),
            TokenKind::Ident(s) => write!(f, "identifier '{s}'"),
            TokenKind::Int(i) => write!(f, "integer {i}"),
            TokenKind::Float(x) => write!(f, "float {x}"),
            TokenKind::Str(s) => write!(f, "string '{s}'"),
            TokenKind::LParen => write!(f, "'('"),
            TokenKind::RParen => write!(f, "')'"),
            TokenKind::Comma => write!(f, "','"),
            TokenKind::Semicolon => write!(f, "';'"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Slash => write!(f, "'/'"),
            TokenKind::Percent => write!(f, "'%'"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Minus => write!(f, "'-'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::NotEq => write!(f, "'<>'"),
            TokenKind::Lt => write!(f, "'<'"),
            TokenKind::LtEq => write!(f, "'<='"),
            TokenKind::Gt => write!(f, "'>'"),
            TokenKind::GtEq => write!(f, "'>='"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}
