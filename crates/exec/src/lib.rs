//! # setrules-exec
//!
//! A scoped worker pool for deterministic intra-query parallelism.
//!
//! The query layer partitions read-only work — base-table scans, pushdown
//! filtering, hash-join build/probe, and the WHERE pass over joined
//! combinations — into disjoint index ranges, runs each range on a pool
//! worker, and merges the per-partition results *in partition order*.
//! Because every partition is a contiguous slice of the serial iteration
//! order, the merged output is bit-identical to what serial execution
//! would have produced; parallelism is an implementation detail that is
//! invisible in results, error selection, and row-level statistics.
//!
//! Design constraints (and how they are met):
//!
//! * **std-only.** The build environment has no crates.io access, so no
//!   rayon/crossbeam. The pool is `std::thread` + `Mutex`/`Condvar` +
//!   `mpsc`-free hand-rolled queue.
//! * **Lazily spawned.** No threads exist until the first parallel scope
//!   runs; the pool then grows up to [`WorkerPool::size`] (defaults to
//!   `std::thread::available_parallelism()`).
//! * **Scoped.** [`WorkerPool::scope`] lets jobs borrow from the caller's
//!   stack. The scope joins every spawned job before returning — on the
//!   success path *and* when the scope body itself panics — so the
//!   lifetime erasure below is sound.
//! * **Panic-propagating.** A panicking job does not poison the pool or
//!   abort the process: the payload is captured on the worker, carried
//!   back, and re-raised on the caller's thread by `scope`.
//!
//! Workers are daemon-like: once spawned they live for the process
//! lifetime, blocking on the shared queue between scopes. That keeps
//! repeated queries from paying thread-spawn latency.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// A unit of work queued on the pool. Jobs are lifetime-erased by
/// [`Scope::spawn`]; the scope's join-before-return discipline is what
/// makes the erasure sound.
type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its worker threads.
struct Shared {
    queue: Mutex<VecDeque<Job>>,
    job_ready: Condvar,
}

/// Book-keeping for one `scope` call: outstanding-job count, a condvar the
/// caller parks on, and the first captured panic payload (if any).
struct ScopeState {
    pending: AtomicUsize,
    lock: Mutex<()>,
    all_done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send + 'static>>>,
}

impl ScopeState {
    fn new() -> Arc<ScopeState> {
        Arc::new(ScopeState {
            pending: AtomicUsize::new(0),
            lock: Mutex::new(()),
            all_done: Condvar::new(),
            panic: Mutex::new(None),
        })
    }

    /// Block until every job spawned under this scope has finished.
    fn join(&self) {
        let mut guard = self.lock.lock().expect("scope lock poisoned");
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = self.all_done.wait(guard).expect("scope lock poisoned");
        }
    }
}

/// A lazily-spawned, process-lifetime worker pool with a scoped-spawn API.
pub struct WorkerPool {
    shared: Arc<Shared>,
    /// Maximum number of worker threads this pool will ever spawn.
    size: usize,
    /// Number of workers actually spawned so far (grows lazily).
    spawned: Mutex<usize>,
}

impl WorkerPool {
    /// Create a pool that will lazily spawn up to `size` workers
    /// (`size` is clamped to at least 1).
    pub fn new(size: usize) -> WorkerPool {
        WorkerPool {
            shared: Arc::new(Shared {
                queue: Mutex::new(VecDeque::new()),
                job_ready: Condvar::new(),
            }),
            size: size.max(1),
            spawned: Mutex::new(0),
        }
    }

    /// The process-wide pool, sized by `available_parallelism()`. Created
    /// (but not yet populated with threads) on first use.
    pub fn global() -> &'static WorkerPool {
        static POOL: OnceLock<WorkerPool> = OnceLock::new();
        POOL.get_or_init(|| WorkerPool::new(default_parallelism()))
    }

    /// Maximum worker count for this pool.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Spawn workers (up to the pool size) so at least `wanted` exist.
    fn ensure_workers(&self, wanted: usize) {
        let wanted = wanted.min(self.size);
        let mut n = self.spawned.lock().expect("pool spawn lock poisoned");
        while *n < wanted {
            let shared = Arc::clone(&self.shared);
            thread::Builder::new()
                .name(format!("setrules-worker-{n}"))
                .spawn(move || worker_loop(&shared))
                .expect("failed to spawn pool worker");
            *n += 1;
        }
    }

    /// Run `body` with a [`Scope`] whose spawned jobs may borrow from the
    /// caller's stack. Every job is joined before `scope` returns; if any
    /// job panicked, the first captured payload is re-raised here (a panic
    /// in `body` itself is re-raised after the join, jobs first).
    pub fn scope<'pool, 'scope, R>(
        &'pool self,
        body: impl FnOnce(&Scope<'pool, 'scope>) -> R,
    ) -> R {
        self.ensure_workers(self.size);
        let scope = Scope {
            pool: self,
            state: ScopeState::new(),
            _marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| body(&scope)));
        // Join unconditionally: jobs borrowing the caller's stack must not
        // outlive this frame even when `body` panicked.
        scope.state.join();
        if let Some(payload) = scope.state.panic.lock().expect("panic slot poisoned").take() {
            resume_unwind(payload);
        }
        match result {
            Ok(r) => r,
            Err(payload) => resume_unwind(payload),
        }
    }

    /// Split `0..n` into up to `max_parts` contiguous ranges of at least
    /// `min_chunk` items each, run `work` on every range (other partitions
    /// on pool workers, the first inline on the caller), and return the
    /// per-partition results **in partition order**.
    ///
    /// Partitions are disjoint, contiguous, and cover `0..n` in order, so
    /// concatenating the results reproduces the serial left-to-right
    /// iteration exactly. With one partition (or `n == 0`) no worker is
    /// involved at all.
    pub fn run_chunked<R: Send>(
        &self,
        n: usize,
        max_parts: usize,
        min_chunk: usize,
        work: impl Fn(Range<usize>) -> R + Sync,
    ) -> Vec<R> {
        let ranges = partition_ranges(n, max_parts, min_chunk);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(&work).collect();
        }
        let mut results: Vec<Option<R>> = Vec::new();
        results.resize_with(ranges.len(), || None);
        let work = &work;
        self.scope(|s| {
            let (first_slot, rest) = results.split_first_mut().expect("len checked above");
            for (slot, range) in rest.iter_mut().zip(ranges[1..].iter().cloned()) {
                s.spawn(move || *slot = Some(work(range)));
            }
            // Run the first partition on the caller's thread: it would
            // otherwise sit parked in `join` while workers run.
            *first_slot = Some(work(ranges[0].clone()));
        });
        results
            .into_iter()
            .map(|r| r.expect("scope joined every partition"))
            .collect()
    }
}

/// Handle passed to the body of [`WorkerPool::scope`]; spawns jobs that may
/// borrow anything that outlives the scope.
pub struct Scope<'pool, 'scope> {
    pool: &'pool WorkerPool,
    state: Arc<ScopeState>,
    /// Make `'scope` invariant so callers cannot shrink it.
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'pool, 'scope> Scope<'pool, 'scope> {
    /// Queue `job` on the pool. The job may borrow from the enclosing
    /// stack frame (`'scope`); the scope joins it before returning.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'scope) {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let erased: Box<dyn FnOnce() + Send + 'scope> = Box::new(job);
        // SAFETY: `WorkerPool::scope` joins every spawned job before it
        // returns (including on panic), so all `'scope` borrows captured
        // by `job` strictly outlive its execution.
        let erased: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(erased)
        };
        let wrapped: Job = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(erased)) {
                let mut slot = state.panic.lock().expect("panic slot poisoned");
                slot.get_or_insert(payload);
            }
            if state.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let _guard = state.lock.lock().expect("scope lock poisoned");
                state.all_done.notify_all();
            }
        });
        {
            let mut q = self.pool.shared.queue.lock().expect("pool queue poisoned");
            q.push_back(wrapped);
        }
        self.pool.shared.job_ready.notify_one();
    }
}

/// Worker main loop: pull a job, run it, repeat forever.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.job_ready.wait(q).expect("pool queue poisoned");
            }
        };
        job();
    }
}

/// Split `0..n` into at most `max_parts` contiguous ranges, none smaller
/// than `min_chunk` (except possibly the last), covering `0..n` in order.
/// Returns an empty vec when `n == 0`.
pub fn partition_ranges(n: usize, max_parts: usize, min_chunk: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let min_chunk = min_chunk.max(1);
    let parts = max_parts.max(1).min(n.div_ceil(min_chunk));
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        out.push(start..end);
        start = end;
    }
    out
}

/// Number of threads to use when the caller expressed no preference:
/// `std::thread::available_parallelism()`, or 1 if unknown.
pub fn default_parallelism() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Resolve the effective thread count for a query.
///
/// Precedence: an **explicit** configuration value (`Some(n)`) wins; the
/// `SETRULES_THREADS` environment variable overrides the *default*; the
/// default is [`default_parallelism`]. The env var is re-read on every
/// call so test harnesses can flip it between statements. Values are
/// clamped to at least 1; unparsable values are ignored.
pub fn resolve_threads(configured: Option<usize>) -> usize {
    if let Some(n) = configured {
        return n.max(1);
    }
    if let Ok(raw) = std::env::var("SETRULES_THREADS") {
        if let Ok(n) = raw.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    default_parallelism()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_cover_in_order() {
        for n in [0usize, 1, 5, 64, 100, 1000] {
            for parts in [1usize, 2, 7, 8] {
                for min_chunk in [1usize, 16, 64] {
                    let ranges = partition_ranges(n, parts, min_chunk);
                    let mut next = 0usize;
                    for r in &ranges {
                        assert_eq!(r.start, next, "contiguous");
                        assert!(r.end > r.start, "nonempty");
                        next = r.end;
                    }
                    assert_eq!(next, n, "covers 0..n");
                    assert!(ranges.len() <= parts.max(1));
                }
            }
        }
    }

    #[test]
    fn run_chunked_preserves_partition_order() {
        let pool = WorkerPool::new(4);
        let items: Vec<usize> = (0..1000).collect();
        let chunks = pool.run_chunked(items.len(), 4, 16, |r| items[r].to_vec());
        let merged: Vec<usize> = chunks.into_iter().flatten().collect();
        assert_eq!(merged, items);
    }

    #[test]
    fn scope_jobs_borrow_stack() {
        let pool = WorkerPool::new(2);
        let data = [1u64, 2, 3, 4];
        let mut left = 0u64;
        let mut right = 0u64;
        pool.scope(|s| {
            let (a, b) = data.split_at(2);
            let lref = &mut left;
            let rref = &mut right;
            s.spawn(move || *lref = a.iter().sum());
            s.spawn(move || *rref = b.iter().sum());
        });
        assert_eq!(left + right, 10);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let caught = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|| panic!("boom in worker")));
        }));
        let payload = caught.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom in worker");
        // The pool must keep working after a panicked job.
        let sums = pool.run_chunked(100, 2, 1, |r| r.sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..100).sum::<usize>());
    }

    #[test]
    fn resolve_threads_precedence() {
        // Explicit config always wins and is clamped to >= 1.
        assert_eq!(resolve_threads(Some(3)), 3);
        assert_eq!(resolve_threads(Some(0)), 1);
        // Default resolution yields at least one thread.
        assert!(resolve_threads(None) >= 1);
    }
}
