//! # setrules-testkit
//!
//! A deterministic pseudo-random generator ([`Rng`]) and a minimal
//! property-testing harness ([`check`]) used by the workspace's
//! randomized tests. It replaces the external `proptest`/`rand` crates,
//! which are unavailable in the offline build environment.
//!
//! Every case is derived from a fixed base seed, so failures are
//! reproducible byte-for-byte: the harness panics with the failing case
//! index and per-case seed, and [`check_seed`] reruns exactly one case.
//! There is no shrinking — generators here are kept small enough that a
//! raw counterexample is readable.

#![warn(missing_docs)]

/// A splitmix64-seeded xorshift64* generator: tiny, fast, and plenty
/// random for test-case generation. Not for cryptography.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Create a generator from a seed. Any seed (including 0) is fine;
    /// it is pre-mixed through splitmix64.
    pub fn new(seed: u64) -> Rng {
        // splitmix64 step guarantees a non-zero, well-mixed state.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Rng { state: z | 1 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "Rng::below requires a non-zero bound");
        (self.next_u64() % bound as u64) as usize
    }

    /// Uniform value in `[lo, hi]` (inclusive).
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi);
        let span = (hi as i128 - lo as i128 + 1) as u128;
        lo.wrapping_add((self.next_u64() as u128 % span) as i64)
    }

    /// `true` with probability `num/denom`.
    pub fn chance(&mut self, num: u32, denom: u32) -> bool {
        assert!(denom > 0);
        (self.next_u64() % denom as u64) < num as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Pick a reference to a random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }

    /// Clone a random element of a non-empty slice.
    pub fn pick_cloned<T: Clone>(&mut self, items: &[T]) -> T {
        self.pick(items).clone()
    }

    /// Fork an independent generator (for sub-structures that should not
    /// perturb the parent's stream).
    pub fn fork(&mut self) -> Rng {
        Rng::new(self.next_u64())
    }
}

/// Run `cases` instances of a property. Each case gets an [`Rng`] seeded
/// from `base_seed` and the case index; a panic inside the property is
/// re-raised wrapped with the case index and per-case seed so it can be
/// replayed via [`check_seed`].
pub fn check(name: &str, cases: u32, base_seed: u64, mut property: impl FnMut(&mut Rng)) {
    for case in 0..cases {
        let seed = case_seed(base_seed, case);
        let mut rng = Rng::new(seed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            property(&mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            panic!(
                "property '{name}' failed at case {case}/{cases} \
                 (replay with check_seed(\"{name}\", {seed:#x}, ..)): {msg}"
            );
        }
    }
}

/// Replay a single property case with an exact seed (as printed by a
/// [`check`] failure).
pub fn check_seed(name: &str, seed: u64, mut property: impl FnMut(&mut Rng)) {
    let mut rng = Rng::new(seed);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        property(&mut rng);
    }));
    if result.is_err() {
        panic!("property '{name}' failed for seed {seed:#x}");
    }
}

fn case_seed(base: u64, case: u32) -> u64 {
    base.wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(case as u64)
        .rotate_left(17)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = { let mut r = Rng::new(42); (0..8).map(|_| r.next_u64()).collect() };
        let b: Vec<u64> = { let mut r = Rng::new(42); (0..8).map(|_| r.next_u64()).collect() };
        let c: Vec<u64> = { let mut r = Rng::new(43); (0..8).map(|_| r.next_u64()).collect() };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn below_and_range_respect_bounds() {
        let mut r = Rng::new(7);
        for _ in 0..10_000 {
            assert!(r.below(10) < 10);
            let v = r.range_i64(-5, 5);
            assert!((-5..=5).contains(&v));
            let f = r.unit_f64();
            assert!((0.0..1.0).contains(&f));
        }
        // below(1) must always be 0.
        assert_eq!(r.below(1), 0);
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::new(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.below(10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues hit: {seen:?}");
    }

    #[test]
    fn check_runs_all_cases() {
        let mut count = 0;
        check("counting", 25, 99, |_rng| {
            count += 1;
        });
        assert_eq!(count, 25);
    }

    #[test]
    fn check_reports_case_and_seed() {
        let result = std::panic::catch_unwind(|| {
            check("always_fails", 3, 1, |_rng| {
                panic!("boom");
            });
        });
        let payload = result.unwrap_err();
        let msg = payload.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("always_fails"), "{msg}");
        assert!(msg.contains("case 0/3"), "{msg}");
        assert!(msg.contains("boom"), "{msg}");
    }

    #[test]
    fn pick_only_returns_members() {
        let mut r = Rng::new(3);
        let items = ["a", "b", "c"];
        for _ in 0..100 {
            assert!(items.contains(r.pick(&items)));
        }
    }
}
