//! Physical undo logging for transaction rollback.
//!
//! §4 of the paper: "If a rule with a rollback action is executed, the
//! system immediately rolls back to the start state for the transaction."
//! We log every physical mutation; rolling back replays the log in reverse,
//! restoring tuples *with their original handles* (safe because handles are
//! never reissued).
//!
//! Marks are also used at *statement* granularity: the query layer takes a
//! mark before applying a multi-row DML statement and rolls back to it if
//! any row fails, so a statement never leaves partial effects inside an
//! otherwise-live transaction (see `docs/robustness.md`).

use crate::tuple::{TableId, Tuple, TupleHandle};

/// One logged physical mutation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // field names (table/handle/old) are self-describing
pub enum UndoRecord {
    /// A tuple was inserted; undo removes it.
    Insert { table: TableId, handle: TupleHandle },
    /// A tuple was deleted; undo re-inserts `old` under the same handle.
    Delete { table: TableId, handle: TupleHandle, old: Tuple },
    /// A tuple was replaced; undo restores `old`.
    Update { table: TableId, handle: TupleHandle, old: Tuple },
}

/// A position in the undo log; rolling back to a mark undoes everything
/// logged after it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct UndoMark(pub(crate) usize);

/// An append-only log of physical mutations since the last commit.
#[derive(Debug, Clone, Default)]
pub struct UndoLog {
    records: Vec<UndoRecord>,
}

impl UndoLog {
    /// Create an empty log.
    pub fn new() -> Self {
        UndoLog::default()
    }

    /// Number of records currently logged.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Append a record.
    pub fn push(&mut self, r: UndoRecord) {
        self.records.push(r);
    }

    /// The current position; pass to [`UndoLog::drain_from`] to undo back
    /// to this point.
    pub fn mark(&self) -> UndoMark {
        UndoMark(self.records.len())
    }

    /// Whether a mark is still within the log.
    pub fn mark_valid(&self, m: UndoMark) -> bool {
        m.0 <= self.records.len()
    }

    /// Remove and return, newest first, all records after `mark`.
    pub fn drain_from(&mut self, m: UndoMark) -> impl Iterator<Item = UndoRecord> + '_ {
        self.records.drain(m.0..).rev()
    }

    /// Discard all records (transaction committed).
    pub fn clear(&mut self) {
        self.records.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn mark_and_drain() {
        let mut log = UndoLog::new();
        log.push(UndoRecord::Insert { table: TableId(0), handle: TupleHandle(1) });
        let m = log.mark();
        log.push(UndoRecord::Insert { table: TableId(0), handle: TupleHandle(2) });
        log.push(UndoRecord::Delete { table: TableId(0), handle: TupleHandle(1), old: tuple![1] });
        let drained: Vec<_> = log.drain_from(m).collect();
        assert_eq!(drained.len(), 2);
        // Newest first.
        assert!(matches!(drained[0], UndoRecord::Delete { .. }));
        assert!(matches!(drained[1], UndoRecord::Insert { handle: TupleHandle(2), .. }));
        assert_eq!(log.len(), 1);
        assert!(log.mark_valid(m));
        assert!(!log.mark_valid(UndoMark(5)));
    }
}
