//! Storage-level work counters.
//!
//! [`StorageStats`] counts the physical work the database performs:
//! tuples touched by DML, undo-log volume, and index maintenance. The
//! counters are cumulative over the lifetime of a [`crate::Database`];
//! callers that want per-transaction or per-phase numbers snapshot the
//! struct (it is `Copy`) and subtract with [`StorageStats::since`].
//!
//! These are the storage half of the engine-wide observability layer —
//! the query layer's `ExecStats` counts logical work (rows scanned and
//! matched), while this struct counts mutations that actually landed.

use setrules_json::Json;

/// Cumulative counters of physical storage work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageStats {
    /// Tuples inserted via [`crate::Database::insert`].
    pub tuples_inserted: u64,
    /// Tuples deleted via [`crate::Database::delete`].
    pub tuples_deleted: u64,
    /// Tuples updated via [`crate::Database::update`].
    pub tuples_updated: u64,
    /// Undo records appended to the log (one per successful mutation).
    pub undo_records_written: u64,
    /// Undo records reverse-applied by rollbacks.
    pub undo_records_applied: u64,
    /// Individual index entry insertions/removals (forward DML, rollback
    /// replay, and bulk index builds all count).
    pub index_maintenance_ops: u64,
}

impl StorageStats {
    /// Total tuples touched by forward DML (inserted + deleted + updated).
    ///
    /// Rollback replay is *not* included: it undoes work rather than
    /// doing new work, so engines that roll back report the work they
    /// attempted, which is what set-vs-instance comparisons need.
    pub fn tuples_touched(&self) -> u64 {
        self.tuples_inserted + self.tuples_deleted + self.tuples_updated
    }

    /// Counter-wise difference from an earlier snapshot of the same
    /// database (all counters are monotone, so this never underflows for
    /// a genuine earlier snapshot).
    pub fn since(&self, earlier: &StorageStats) -> StorageStats {
        StorageStats {
            tuples_inserted: self.tuples_inserted - earlier.tuples_inserted,
            tuples_deleted: self.tuples_deleted - earlier.tuples_deleted,
            tuples_updated: self.tuples_updated - earlier.tuples_updated,
            undo_records_written: self.undo_records_written - earlier.undo_records_written,
            undo_records_applied: self.undo_records_applied - earlier.undo_records_applied,
            index_maintenance_ops: self.index_maintenance_ops - earlier.index_maintenance_ops,
        }
    }

    /// Counter-wise sum (for aggregating deltas across phases).
    pub fn plus(&self, other: &StorageStats) -> StorageStats {
        StorageStats {
            tuples_inserted: self.tuples_inserted + other.tuples_inserted,
            tuples_deleted: self.tuples_deleted + other.tuples_deleted,
            tuples_updated: self.tuples_updated + other.tuples_updated,
            undo_records_written: self.undo_records_written + other.undo_records_written,
            undo_records_applied: self.undo_records_applied + other.undo_records_applied,
            index_maintenance_ops: self.index_maintenance_ops + other.index_maintenance_ops,
        }
    }

    /// JSON object with one field per counter plus the derived
    /// `tuples_touched` total.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tuples_inserted", Json::Int(self.tuples_inserted as i64)),
            ("tuples_deleted", Json::Int(self.tuples_deleted as i64)),
            ("tuples_updated", Json::Int(self.tuples_updated as i64)),
            ("tuples_touched", Json::Int(self.tuples_touched() as i64)),
            ("undo_records_written", Json::Int(self.undo_records_written as i64)),
            ("undo_records_applied", Json::Int(self.undo_records_applied as i64)),
            ("index_maintenance_ops", Json::Int(self.index_maintenance_ops as i64)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_and_plus_are_inverse() {
        let a = StorageStats {
            tuples_inserted: 5,
            tuples_deleted: 2,
            tuples_updated: 3,
            undo_records_written: 10,
            undo_records_applied: 1,
            index_maintenance_ops: 7,
        };
        let b = StorageStats {
            tuples_inserted: 8,
            tuples_deleted: 2,
            tuples_updated: 4,
            undo_records_written: 14,
            undo_records_applied: 3,
            index_maintenance_ops: 9,
        };
        let d = b.since(&a);
        assert_eq!(a.plus(&d), b);
        assert_eq!(d.tuples_touched(), 4, "3 inserted + 0 deleted + 1 updated");
    }

    #[test]
    fn json_includes_every_counter() {
        let s = StorageStats { tuples_inserted: 1, ..StorageStats::default() };
        let j = s.to_json();
        assert_eq!(j.get("tuples_inserted").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("tuples_touched").unwrap().as_i64(), Some(1));
        assert_eq!(j.get("index_maintenance_ops").unwrap().as_i64(), Some(0));
    }
}
