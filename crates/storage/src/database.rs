//! The database: a catalog of tables plus the handle generator, handle
//! provenance, undo log, and index maintenance.
//!
//! This is the substrate the paper takes for granted (it was designed for
//! Starburst): all mutations flow through [`Database::insert`],
//! [`Database::delete`], and [`Database::update`], which validate types,
//! maintain indexes, log undo records, and preserve the invariant that
//! tuple handles are never reused (§2).

use std::collections::HashMap;

use crate::error::StorageError;
use crate::fault::{FaultInjector, FaultKind};
use crate::index::{ColumnIndex, IndexKind, OrderedIndex, TableIndexes};
use crate::schema::TableSchema;
use crate::stats::StorageStats;
use crate::table::Table;
use crate::tuple::{ColumnId, TableId, Tuple, TupleHandle};
use crate::undo::{UndoLog, UndoMark, UndoRecord};
use crate::value::Value;

/// An in-memory relational database.
#[derive(Debug, Default)]
pub struct Database {
    /// Table slots; `None` marks a dropped table (ids are never reused, so
    /// handle provenance stays meaningful).
    tables: Vec<Option<Table>>,
    indexes: Vec<TableIndexes>,
    by_name: HashMap<String, TableId>,
    /// Table provenance for every handle ever issued, indexed by handle
    /// value − 1 (handles start at 1). Deleted tuples keep their provenance:
    /// transition effects must still know which table a deleted handle
    /// belonged to.
    handle_tables: Vec<TableId>,
    undo: UndoLog,
    stats: StorageStats,
    fault: FaultInjector,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    // ------------------------------------------------------------------
    // Catalog
    // ------------------------------------------------------------------

    /// Create a table. DDL is not transactional (it is not part of the
    /// paper's operation blocks, which contain only DML).
    pub fn create_table(&mut self, schema: TableSchema) -> Result<TableId, StorageError> {
        if self.by_name.contains_key(&schema.name) {
            return Err(StorageError::TableExists(schema.name));
        }
        let id = TableId(self.tables.len() as u32);
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(Some(Table::new(schema)));
        self.indexes.push(TableIndexes::new());
        Ok(id)
    }

    /// Drop a table and its indexes. DDL is not transactional; callers (the
    /// rule engine) must first ensure no production rule references the
    /// table. Its [`TableId`] is never reused.
    pub fn drop_table(&mut self, name: &str) -> Result<TableId, StorageError> {
        let id = self.table_id(name)?;
        self.by_name.remove(name);
        self.tables[id.0 as usize] = None;
        self.indexes[id.0 as usize] = TableIndexes::new();
        Ok(id)
    }

    /// The table with id `t`, if it has not been dropped.
    pub fn try_table(&self, t: TableId) -> Option<&Table> {
        self.tables.get(t.0 as usize).and_then(|s| s.as_ref())
    }

    /// Resolve a table name.
    pub fn table_id(&self, name: &str) -> Result<TableId, StorageError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::NoSuchTable(name.to_string()))
    }

    /// The table with id `t`.
    ///
    /// # Panics
    /// If the table has been dropped; use [`Database::try_table`] when a
    /// dropped table is possible.
    pub fn table(&self, t: TableId) -> &Table {
        self.tables[t.0 as usize].as_ref().expect("table was dropped")
    }

    /// The schema of table `t`.
    ///
    /// # Panics
    /// If the table has been dropped.
    pub fn schema(&self, t: TableId) -> &TableSchema {
        &self.table(t).schema
    }

    /// All table ids in creation order.
    pub fn table_ids(&self) -> impl Iterator<Item = TableId> + '_ {
        (0..self.tables.len() as u32).map(TableId)
    }

    /// The table a handle was issued for, whether or not the tuple is
    /// still live. `None` only for handles never issued.
    pub fn table_of(&self, h: TupleHandle) -> Option<TableId> {
        if h.0 == 0 {
            return None;
        }
        self.handle_tables.get((h.0 - 1) as usize).copied()
    }

    /// Number of handles ever issued.
    pub fn handles_issued(&self) -> u64 {
        self.handle_tables.len() as u64
    }

    // ------------------------------------------------------------------
    // Indexes
    // ------------------------------------------------------------------

    /// Create (and populate) a hash index on `t.c`.
    pub fn create_index(&mut self, t: TableId, c: ColumnId) -> Result<(), StorageError> {
        self.create_index_of(t, c, IndexKind::Hash)
    }

    /// Create (and populate) an index of the given kind on `t.c`.
    pub fn create_index_of(
        &mut self,
        t: TableId,
        c: ColumnId,
        kind: IndexKind,
    ) -> Result<(), StorageError> {
        let table = self.tables[t.0 as usize].as_ref().expect("table was dropped");
        if self.indexes[t.0 as usize].has(c) {
            return Err(StorageError::IndexExists {
                table: table.schema.name.clone(),
                column: table.schema.column_name(c).to_string(),
            });
        }
        // Bulk build counts as one index-maintenance site; polled before
        // anything is built, so a fault leaves the catalog untouched.
        self.fault.check(FaultKind::IndexMaintenance)?;
        let mut idx = ColumnIndex::new(kind);
        for (h, tuple) in table.scan() {
            idx.insert(tuple.get(c).clone(), h);
            self.stats.index_maintenance_ops += 1;
        }
        self.indexes[t.0 as usize].add(c, idx);
        Ok(())
    }

    /// Drop the index on `t.c`, if present. Returns whether one existed.
    pub fn drop_index(&mut self, t: TableId, c: ColumnId) -> bool {
        self.indexes[t.0 as usize].drop(c)
    }

    /// Whether `t.c` is indexed.
    pub fn has_index(&self, t: TableId, c: ColumnId) -> bool {
        self.indexes[t.0 as usize].has(c)
    }

    /// The kind of the index on `t.c`, if one exists.
    pub fn index_kind(&self, t: TableId, c: ColumnId) -> Option<IndexKind> {
        self.indexes[t.0 as usize].get(c).map(|i| i.kind())
    }

    /// The ordered index on `t.c`, if one exists *and* it is ordered.
    pub fn ordered_index(&self, t: TableId, c: ColumnId) -> Option<&OrderedIndex> {
        self.indexes[t.0 as usize].get(c).and_then(|i| i.ordered())
    }

    /// Whether `t.c` has an *ordered* index (the precondition for range
    /// access paths, sort elimination, and min/max short-circuits).
    pub fn has_ordered_index(&self, t: TableId, c: ColumnId) -> bool {
        self.ordered_index(t, c).is_some()
    }

    /// Scan the ordered index on `t.c` for handles of tuples whose column
    /// falls within `[lo, hi]` (storage total order; callers coerce bounds
    /// to the column type first). Handles come back sorted ascending.
    /// Returns `None` if the column has no ordered index.
    pub fn index_range(
        &self,
        t: TableId,
        c: ColumnId,
        lo: std::ops::Bound<Value>,
        hi: std::ops::Bound<Value>,
    ) -> Option<Vec<TupleHandle>> {
        self.ordered_index(t, c).map(|idx| idx.range_handles(lo, hi))
    }

    /// Probe the index on `t.c` for tuples whose column equals `v`
    /// (storage-level equality — callers coerce `v` to the column type
    /// first). Returns `None` if no index exists.
    pub fn index_lookup(&self, t: TableId, c: ColumnId, v: &Value) -> Option<Vec<TupleHandle>> {
        self.indexes[t.0 as usize]
            .get(c)
            .map(|idx| idx.get(v).map(|s| s.iter().copied().collect()).unwrap_or_default())
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    /// Insert a tuple into table `t`, returning its fresh handle.
    pub fn insert(&mut self, t: TableId, tuple: Tuple) -> Result<TupleHandle, StorageError> {
        let slot = self.tables[t.0 as usize].as_mut().expect("table was dropped");
        let tuple = slot.schema.check_tuple(tuple)?;
        // Every fault site this operation touches is polled before any
        // mutation, so an injected failure leaves the operation entirely
        // unapplied (single-operation atomicity by construction).
        self.fault.check(FaultKind::TupleInsert)?;
        self.fault.check(FaultKind::HandleAlloc)?;
        if !self.indexes[t.0 as usize].is_empty() {
            self.fault.check(FaultKind::IndexMaintenance)?;
        }
        self.fault.check(FaultKind::UndoAppend)?;
        let h = TupleHandle(self.handle_tables.len() as u64 + 1);
        self.handle_tables.push(t);
        self.stats.index_maintenance_ops += self.indexes[t.0 as usize].on_insert(h, &tuple.0);
        self.tables[t.0 as usize].as_mut().expect("checked").insert(h, tuple);
        self.undo.push(UndoRecord::Insert { table: t, handle: h });
        self.stats.tuples_inserted += 1;
        self.stats.undo_records_written += 1;
        Ok(h)
    }

    /// Delete the tuple with handle `h` from table `t`, returning its
    /// final value.
    pub fn delete(&mut self, t: TableId, h: TupleHandle) -> Result<Tuple, StorageError> {
        {
            let slot = self.tables[t.0 as usize].as_ref().expect("table was dropped");
            if slot.get(h).is_none() {
                return Err(StorageError::NoSuchTuple { table: slot.schema.name.clone() });
            }
        }
        // Fault sites polled after validation, before any mutation (see
        // `insert`).
        self.fault.check(FaultKind::TupleDelete)?;
        if !self.indexes[t.0 as usize].is_empty() {
            self.fault.check(FaultKind::IndexMaintenance)?;
        }
        self.fault.check(FaultKind::UndoAppend)?;
        let slot = self.tables[t.0 as usize].as_mut().expect("checked");
        let old = slot.remove(h).expect("checked live");
        self.stats.index_maintenance_ops += self.indexes[t.0 as usize].on_delete(h, &old.0);
        self.undo.push(UndoRecord::Delete { table: t, handle: h, old: old.clone() });
        self.stats.tuples_deleted += 1;
        self.stats.undo_records_written += 1;
        Ok(old)
    }

    /// Apply column assignments to the tuple with handle `h` in table `t`,
    /// returning the tuple's value *before* the update (needed by the rule
    /// system's trans-info; §4.3).
    pub fn update(
        &mut self,
        t: TableId,
        h: TupleHandle,
        assignments: &[(ColumnId, Value)],
    ) -> Result<Tuple, StorageError> {
        // Validate all assignments before mutating anything.
        let mut checked = Vec::with_capacity(assignments.len());
        {
            let schema = &self.table(t).schema;
            for (c, v) in assignments {
                checked.push((*c, schema.check_value(*c, v.clone())?));
            }
        }
        {
            let table = self.tables[t.0 as usize].as_ref().expect("table was dropped");
            if table.get(h).is_none() {
                return Err(StorageError::NoSuchTuple { table: table.schema.name.clone() });
            }
        }
        // Fault sites polled after validation, before any mutation (see
        // `insert`).
        self.fault.check(FaultKind::TupleUpdate)?;
        if !self.indexes[t.0 as usize].is_empty() {
            self.fault.check(FaultKind::IndexMaintenance)?;
        }
        self.fault.check(FaultKind::UndoAppend)?;
        let table = self.tables[t.0 as usize].as_mut().expect("checked");
        let slot = table.get_mut(h).expect("checked live");
        let old = slot.clone();
        for (c, v) in checked {
            slot.set(c, v);
        }
        let new_fields = slot.0.clone();
        self.stats.index_maintenance_ops += self.indexes[t.0 as usize].on_update(h, &old.0, &new_fields);
        self.undo.push(UndoRecord::Update { table: t, handle: h, old: old.clone() });
        self.stats.tuples_updated += 1;
        self.stats.undo_records_written += 1;
        Ok(old)
    }

    /// Get the live tuple `h` in table `t`.
    pub fn get(&self, t: TableId, h: TupleHandle) -> Option<&Tuple> {
        self.try_table(t).and_then(|tab| tab.get(h))
    }

    // ------------------------------------------------------------------
    // Redo (WAL replay)
    // ------------------------------------------------------------------
    //
    // Physical redo entry points for write-ahead-log recovery. Unlike the
    // forward DML path they take the tuple handle as an *input* (replay
    // must reproduce the exact handles the original run issued, because
    // `state_image` prints them), write no undo records, and never poll
    // the fault injector — mirroring the undo-replay stance above that
    // recovery itself is assumed not to fail.

    /// Replay an insert of `tuple` into table `t` with the exact handle
    /// `h`. Intervening handle numbers consumed by other tables or by
    /// aborted transactions must already have been accounted for via
    /// [`Database::redo_handle_watermark`].
    pub fn redo_insert(
        &mut self,
        t: TableId,
        h: TupleHandle,
        tuple: Tuple,
    ) -> Result<(), StorageError> {
        let slot = self.tables[t.0 as usize].as_mut().expect("replay targets live table");
        let tuple = slot.schema.check_tuple(tuple)?;
        assert!(
            h.0 as usize > self.handle_tables.len(),
            "redo_insert handle {} not above watermark {}",
            h.0,
            self.handle_tables.len()
        );
        // Fill any gap (handles burned by aborted txns on other tables are
        // normally covered by the watermark record; within one committed
        // txn handles are dense per the log order).
        while self.handle_tables.len() + 1 < h.0 as usize {
            self.handle_tables.push(t);
        }
        self.handle_tables.push(t);
        self.stats.index_maintenance_ops += self.indexes[t.0 as usize].on_insert(h, &tuple.0);
        self.tables[t.0 as usize].as_mut().expect("checked").insert(h, tuple);
        self.stats.tuples_inserted += 1;
        Ok(())
    }

    /// Replay a delete of the tuple with handle `h` from table `t`.
    pub fn redo_delete(&mut self, t: TableId, h: TupleHandle) -> Result<(), StorageError> {
        let slot = self.tables[t.0 as usize].as_mut().expect("replay targets live table");
        let Some(old) = slot.remove(h) else {
            return Err(StorageError::NoSuchTuple { table: slot.schema.name.clone() });
        };
        self.stats.index_maintenance_ops += self.indexes[t.0 as usize].on_delete(h, &old.0);
        self.stats.tuples_deleted += 1;
        Ok(())
    }

    /// Replay an update of the tuple with handle `h` in table `t` to the
    /// full new value `tuple` (WAL update records carry the whole tuple,
    /// not per-column assignments).
    pub fn redo_update(
        &mut self,
        t: TableId,
        h: TupleHandle,
        tuple: Tuple,
    ) -> Result<(), StorageError> {
        let slot = self.tables[t.0 as usize].as_mut().expect("replay targets live table");
        let tuple = slot.schema.check_tuple(tuple)?;
        let new_fields = tuple.0.clone();
        let Some(old) = slot.replace(h, tuple) else {
            return Err(StorageError::NoSuchTuple { table: slot.schema.name.clone() });
        };
        self.stats.index_maintenance_ops +=
            self.indexes[t.0 as usize].on_update(h, &old.0, &new_fields);
        self.stats.tuples_updated += 1;
        Ok(())
    }

    /// Advance the handle high-water mark to `n` handles issued, burning
    /// any numbers in between (with `filler` provenance). Commit and abort
    /// WAL records carry the watermark so replay reissues the exact same
    /// handle numbers the original run did, even across transactions that
    /// aborted (aborted inserts consume handles; §2's never-reuse rule).
    pub fn redo_handle_watermark(&mut self, n: u64, filler: TableId) {
        while (self.handle_tables.len() as u64) < n {
            self.handle_tables.push(filler);
        }
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Record the current undo-log position. Rolling back to the mark
    /// undoes every mutation made after this call.
    pub fn mark(&self) -> UndoMark {
        self.undo.mark()
    }

    /// Undo every mutation made after `mark`, restoring tuples with their
    /// original handles.
    pub fn rollback_to(&mut self, mark: UndoMark) -> Result<(), StorageError> {
        if !self.undo.mark_valid(mark) {
            return Err(StorageError::InvalidMark);
        }
        let records: Vec<UndoRecord> = self.undo.drain_from(mark).collect();
        for rec in records {
            self.stats.undo_records_applied += 1;
            match rec {
                UndoRecord::Insert { table, handle } => {
                    let slot = self.tables[table.0 as usize].as_mut().expect("undo targets live table");
                    if let Some(old) = slot.remove(handle) {
                        self.stats.index_maintenance_ops +=
                            self.indexes[table.0 as usize].on_delete(handle, &old.0);
                    }
                }
                UndoRecord::Delete { table, handle, old } => {
                    self.stats.index_maintenance_ops +=
                        self.indexes[table.0 as usize].on_insert(handle, &old.0);
                    self.tables[table.0 as usize]
                        .as_mut()
                        .expect("undo targets live table")
                        .insert(handle, old);
                }
                UndoRecord::Update { table, handle, old } => {
                    let slot = self.tables[table.0 as usize].as_mut().expect("undo targets live table");
                    if let Some(new) = slot.replace(handle, old.clone()) {
                        self.stats.index_maintenance_ops +=
                            self.indexes[table.0 as usize].on_update(handle, &new.0, &old.0);
                    }
                }
            }
        }
        Ok(())
    }

    /// Forget the undo log (the transaction is durable).
    pub fn commit(&mut self) {
        self.undo.clear();
    }

    /// Number of undo records pending (0 right after commit).
    pub fn undo_len(&self) -> usize {
        self.undo.len()
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Cumulative physical-work counters for this database's lifetime.
    /// Snapshot before a unit of work and use [`StorageStats::since`] for
    /// a delta.
    pub fn stats(&self) -> StorageStats {
        self.stats
    }

    /// The fault injector (counters and armed plan).
    pub fn fault_injector(&self) -> &FaultInjector {
        &self.fault
    }

    /// The fault injector, mutably (arm / disarm / reset counters).
    pub fn fault_injector_mut(&mut self) -> &mut FaultInjector {
        &mut self.fault
    }

    /// Canonical dump of the full logical database state: every live table
    /// in id order with its rows in handle order, plus every index's entry
    /// count and the handle set it returns for each live value. Two
    /// databases are logically identical iff their images are equal, so
    /// crash-consistency tests compare images before a faulted statement
    /// and after its rollback. Deliberately *excluded*: the undo log and
    /// the handle high-water mark (handles are never reused, so a rolled
    /// back insert legitimately consumes handle numbers).
    pub fn state_image(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for t in self.table_ids() {
            let Some(table) = self.try_table(t) else { continue };
            let _ = writeln!(out, "table {} (id {})", table.schema.name, t.0);
            for (h, tuple) in table.scan() {
                let _ = write!(out, "  {}:", h.0);
                for v in &tuple.0 {
                    let _ = write!(out, " {v:?}");
                }
                out.push('\n');
            }
            let mut cols: Vec<ColumnId> = self.indexes[t.0 as usize].columns().collect();
            cols.sort_by_key(|c| c.index());
            for c in cols {
                let idx = self.indexes[t.0 as usize].get(c).expect("listed column is indexed");
                let _ = writeln!(
                    out,
                    "  index on {} kind={} entries={}",
                    table.schema.column_name(c),
                    idx.kind(),
                    idx.len()
                );
                // Ordered indexes additionally expose their key sequence:
                // BTree ordering corruption shows up here even when every
                // per-value probe still answers correctly.
                if let Some(ord) = idx.ordered() {
                    let keys: Vec<String> = ord.keys().map(|k| format!("{k:?}")).collect();
                    let _ = writeln!(out, "    order: [{}]", keys.join(", "));
                }
                // Probing every live value proves the index agrees with the
                // table; the entry count above catches ghost entries for
                // values no live row holds.
                for (h, tuple) in table.scan() {
                    let hs = self
                        .index_lookup(t, c, tuple.get(c))
                        .expect("listed column is indexed");
                    let _ = writeln!(out, "    {}@{:?} -> {:?}", h.0, tuple.get(c), hs);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_example_schemas;
    use crate::tuple;

    fn db_with_emp() -> (Database, TableId) {
        let mut db = Database::new();
        let (emp, dept) = paper_example_schemas();
        let emp = db.create_table(emp).unwrap();
        db.create_table(dept).unwrap();
        (db, emp)
    }

    #[test]
    fn handles_are_monotone_and_never_reused() {
        let (mut db, emp) = db_with_emp();
        let h1 = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        let h2 = db.insert(emp, tuple!["Mary", 2, 85000.0, 1]).unwrap();
        assert!(h2 > h1);
        db.delete(emp, h1).unwrap();
        let h3 = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        assert!(h3 > h2, "re-inserting the same value yields a fresh handle");
        assert_eq!(db.table_of(h1), Some(emp), "provenance survives deletion");
    }

    #[test]
    fn type_checking_on_insert_and_update() {
        let (mut db, emp) = db_with_emp();
        assert!(db.insert(emp, tuple!["Jane", "not an int", 1.0, 1]).is_err());
        let h = db.insert(emp, tuple!["Jane", 1, 95000, 1]).unwrap();
        // Int 95000 was coerced into the float column.
        assert_eq!(db.get(emp, h).unwrap().get(ColumnId(2)), &Value::Float(95000.0));
        assert!(db.update(emp, h, &[(ColumnId(1), Value::Text("x".into()))]).is_err());
        let old = db.update(emp, h, &[(ColumnId(2), Value::Float(99000.0))]).unwrap();
        assert_eq!(old.get(ColumnId(2)), &Value::Float(95000.0));
    }

    #[test]
    fn update_failed_validation_mutates_nothing() {
        let (mut db, emp) = db_with_emp();
        let h = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        let before = db.get(emp, h).unwrap().clone();
        let res = db.update(
            emp,
            h,
            &[(ColumnId(2), Value::Float(0.0)), (ColumnId(1), Value::Text("bad".into()))],
        );
        assert!(res.is_err());
        assert_eq!(db.get(emp, h).unwrap(), &before);
    }

    #[test]
    fn rollback_restores_exact_state_and_handles() {
        let (mut db, emp) = db_with_emp();
        let h1 = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        db.commit();
        let mark = db.mark();
        let h2 = db.insert(emp, tuple!["Mary", 2, 85000.0, 1]).unwrap();
        db.update(emp, h1, &[(ColumnId(2), Value::Float(1.0))]).unwrap();
        db.delete(emp, h1).unwrap();
        db.rollback_to(mark).unwrap();
        assert!(db.get(emp, h2).is_none());
        assert_eq!(db.get(emp, h1).unwrap(), &tuple!["Jane", 1, 95000.0, 1]);
        assert_eq!(db.table(emp).len(), 1);
    }

    #[test]
    fn rollback_maintains_indexes() {
        let (mut db, emp) = db_with_emp();
        let dept_no = ColumnId(3);
        db.create_index(emp, dept_no).unwrap();
        let h1 = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        db.commit();
        let mark = db.mark();
        db.update(emp, h1, &[(dept_no, Value::Int(2))]).unwrap();
        let h2 = db.insert(emp, tuple!["Mary", 2, 85000.0, 2]).unwrap();
        assert_eq!(db.index_lookup(emp, dept_no, &Value::Int(2)).unwrap(), vec![h1, h2]);
        db.rollback_to(mark).unwrap();
        assert_eq!(db.index_lookup(emp, dept_no, &Value::Int(2)).unwrap(), Vec::<TupleHandle>::new());
        assert_eq!(db.index_lookup(emp, dept_no, &Value::Int(1)).unwrap(), vec![h1]);
    }

    #[test]
    fn index_populated_on_creation() {
        let (mut db, emp) = db_with_emp();
        let h1 = db.insert(emp, tuple!["Jane", 1, 95000.0, 7]).unwrap();
        db.insert(emp, tuple!["Mary", 2, 85000.0, 8]).unwrap();
        db.create_index(emp, ColumnId(3)).unwrap();
        assert_eq!(db.index_lookup(emp, ColumnId(3), &Value::Int(7)).unwrap(), vec![h1]);
        assert!(db.create_index(emp, ColumnId(3)).is_err());
        assert!(db.drop_index(emp, ColumnId(3)));
        assert!(db.index_lookup(emp, ColumnId(3), &Value::Int(7)).is_none());
    }

    #[test]
    fn injected_fault_leaves_single_op_unapplied() {
        use crate::fault::FaultKind;
        let (mut db, emp) = db_with_emp();
        db.create_index(emp, ColumnId(3)).unwrap();
        let h = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        db.commit();
        let image = db.state_image();
        let undo_before = db.undo_len();
        // Each DML entry point polls every site before mutating: whichever
        // site fires, the operation must be a complete no-op.
        for kind in FaultKind::ALL {
            for (op, expect_hit) in [
                ("insert", true),
                ("delete", true),
                ("update", true),
            ] {
                db.fault_injector_mut().reset_counts();
                db.fault_injector_mut().arm(kind, 1);
                let res: Result<(), StorageError> = match op {
                    "insert" => db.insert(emp, tuple!["Mary", 2, 1.0, 1]).map(|_| ()),
                    "delete" => db.delete(emp, h).map(|_| ()),
                    _ => db.update(emp, h, &[(ColumnId(2), Value::Float(1.0))]).map(|_| ()),
                };
                db.fault_injector_mut().disarm();
                let applies = match (kind, op) {
                    (FaultKind::TupleInsert | FaultKind::HandleAlloc, o) => o == "insert",
                    (FaultKind::TupleDelete, o) => o == "delete",
                    (FaultKind::TupleUpdate, o) => o == "update",
                    // WAL sites are polled by the engine's durability
                    // layer, never by the raw Database DML path.
                    (FaultKind::WalAppend | FaultKind::WalSync, _) => false,
                    _ => expect_hit, // UndoAppend / IndexMaintenance hit all three
                };
                if applies {
                    assert!(
                        matches!(res, Err(StorageError::FaultInjected { .. })),
                        "{kind} should fail {op}"
                    );
                    assert_eq!(db.state_image(), image, "{kind}/{op} left partial effects");
                    assert_eq!(db.undo_len(), undo_before, "{kind}/{op} logged undo");
                } else {
                    // The op succeeded; undo it so the next round starts clean.
                    assert!(res.is_ok(), "{kind} should not affect {op}");
                    let m = crate::undo::UndoMark(undo_before);
                    db.rollback_to(m).unwrap();
                    assert_eq!(db.state_image(), image);
                }
            }
        }
        assert!(db.fault_injector().injected() > 0);
    }

    #[test]
    fn faulted_index_build_leaves_catalog_unchanged() {
        use crate::fault::FaultKind;
        let (mut db, emp) = db_with_emp();
        db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        db.fault_injector_mut().arm(FaultKind::IndexMaintenance, 1);
        assert!(matches!(
            db.create_index(emp, ColumnId(3)),
            Err(StorageError::FaultInjected { .. })
        ));
        db.fault_injector_mut().disarm();
        assert!(!db.has_index(emp, ColumnId(3)));
        db.create_index(emp, ColumnId(3)).unwrap();
        assert!(db.has_index(emp, ColumnId(3)));
    }

    #[test]
    fn state_image_distinguishes_logical_state_only() {
        let (mut db, emp) = db_with_emp();
        let h = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        db.commit();
        let image = db.state_image();
        let m = db.mark();
        let h2 = db.insert(emp, tuple!["Mary", 2, 85000.0, 1]).unwrap();
        assert_ne!(db.state_image(), image, "image reflects live rows");
        db.rollback_to(m).unwrap();
        assert_eq!(db.state_image(), image, "rollback restores the image");
        assert!(db.handles_issued() >= h2.0, "handle high-water mark excluded by design");
        let _ = h;
    }

    #[test]
    fn ordered_index_range_and_rollback() {
        use std::ops::Bound;
        let (mut db, emp) = db_with_emp();
        let salary = ColumnId(2);
        let h1 = db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        let h2 = db.insert(emp, tuple!["Mary", 2, 85000.0, 1]).unwrap();
        db.create_index_of(emp, salary, IndexKind::Ordered).unwrap();
        assert_eq!(db.index_kind(emp, salary), Some(IndexKind::Ordered));
        assert!(db.has_ordered_index(emp, salary));
        // Range probing sees the bulk-built contents.
        assert_eq!(
            db.index_range(emp, salary, Bound::Included(Value::Float(90000.0)), Bound::Unbounded)
                .unwrap(),
            vec![h1]
        );
        // Equality probes keep working through the common interface.
        assert_eq!(db.index_lookup(emp, salary, &Value::Float(85000.0)).unwrap(), vec![h2]);
        db.commit();

        let image = db.state_image();
        assert!(image.contains("kind=ordered"), "state image names the kind:\n{image}");
        assert!(image.contains("order: ["), "state image lists the key order:\n{image}");
        let mark = db.mark();
        let h3 = db.insert(emp, tuple!["Lee", 3, 70000.0, 2]).unwrap();
        db.update(emp, h2, &[(salary, Value::Float(99000.0))]).unwrap();
        db.delete(emp, h1).unwrap();
        assert_eq!(
            db.index_range(emp, salary, Bound::Unbounded, Bound::Excluded(Value::Float(80000.0)))
                .unwrap(),
            vec![h3]
        );
        db.rollback_to(mark).unwrap();
        assert_eq!(db.state_image(), image, "rollback restores ordered-index contents");
    }

    #[test]
    fn hash_index_has_no_ordered_capabilities() {
        let (mut db, emp) = db_with_emp();
        db.create_index(emp, ColumnId(3)).unwrap();
        assert_eq!(db.index_kind(emp, ColumnId(3)), Some(IndexKind::Hash));
        assert!(!db.has_ordered_index(emp, ColumnId(3)));
        assert!(db
            .index_range(emp, ColumnId(3), std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            .is_none());
    }

    #[test]
    fn commit_invalidates_older_marks() {
        let (mut db, emp) = db_with_emp();
        let mark = db.mark();
        db.insert(emp, tuple!["Jane", 1, 95000.0, 1]).unwrap();
        db.insert(emp, tuple!["Mary", 2, 1.0, 1]).unwrap();
        db.commit();
        // Mark 0 is still "valid" (log empty, nothing to undo).
        db.rollback_to(mark).unwrap();
        assert_eq!(db.table(emp).len(), 2, "committed work survives");
    }
}
