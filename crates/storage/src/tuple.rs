//! Tuples and tuple handles.
//!
//! §2 of the paper: "we assume that associated with each tuple is a system
//! *tuple handle* — a distinct, non-reusable value identifying the tuple and
//! its containing table." Handles identify tuples across states: a handle of
//! a deleted tuple still names that (former) tuple in transition effects.

use std::fmt;

use crate::value::Value;

/// A distinct, non-reusable identifier for a tuple (paper §2).
///
/// Handles are issued by [`crate::Database`] from a monotone counter and are
/// never reused, even after the tuple is deleted — transition effects and
/// transition tables rely on this to name tuples from previous states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TupleHandle(pub u64);

impl fmt::Display for TupleHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Identifies a table within a [`crate::Database`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// Identifies a column within a table (position in the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnId(pub u16);

impl ColumnId {
    /// The column position as a `usize` index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A tuple: one value per column of its table, in schema order.
///
/// Duplicate tuples may appear in a table (paper §2); identity is carried by
/// the [`TupleHandle`], not the values.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tuple(pub Vec<Value>);

impl Tuple {
    /// Build a tuple from any values convertible to [`Value`].
    pub fn new(values: Vec<Value>) -> Self {
        Tuple(values)
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field at column `c`.
    pub fn get(&self, c: ColumnId) -> &Value {
        &self.0[c.index()]
    }

    /// Replace field at column `c`, returning the old value.
    pub fn set(&mut self, c: ColumnId, v: Value) -> Value {
        std::mem::replace(&mut self.0[c.index()], v)
    }

    /// Iterate over the fields in schema order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.0.iter()
    }

    /// The fields as a read-only slice — the shape the query layer's
    /// parallel row-local evaluation shares across worker threads.
    pub fn as_slice(&self) -> &[Value] {
        &self.0
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl<V: Into<Value>> FromIterator<V> for Tuple {
    fn from_iter<T: IntoIterator<Item = V>>(iter: T) -> Self {
        Tuple(iter.into_iter().map(Into::into).collect())
    }
}

/// Convenience macro for building tuples in tests and examples.
///
/// ```
/// use setrules_storage::{tuple, Value};
/// let t = tuple!["Jane", 1, 95000.0];
/// assert_eq!(t.0[0], Value::Text("Jane".into()));
/// ```
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple(vec![$($crate::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tuple_accessors() {
        let mut t = tuple![1, "a", 2.0];
        assert_eq!(t.arity(), 3);
        assert_eq!(t.get(ColumnId(1)), &Value::Text("a".into()));
        let old = t.set(ColumnId(0), Value::Int(9));
        assert_eq!(old, Value::Int(1));
        assert_eq!(t.get(ColumnId(0)), &Value::Int(9));
    }

    #[test]
    fn display() {
        let t = tuple!["Jane", 1];
        assert_eq!(t.to_string(), "('Jane', 1)");
    }

    #[test]
    fn handles_order_by_issue_time() {
        assert!(TupleHandle(1) < TupleHandle(2));
        assert_eq!(TupleHandle(7).to_string(), "#7");
    }
}
