//! Deterministic fault injection for crash-consistency testing.
//!
//! The paper abstracts failures away ("multiple users, concurrent
//! processing, and failures are all transparent", §2.1) — which means the
//! engine's §4 all-or-nothing transition semantics must hold on *every*
//! error path, not just the ones the happy-path tests exercise. A
//! [`FaultInjector`] lives on each [`crate::Database`] and can be armed to
//! fail the Nth storage operation of a chosen [`FaultKind`]. Every forward
//! DML entry point polls the injector for each site it is about to touch
//! *before mutating anything*, so a single storage operation either happens
//! completely or not at all; multi-row statements are then covered by the
//! query layer's statement-level savepoints, and transactions by the
//! engine's undo-log rollback.
//!
//! Undo *replay* ([`crate::Database::rollback_to`]) never polls the
//! injector: the fault model treats the undo log as reliable, mirroring the
//! paper's assumption that recovery itself does not fail.
//!
//! The injector always counts operations per kind (armed or not), so a
//! harness can first run a workload once to discover how many injectable
//! sites it reaches, then sweep them: arm site `n`, re-run, and assert the
//! database rolled back to the pre-statement state. See
//! `docs/robustness.md` and `tests/fault_injection.rs`.

use std::fmt;

use crate::error::StorageError;

/// The kinds of storage operations that can be made to fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Inserting a tuple ([`crate::Database::insert`]).
    TupleInsert,
    /// Deleting a tuple ([`crate::Database::delete`]).
    TupleDelete,
    /// Updating a tuple ([`crate::Database::update`]).
    TupleUpdate,
    /// Appending a record to the undo log.
    UndoAppend,
    /// Index maintenance for a DML operation on an indexed table, or a
    /// bulk index build ([`crate::Database::create_index`]). Counted once
    /// per operation, not per index entry.
    IndexMaintenance,
    /// Allocating a fresh tuple handle (inserts only).
    HandleAlloc,
    /// Appending a record to the write-ahead log (polled by the engine's
    /// durability layer before the record is buffered).
    WalAppend,
    /// Syncing the write-ahead log to its sink (the fsync boundary; polled
    /// before the sink is asked to flush).
    WalSync,
}

impl FaultKind {
    /// Every kind, in a fixed order (for sweeps).
    pub const ALL: [FaultKind; 8] = [
        FaultKind::TupleInsert,
        FaultKind::TupleDelete,
        FaultKind::TupleUpdate,
        FaultKind::UndoAppend,
        FaultKind::IndexMaintenance,
        FaultKind::HandleAlloc,
        FaultKind::WalAppend,
        FaultKind::WalSync,
    ];

    /// Stable snake_case name (used in events and error messages).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::TupleInsert => "tuple_insert",
            FaultKind::TupleDelete => "tuple_delete",
            FaultKind::TupleUpdate => "tuple_update",
            FaultKind::UndoAppend => "undo_append",
            FaultKind::IndexMaintenance => "index_maintenance",
            FaultKind::HandleAlloc => "handle_alloc",
            FaultKind::WalAppend => "wal_append",
            FaultKind::WalSync => "wal_sync",
        }
    }

    fn slot(self) -> usize {
        match self {
            FaultKind::TupleInsert => 0,
            FaultKind::TupleDelete => 1,
            FaultKind::TupleUpdate => 2,
            FaultKind::UndoAppend => 3,
            FaultKind::IndexMaintenance => 4,
            FaultKind::HandleAlloc => 5,
            FaultKind::WalAppend => 6,
            FaultKind::WalSync => 7,
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Arming spec: fail the `nth` (1-based) operation of `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// The operation kind to fail.
    pub kind: FaultKind,
    /// Which occurrence fails, 1-based (counting from the last
    /// [`FaultInjector::reset_counts`]).
    pub nth: u64,
}

/// Per-database fault-injection state: an optional armed [`FaultPlan`] and
/// always-on per-kind operation counters.
///
/// The injector fires at most once per arming: when the counter for the
/// armed kind reaches `nth`, [`FaultInjector::check`] returns
/// [`StorageError::FaultInjected`] (and the counter keeps advancing, so
/// site numbering stays aligned with an unfaulted discovery run).
#[derive(Debug, Clone, Default)]
pub struct FaultInjector {
    plan: Option<FaultPlan>,
    counts: [u64; 8],
    injected: u64,
}

impl FaultInjector {
    /// Arm the injector to fail the `nth` operation of `kind` (counting
    /// from the last [`FaultInjector::reset_counts`]).
    pub fn arm(&mut self, kind: FaultKind, nth: u64) {
        self.plan = Some(FaultPlan { kind, nth });
    }

    /// Disarm without touching the counters.
    pub fn disarm(&mut self) {
        self.plan = None;
    }

    /// The currently armed plan, if any.
    pub fn plan(&self) -> Option<FaultPlan> {
        self.plan
    }

    /// Zero every per-kind counter (typically after workload setup, so
    /// site numbers refer to the workload proper).
    pub fn reset_counts(&mut self) {
        self.counts = [0; 8];
    }

    /// Operations of `kind` observed since the last counter reset.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.counts[kind.slot()]
    }

    /// Total faults this injector has fired since creation.
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Poll one site from outside the storage crate: count the operation
    /// and fail it if the armed plan targets this occurrence. The engine's
    /// durability layer calls this for [`FaultKind::WalAppend`] and
    /// [`FaultKind::WalSync`] sites before touching the log.
    pub fn poll(&mut self, kind: FaultKind) -> Result<(), StorageError> {
        self.check(kind)
    }

    /// Poll one site: count the operation and fail it if the armed plan
    /// targets this occurrence. Called by the [`crate::Database`] DML entry
    /// points before they mutate anything.
    pub(crate) fn check(&mut self, kind: FaultKind) -> Result<(), StorageError> {
        let c = &mut self.counts[kind.slot()];
        *c += 1;
        if let Some(p) = self.plan {
            if p.kind == kind && p.nth == *c {
                self.injected += 1;
                return Err(StorageError::FaultInjected { kind, op: *c });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_without_arming() {
        let mut fi = FaultInjector::default();
        assert!(fi.check(FaultKind::TupleInsert).is_ok());
        assert!(fi.check(FaultKind::TupleInsert).is_ok());
        assert!(fi.check(FaultKind::UndoAppend).is_ok());
        assert_eq!(fi.count(FaultKind::TupleInsert), 2);
        assert_eq!(fi.count(FaultKind::UndoAppend), 1);
        assert_eq!(fi.count(FaultKind::HandleAlloc), 0);
        assert_eq!(fi.injected(), 0);
    }

    #[test]
    fn fires_exactly_the_nth_occurrence() {
        let mut fi = FaultInjector::default();
        fi.arm(FaultKind::UndoAppend, 2);
        assert!(fi.check(FaultKind::UndoAppend).is_ok(), "1st passes");
        assert!(fi.check(FaultKind::TupleDelete).is_ok(), "other kinds pass");
        let err = fi.check(FaultKind::UndoAppend).unwrap_err();
        assert_eq!(err, StorageError::FaultInjected { kind: FaultKind::UndoAppend, op: 2 });
        assert!(fi.check(FaultKind::UndoAppend).is_ok(), "3rd passes: single-shot");
        assert_eq!(fi.injected(), 1);
    }

    #[test]
    fn reset_rebases_site_numbering() {
        let mut fi = FaultInjector::default();
        fi.check(FaultKind::TupleInsert).unwrap();
        fi.reset_counts();
        fi.arm(FaultKind::TupleInsert, 1);
        assert!(fi.check(FaultKind::TupleInsert).is_err(), "1st after reset");
    }

    #[test]
    fn kind_names_are_stable() {
        for k in FaultKind::ALL {
            assert_eq!(k.to_string(), k.name());
        }
        assert_eq!(FaultKind::IndexMaintenance.name(), "index_maintenance");
    }
}
