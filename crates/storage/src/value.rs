//! Runtime values stored in tuples.
//!
//! The paper assumes a typical relational structure (§2): typed columns whose
//! fields hold "a single value (or null)". We support the four scalar types
//! the paper's examples need (integers, floats for salaries, text for names,
//! booleans for predicates) plus SQL `NULL`.
//!
//! Equality and ordering here are *storage-level*: deterministic, total, and
//! suitable for hash indexes and sorted output. SQL's three-valued comparison
//! semantics (where `NULL = NULL` is *unknown*) live in the query layer; see
//! [`Value::sql_cmp`] for the building block it uses.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

use setrules_json::Json;

/// The declared type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean truth value.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 floating point.
    Float,
    /// UTF-8 text of arbitrary length.
    Text,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Bool => write!(f, "bool"),
            DataType::Int => write!(f, "int"),
            DataType::Float => write!(f, "float"),
            DataType::Text => write!(f, "text"),
        }
    }
}

impl DataType {
    /// JSON form: the lowercase type name as a string.
    pub fn to_json(self) -> Json {
        Json::Str(self.to_string())
    }

    /// Parse the JSON form written by [`DataType::to_json`].
    pub fn from_json(json: &Json) -> Option<DataType> {
        match json.as_str()? {
            "bool" => Some(DataType::Bool),
            "int" => Some(DataType::Int),
            "float" => Some(DataType::Float),
            "text" => Some(DataType::Text),
            _ => None,
        }
    }
}

/// A single field value: one of the scalar types, or `NULL`.
///
/// `Value` implements `Eq`, `Ord`, and `Hash` with *total* semantics so it
/// can serve as an index key and be sorted deterministically: `NULL` sorts
/// first, floats use IEEE total ordering, and integers compare numerically
/// with floats.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL `NULL` — the absence of a value.
    Null,
    /// Boolean.
    Bool(bool),
    /// Integer.
    Int(i64),
    /// Floating point.
    Float(f64),
    /// Text string.
    Text(String),
}

impl Value {
    /// The dynamic type of this value, or `None` for `NULL` (which inhabits
    /// every column type).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
        }
    }

    /// Whether this value is `NULL`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric view of the value, if it is `Int` or `Float`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view, if the value is an `Int`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view, if the value is `Text`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view, if the value is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Coerce this value to `ty`, if a lossless conversion exists.
    ///
    /// `NULL` coerces to every type; `Int` widens to `Float`. Everything
    /// else must already match.
    pub fn coerce_to(&self, ty: DataType) -> Option<Value> {
        match (self, ty) {
            (Value::Null, _) => Some(Value::Null),
            (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
            (v, t) if v.data_type() == Some(t) => Some(v.clone()),
            _ => None,
        }
    }

    /// SQL comparison: `None` when either side is `NULL` (unknown) or the
    /// types are incomparable; numeric types compare across `Int`/`Float`.
    ///
    /// The query layer turns `None` into three-valued *unknown*.
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => None,
            (Value::Bool(a), Value::Bool(b)) => Some(a.cmp(b)),
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// SQL equality under three-valued logic: `None` = unknown.
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        self.sql_cmp(other).map(|o| o == Ordering::Equal)
    }

    /// Untagged JSON form: `NULL` → `null`, numbers and strings map
    /// directly. The writer keeps `Int` and `Float` distinct (floats
    /// always carry a decimal point or exponent), so the mapping is
    /// invertible via [`Value::from_json`].
    pub fn to_json(&self) -> Json {
        match self {
            Value::Null => Json::Null,
            Value::Bool(b) => Json::Bool(*b),
            Value::Int(i) => Json::Int(*i),
            Value::Float(f) => Json::float(*f),
            Value::Text(s) => Json::Str(s.clone()),
        }
    }

    /// Parse the untagged JSON form written by [`Value::to_json`].
    pub fn from_json(json: &Json) -> Option<Value> {
        match json {
            Json::Null => Some(Value::Null),
            Json::Bool(b) => Some(Value::Bool(*b)),
            Json::Int(i) => Some(Value::Int(*i)),
            Json::Float(f) => Some(Value::Float(*f)),
            Json::Str(s) => Some(Value::Text(s.clone())),
            Json::Array(_) | Json::Object(_) => None,
        }
    }

    /// Storage-level total ordering rank of the variant, used by `Ord`.
    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// Total order: `NULL < Bool < numeric < Text`; `Int`/`Float` interleave
    /// numerically with ties broken so `Int(n)` sorts before `Float(n as f64)`
    /// (keeps the order antisymmetric while remaining numerically meaningful).
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => match (*a as f64).total_cmp(b) {
                Ordering::Equal => Ordering::Less,
                o => o,
            },
            (Value::Float(a), Value::Int(b)) => match a.total_cmp(&(*b as f64)) {
                Ordering::Equal => Ordering::Greater,
                o => o,
            },
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            Value::Int(i) => {
                2u8.hash(state);
                i.hash(state);
            }
            Value::Float(f) => {
                3u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                4u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { "true" } else { "false" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => {
                if x.fract() == 0.0 && x.is_finite() && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Value::Text(s) => write!(f, "'{}'", s.replace('\'', "''")),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_types() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::Text("x".into()).data_type(), Some(DataType::Text));
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
    }

    #[test]
    fn sql_cmp_nulls_are_unknown() {
        assert_eq!(Value::Null.sql_cmp(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_cmp(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_numeric_cross_type() {
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(2.5)), Some(Ordering::Less));
        assert_eq!(Value::Float(3.0).sql_cmp(&Value::Int(2)), Some(Ordering::Greater));
    }

    #[test]
    fn sql_cmp_incomparable_types() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Text("1".into())), None);
        assert_eq!(Value::Bool(true).sql_cmp(&Value::Int(1)), None);
    }

    #[test]
    fn total_order_is_antisymmetric_across_numeric() {
        let i = Value::Int(2);
        let f = Value::Float(2.0);
        assert_eq!(i.cmp(&f), Ordering::Less);
        assert_eq!(f.cmp(&i), Ordering::Greater);
        assert_ne!(i, f, "storage equality distinguishes Int(2) from Float(2.0)");
        assert_eq!(i.sql_eq(&f), Some(true), "SQL equality does not");
    }

    #[test]
    fn total_order_ranks() {
        let mut vs = vec![
            Value::Text("a".into()),
            Value::Int(5),
            Value::Null,
            Value::Bool(false),
            Value::Float(-1.0),
        ];
        vs.sort();
        assert_eq!(
            vs,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Float(-1.0),
                Value::Int(5),
                Value::Text("a".into()),
            ]
        );
    }

    #[test]
    fn coercion() {
        assert_eq!(Value::Int(3).coerce_to(DataType::Float), Some(Value::Float(3.0)));
        assert_eq!(Value::Null.coerce_to(DataType::Int), Some(Value::Null));
        assert_eq!(Value::Float(3.5).coerce_to(DataType::Int), None);
        assert_eq!(Value::Text("x".into()).coerce_to(DataType::Text), Some(Value::Text("x".into())));
    }

    #[test]
    fn display_round_readable() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::Float(3.0).to_string(), "3.0");
        assert_eq!(Value::Text("it's".into()).to_string(), "'it''s'");
        assert_eq!(Value::Bool(true).to_string(), "true");
    }

    #[test]
    fn float_nan_hash_and_eq_are_consistent() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(Value::Float(f64::NAN));
        assert!(s.contains(&Value::Float(f64::NAN)));
    }
}
