//! Hash indexes on single columns.
//!
//! The paper argues (§1) that set-oriented rules keep relational
//! optimization applicable "to the rules themselves". Equality indexes are
//! the optimization our planner exploits; benchmark B7 measures the effect.

use std::collections::{BTreeSet, HashMap};

use crate::tuple::{ColumnId, TupleHandle};
use crate::value::Value;

/// A hash index mapping the values of one column to the handles of the
/// tuples holding that value. `NULL`s are indexed too (under `Value::Null`),
/// but the planner never uses the index for `= NULL` predicates because SQL
/// equality with `NULL` is unknown.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, BTreeSet<TupleHandle>>,
    entries: usize,
}

impl HashIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Handles of tuples whose indexed column equals `v` exactly
    /// (storage-level equality; the caller handles `Int`/`Float`
    /// cross-type probing).
    pub fn get(&self, v: &Value) -> Option<&BTreeSet<TupleHandle>> {
        self.map.get(v)
    }

    /// Record that tuple `h` holds `v` in the indexed column.
    pub fn insert(&mut self, v: Value, h: TupleHandle) {
        if self.map.entry(v).or_default().insert(h) {
            self.entries += 1;
        }
    }

    /// Remove the entry for tuple `h` holding `v`.
    pub fn remove(&mut self, v: &Value, h: TupleHandle) {
        if let Some(set) = self.map.get_mut(v) {
            if set.remove(&h) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(v);
            }
        }
    }
}

/// The set of indexes defined on one table: at most one per column.
#[derive(Debug, Clone, Default)]
pub struct TableIndexes {
    by_column: HashMap<ColumnId, HashIndex>,
}

impl TableIndexes {
    /// Create an empty index set.
    pub fn new() -> Self {
        TableIndexes::default()
    }

    /// Whether column `c` has an index.
    pub fn has(&self, c: ColumnId) -> bool {
        self.by_column.contains_key(&c)
    }

    /// Whether the table has no indexes at all (DML on such a table does no
    /// index maintenance, so the fault injector skips that site).
    pub fn is_empty(&self) -> bool {
        self.by_column.is_empty()
    }

    /// The index on column `c`, if any.
    pub fn get(&self, c: ColumnId) -> Option<&HashIndex> {
        self.by_column.get(&c)
    }

    /// Add an (already-populated) index for column `c`. Returns `false` if
    /// one already exists.
    pub fn add(&mut self, c: ColumnId, idx: HashIndex) -> bool {
        use std::collections::hash_map::Entry;
        match self.by_column.entry(c) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(idx);
                true
            }
        }
    }

    /// Drop the index on column `c`, if present.
    pub fn drop(&mut self, c: ColumnId) -> bool {
        self.by_column.remove(&c).is_some()
    }

    /// Indexed columns.
    pub fn columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.by_column.keys().copied()
    }

    /// Maintain all indexes for a newly inserted tuple. Returns the number
    /// of index entry operations performed.
    pub fn on_insert(&mut self, h: TupleHandle, fields: &[Value]) -> u64 {
        let mut ops = 0;
        for (c, idx) in self.by_column.iter_mut() {
            idx.insert(fields[c.index()].clone(), h);
            ops += 1;
        }
        ops
    }

    /// Maintain all indexes for a deleted tuple. Returns the number of
    /// index entry operations performed.
    pub fn on_delete(&mut self, h: TupleHandle, fields: &[Value]) -> u64 {
        let mut ops = 0;
        for (c, idx) in self.by_column.iter_mut() {
            idx.remove(&fields[c.index()], h);
            ops += 1;
        }
        ops
    }

    /// Maintain all indexes for an updated tuple. Returns the number of
    /// index entry operations performed (a changed indexed value costs a
    /// removal plus an insertion; unchanged values cost nothing).
    pub fn on_update(&mut self, h: TupleHandle, old: &[Value], new: &[Value]) -> u64 {
        let mut ops = 0;
        for (c, idx) in self.by_column.iter_mut() {
            let (o, n) = (&old[c.index()], &new[c.index()]);
            if o != n {
                idx.remove(o, h);
                idx.insert(n.clone(), h);
                ops += 2;
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(5), TupleHandle(1));
        idx.insert(Value::Int(5), TupleHandle(2));
        idx.insert(Value::Int(6), TupleHandle(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get(&Value::Int(5)).unwrap().len(), 2);
        idx.remove(&Value::Int(5), TupleHandle(1));
        assert_eq!(idx.get(&Value::Int(5)).unwrap().len(), 1);
        idx.remove(&Value::Int(5), TupleHandle(2));
        assert!(idx.get(&Value::Int(5)).is_none());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn table_indexes_maintenance() {
        let mut ti = TableIndexes::new();
        assert!(ti.add(ColumnId(1), HashIndex::new()));
        assert!(!ti.add(ColumnId(1), HashIndex::new()));
        let row1 = vec![Value::Text("a".into()), Value::Int(10)];
        let row2 = vec![Value::Text("b".into()), Value::Int(10)];
        ti.on_insert(TupleHandle(1), &row1);
        ti.on_insert(TupleHandle(2), &row2);
        assert_eq!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(10)).unwrap().len(), 2);

        let row1b = vec![Value::Text("a".into()), Value::Int(20)];
        ti.on_update(TupleHandle(1), &row1, &row1b);
        assert_eq!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(10)).unwrap().len(), 1);
        assert_eq!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(20)).unwrap().len(), 1);

        ti.on_delete(TupleHandle(2), &row2);
        assert!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(10)).is_none());
    }

    #[test]
    fn idempotent_duplicate_insert() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(1), TupleHandle(1));
        idx.insert(Value::Int(1), TupleHandle(1));
        assert_eq!(idx.len(), 1);
    }
}
