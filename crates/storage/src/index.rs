//! Secondary indexes on single columns: hash (equality) and ordered
//! (range) variants.
//!
//! The paper argues (§1) that set-oriented rules keep relational
//! optimization applicable "to the rules themselves". Equality indexes are
//! the optimization our planner exploits for `=` and `in` predicates;
//! ordered indexes extend that to range-shaped conditions (`<`, `<=`, `>`,
//! `>=`, `between`) and to `order by` / `min` / `max` elimination.
//! Benchmarks B7 and B12 measure the effects.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::Bound;

use crate::tuple::{ColumnId, TupleHandle};
use crate::value::Value;

/// Which physical structure backs an index on a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IndexKind {
    /// Hash map from value to handle set: equality/IN probes only.
    #[default]
    Hash,
    /// BTree map from value to handle set: equality probes plus range
    /// scans, ordered emission, and first/last-key answers.
    Ordered,
}

impl IndexKind {
    /// Stable lowercase name (`"hash"` / `"ordered"`), used by
    /// `state_image`, snapshots, and DDL display.
    pub fn name(&self) -> &'static str {
        match self {
            IndexKind::Hash => "hash",
            IndexKind::Ordered => "ordered",
        }
    }
}

impl fmt::Display for IndexKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A hash index mapping the values of one column to the handles of the
/// tuples holding that value. `NULL`s are indexed too (under `Value::Null`),
/// but the planner never uses the index for `= NULL` predicates because SQL
/// equality with `NULL` is unknown.
#[derive(Debug, Clone, Default)]
pub struct HashIndex {
    map: HashMap<Value, BTreeSet<TupleHandle>>,
    entries: usize,
}

impl HashIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        HashIndex::default()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Handles of tuples whose indexed column equals `v` exactly
    /// (storage-level equality; the caller handles `Int`/`Float`
    /// cross-type probing).
    pub fn get(&self, v: &Value) -> Option<&BTreeSet<TupleHandle>> {
        self.map.get(v)
    }

    /// Record that tuple `h` holds `v` in the indexed column.
    pub fn insert(&mut self, v: Value, h: TupleHandle) {
        if self.map.entry(v).or_default().insert(h) {
            self.entries += 1;
        }
    }

    /// Remove the entry for tuple `h` holding `v`.
    pub fn remove(&mut self, v: &Value, h: TupleHandle) {
        if let Some(set) = self.map.get_mut(v) {
            if set.remove(&h) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(v);
            }
        }
    }
}

/// An ordered index: a BTree keyed by [`Value`]'s total storage order
/// (`NULL < bool < numeric < text`, floats in IEEE total order), each key
/// bucketing the handles that hold it. Bucket sets iterate in handle
/// order, so a full in-order walk yields exactly the stable
/// sort-by-key-then-handle order the executor's `order by` produces —
/// that equivalence is what licenses sort elimination.
#[derive(Debug, Clone, Default)]
pub struct OrderedIndex {
    map: BTreeMap<Value, BTreeSet<TupleHandle>>,
    entries: usize,
}

/// `true` when the `(lo, hi)` pair denotes a non-empty interval that
/// `BTreeMap::range` accepts without panicking.
fn bounds_nonempty(lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    let (a, a_incl) = match lo {
        Bound::Unbounded => return true,
        Bound::Included(v) => (v, true),
        Bound::Excluded(v) => (v, false),
    };
    let (b, b_incl) = match hi {
        Bound::Unbounded => return true,
        Bound::Included(v) => (v, true),
        Bound::Excluded(v) => (v, false),
    };
    match a.cmp(b) {
        std::cmp::Ordering::Less => true,
        std::cmp::Ordering::Equal => a_incl && b_incl,
        std::cmp::Ordering::Greater => false,
    }
}

impl OrderedIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        OrderedIndex::default()
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        self.entries
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Handles of tuples whose indexed column equals `v` exactly.
    pub fn get(&self, v: &Value) -> Option<&BTreeSet<TupleHandle>> {
        self.map.get(v)
    }

    /// Record that tuple `h` holds `v` in the indexed column.
    pub fn insert(&mut self, v: Value, h: TupleHandle) {
        if self.map.entry(v).or_default().insert(h) {
            self.entries += 1;
        }
    }

    /// Remove the entry for tuple `h` holding `v`.
    pub fn remove(&mut self, v: &Value, h: TupleHandle) {
        if let Some(set) = self.map.get_mut(v) {
            if set.remove(&h) {
                self.entries -= 1;
            }
            if set.is_empty() {
                self.map.remove(v);
            }
        }
    }

    /// Keys in ascending storage order.
    pub fn keys(&self) -> impl DoubleEndedIterator<Item = &Value> {
        self.map.keys()
    }

    /// `(key, bucket)` pairs within `[lo, hi]` in ascending storage order.
    /// An inverted or degenerate interval yields nothing (never panics).
    pub fn range(
        &self,
        lo: Bound<Value>,
        hi: Bound<Value>,
    ) -> Box<dyn DoubleEndedIterator<Item = (&Value, &BTreeSet<TupleHandle>)> + '_> {
        if bounds_nonempty(&lo, &hi) {
            Box::new(self.map.range((lo, hi)))
        } else {
            Box::new(std::iter::empty())
        }
    }

    /// Handles within `[lo, hi]`, sorted ascending (matching the
    /// determinism contract of the other index scan paths).
    pub fn range_handles(&self, lo: Bound<Value>, hi: Bound<Value>) -> Vec<TupleHandle> {
        let mut out = Vec::new();
        for (_, set) in self.range(lo, hi) {
            out.extend(set.iter().copied());
        }
        out.sort_unstable();
        out
    }

    /// The smallest non-`NULL` key, if any (`NULL` sorts first in the
    /// storage order, so it is a skip of at most one bucket).
    pub fn first_key(&self) -> Option<&Value> {
        self.map.keys().find(|k| !matches!(k, Value::Null))
    }

    /// The largest key, unless the index holds only `NULL`s.
    pub fn last_key(&self) -> Option<&Value> {
        self.map.keys().next_back().filter(|k| !matches!(k, Value::Null))
    }
}

/// One index on one column: either structure behind a common maintenance
/// interface, so insert/delete/update and undo-rollback paths are
/// kind-agnostic.
#[derive(Debug, Clone)]
pub enum ColumnIndex {
    /// Equality-only hash index.
    Hash(HashIndex),
    /// Range-capable ordered index.
    Ordered(OrderedIndex),
}

impl ColumnIndex {
    /// Create an empty index of the given kind.
    pub fn new(kind: IndexKind) -> Self {
        match kind {
            IndexKind::Hash => ColumnIndex::Hash(HashIndex::new()),
            IndexKind::Ordered => ColumnIndex::Ordered(OrderedIndex::new()),
        }
    }

    /// The physical structure backing this index.
    pub fn kind(&self) -> IndexKind {
        match self {
            ColumnIndex::Hash(_) => IndexKind::Hash,
            ColumnIndex::Ordered(_) => IndexKind::Ordered,
        }
    }

    /// Number of indexed tuples.
    pub fn len(&self) -> usize {
        match self {
            ColumnIndex::Hash(i) => i.len(),
            ColumnIndex::Ordered(i) => i.len(),
        }
    }

    /// Whether the index has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Handles of tuples whose indexed column equals `v` exactly.
    pub fn get(&self, v: &Value) -> Option<&BTreeSet<TupleHandle>> {
        match self {
            ColumnIndex::Hash(i) => i.get(v),
            ColumnIndex::Ordered(i) => i.get(v),
        }
    }

    /// Record that tuple `h` holds `v` in the indexed column.
    pub fn insert(&mut self, v: Value, h: TupleHandle) {
        match self {
            ColumnIndex::Hash(i) => i.insert(v, h),
            ColumnIndex::Ordered(i) => i.insert(v, h),
        }
    }

    /// Remove the entry for tuple `h` holding `v`.
    pub fn remove(&mut self, v: &Value, h: TupleHandle) {
        match self {
            ColumnIndex::Hash(i) => i.remove(v, h),
            ColumnIndex::Ordered(i) => i.remove(v, h),
        }
    }

    /// The ordered structure, when this is an ordered index.
    pub fn ordered(&self) -> Option<&OrderedIndex> {
        match self {
            ColumnIndex::Ordered(i) => Some(i),
            ColumnIndex::Hash(_) => None,
        }
    }
}

/// The set of indexes defined on one table: at most one per column.
#[derive(Debug, Clone, Default)]
pub struct TableIndexes {
    by_column: HashMap<ColumnId, ColumnIndex>,
}

impl TableIndexes {
    /// Create an empty index set.
    pub fn new() -> Self {
        TableIndexes::default()
    }

    /// Whether column `c` has an index (of either kind).
    pub fn has(&self, c: ColumnId) -> bool {
        self.by_column.contains_key(&c)
    }

    /// Whether the table has no indexes at all (DML on such a table does no
    /// index maintenance, so the fault injector skips that site).
    pub fn is_empty(&self) -> bool {
        self.by_column.is_empty()
    }

    /// The index on column `c`, if any.
    pub fn get(&self, c: ColumnId) -> Option<&ColumnIndex> {
        self.by_column.get(&c)
    }

    /// Add an (already-populated) index for column `c`. Returns `false` if
    /// one already exists.
    pub fn add(&mut self, c: ColumnId, idx: ColumnIndex) -> bool {
        use std::collections::hash_map::Entry;
        match self.by_column.entry(c) {
            Entry::Occupied(_) => false,
            Entry::Vacant(e) => {
                e.insert(idx);
                true
            }
        }
    }

    /// Drop the index on column `c`, if present.
    pub fn drop(&mut self, c: ColumnId) -> bool {
        self.by_column.remove(&c).is_some()
    }

    /// Indexed columns.
    pub fn columns(&self) -> impl Iterator<Item = ColumnId> + '_ {
        self.by_column.keys().copied()
    }

    /// Maintain all indexes for a newly inserted tuple. Returns the number
    /// of index entry operations performed.
    pub fn on_insert(&mut self, h: TupleHandle, fields: &[Value]) -> u64 {
        let mut ops = 0;
        for (c, idx) in self.by_column.iter_mut() {
            idx.insert(fields[c.index()].clone(), h);
            ops += 1;
        }
        ops
    }

    /// Maintain all indexes for a deleted tuple. Returns the number of
    /// index entry operations performed.
    pub fn on_delete(&mut self, h: TupleHandle, fields: &[Value]) -> u64 {
        let mut ops = 0;
        for (c, idx) in self.by_column.iter_mut() {
            idx.remove(&fields[c.index()], h);
            ops += 1;
        }
        ops
    }

    /// Maintain all indexes for an updated tuple. Returns the number of
    /// index entry operations performed (a changed indexed value costs a
    /// removal plus an insertion; unchanged values cost nothing).
    pub fn on_update(&mut self, h: TupleHandle, old: &[Value], new: &[Value]) -> u64 {
        let mut ops = 0;
        for (c, idx) in self.by_column.iter_mut() {
            let (o, n) = (&old[c.index()], &new[c.index()]);
            if o != n {
                idx.remove(o, h);
                idx.insert(n.clone(), h);
                ops += 2;
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(5), TupleHandle(1));
        idx.insert(Value::Int(5), TupleHandle(2));
        idx.insert(Value::Int(6), TupleHandle(3));
        assert_eq!(idx.len(), 3);
        assert_eq!(idx.get(&Value::Int(5)).unwrap().len(), 2);
        idx.remove(&Value::Int(5), TupleHandle(1));
        assert_eq!(idx.get(&Value::Int(5)).unwrap().len(), 1);
        idx.remove(&Value::Int(5), TupleHandle(2));
        assert!(idx.get(&Value::Int(5)).is_none());
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn table_indexes_maintenance() {
        let mut ti = TableIndexes::new();
        assert!(ti.add(ColumnId(1), ColumnIndex::new(IndexKind::Hash)));
        assert!(!ti.add(ColumnId(1), ColumnIndex::new(IndexKind::Ordered)));
        let row1 = vec![Value::Text("a".into()), Value::Int(10)];
        let row2 = vec![Value::Text("b".into()), Value::Int(10)];
        ti.on_insert(TupleHandle(1), &row1);
        ti.on_insert(TupleHandle(2), &row2);
        assert_eq!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(10)).unwrap().len(), 2);

        let row1b = vec![Value::Text("a".into()), Value::Int(20)];
        ti.on_update(TupleHandle(1), &row1, &row1b);
        assert_eq!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(10)).unwrap().len(), 1);
        assert_eq!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(20)).unwrap().len(), 1);

        ti.on_delete(TupleHandle(2), &row2);
        assert!(ti.get(ColumnId(1)).unwrap().get(&Value::Int(10)).is_none());
    }

    #[test]
    fn idempotent_duplicate_insert() {
        let mut idx = HashIndex::new();
        idx.insert(Value::Int(1), TupleHandle(1));
        idx.insert(Value::Int(1), TupleHandle(1));
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn ordered_index_keys_stay_sorted() {
        let mut idx = OrderedIndex::new();
        idx.insert(Value::Int(5), TupleHandle(2));
        idx.insert(Value::Null, TupleHandle(9));
        idx.insert(Value::Int(-3), TupleHandle(1));
        idx.insert(Value::Float(4.5), TupleHandle(3));
        idx.insert(Value::Int(5), TupleHandle(7));
        let keys: Vec<&Value> = idx.keys().collect();
        assert_eq!(
            keys,
            vec![&Value::Null, &Value::Int(-3), &Value::Float(4.5), &Value::Int(5)]
        );
        assert_eq!(idx.first_key(), Some(&Value::Int(-3)));
        assert_eq!(idx.last_key(), Some(&Value::Int(5)));
        assert_eq!(idx.len(), 5);
    }

    #[test]
    fn ordered_index_range_handles() {
        let mut idx = OrderedIndex::new();
        for (v, h) in [(1, 4), (2, 3), (2, 1), (3, 2), (9, 5)] {
            idx.insert(Value::Int(v), TupleHandle(h));
        }
        idx.insert(Value::Null, TupleHandle(6));
        let hs = idx.range_handles(Bound::Included(Value::Int(2)), Bound::Excluded(Value::Int(9)));
        assert_eq!(hs, vec![TupleHandle(1), TupleHandle(2), TupleHandle(3)]);
        // Inverted and degenerate intervals are empty, not a panic.
        assert!(idx
            .range_handles(Bound::Included(Value::Int(9)), Bound::Included(Value::Int(2)))
            .is_empty());
        assert!(idx
            .range_handles(Bound::Excluded(Value::Int(2)), Bound::Excluded(Value::Int(2)))
            .is_empty());
        // A NULL-excluding open range: start just above NULL.
        let hs = idx.range_handles(Bound::Excluded(Value::Null), Bound::Unbounded);
        assert_eq!(hs.len(), 5);
    }

    #[test]
    fn ordered_index_null_only_boundaries() {
        let mut idx = OrderedIndex::new();
        idx.insert(Value::Null, TupleHandle(1));
        assert_eq!(idx.first_key(), None);
        assert_eq!(idx.last_key(), None);
    }
}
