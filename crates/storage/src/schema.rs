//! Table schemas: named, typed columns (paper §2).

use crate::error::StorageError;
use crate::tuple::{ColumnId, Tuple};
use crate::value::{DataType, Value};

/// A column definition: a name and a type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Column name (case-sensitive, lower-cased by the SQL layer).
    pub name: String,
    /// Declared type.
    pub ty: DataType,
}

impl ColumnDef {
    /// Construct a column definition.
    pub fn new(name: impl Into<String>, ty: DataType) -> Self {
        ColumnDef { name: name.into(), ty }
    }
}

/// A table schema: an ordered list of named, typed columns.
///
/// The paper assumes a fixed schema (§2 fn. 1); schemas are immutable once
/// the table is created.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSchema {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<ColumnDef>,
}

impl TableSchema {
    /// Construct a schema.
    pub fn new(name: impl Into<String>, columns: Vec<ColumnDef>) -> Self {
        TableSchema { name: name.into(), columns }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Resolve a column name to its position.
    pub fn column_id(&self, name: &str) -> Result<ColumnId, StorageError> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .map(|i| ColumnId(i as u16))
            .ok_or_else(|| StorageError::NoSuchColumn {
                table: self.name.clone(),
                column: name.to_string(),
            })
    }

    /// The name of column `c`.
    pub fn column_name(&self, c: ColumnId) -> &str {
        &self.columns[c.index()].name
    }

    /// The declared type of column `c`.
    pub fn column_type(&self, c: ColumnId) -> DataType {
        self.columns[c.index()].ty
    }

    /// Validate a tuple against this schema, coercing fields where a
    /// lossless coercion exists (`Int` → `Float`, `NULL` → anything).
    pub fn check_tuple(&self, tuple: Tuple) -> Result<Tuple, StorageError> {
        if tuple.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                table: self.name.clone(),
                expected: self.arity(),
                got: tuple.arity(),
            });
        }
        let mut out = Vec::with_capacity(tuple.arity());
        for (i, v) in tuple.0.into_iter().enumerate() {
            let col = &self.columns[i];
            match v.coerce_to(col.ty) {
                Some(cv) => out.push(cv),
                None => {
                    return Err(StorageError::TypeMismatch {
                        table: self.name.clone(),
                        column: col.name.clone(),
                        expected: col.ty,
                        got: v.data_type(),
                    })
                }
            }
        }
        Ok(Tuple(out))
    }

    /// Validate a single field value for column `c`, coercing if possible.
    pub fn check_value(&self, c: ColumnId, v: Value) -> Result<Value, StorageError> {
        let col = &self.columns[c.index()];
        v.coerce_to(col.ty).ok_or_else(|| StorageError::TypeMismatch {
            table: self.name.clone(),
            column: col.name.clone(),
            expected: col.ty,
            got: v.data_type(),
        })
    }
}

/// Convenience constructor for the paper's running example schema
/// (`emp(name, emp_no, salary, dept_no)` and `dept(dept_no, mgr_no)`, §3.1).
pub fn paper_example_schemas() -> (TableSchema, TableSchema) {
    (
        TableSchema::new(
            "emp",
            vec![
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("emp_no", DataType::Int),
                ColumnDef::new("salary", DataType::Float),
                ColumnDef::new("dept_no", DataType::Int),
            ],
        ),
        TableSchema::new(
            "dept",
            vec![
                ColumnDef::new("dept_no", DataType::Int),
                ColumnDef::new("mgr_no", DataType::Int),
            ],
        ),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn emp() -> TableSchema {
        paper_example_schemas().0
    }

    #[test]
    fn column_lookup() {
        let s = emp();
        assert_eq!(s.column_id("salary").unwrap(), ColumnId(2));
        assert!(s.column_id("bogus").is_err());
        assert_eq!(s.column_name(ColumnId(3)), "dept_no");
        assert_eq!(s.column_type(ColumnId(2)), DataType::Float);
    }

    #[test]
    fn check_tuple_coerces_int_to_float() {
        let s = emp();
        let t = s.check_tuple(tuple!["Jane", 1, 95000, 2]).unwrap();
        assert_eq!(t.get(ColumnId(2)), &Value::Float(95000.0));
    }

    #[test]
    fn check_tuple_rejects_wrong_arity() {
        let s = emp();
        assert!(matches!(
            s.check_tuple(tuple!["Jane", 1]),
            Err(StorageError::ArityMismatch { expected: 4, got: 2, .. })
        ));
    }

    #[test]
    fn check_tuple_rejects_wrong_type() {
        let s = emp();
        assert!(matches!(
            s.check_tuple(tuple!["Jane", "oops", 1.0, 2]),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn nulls_allowed_everywhere() {
        let s = emp();
        let t = s.check_tuple(Tuple(vec![Value::Null, Value::Null, Value::Null, Value::Null]));
        assert!(t.is_ok());
    }
}
