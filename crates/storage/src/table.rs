//! A single table: a multiset of tuples keyed by handle.

use std::collections::BTreeMap;

use crate::schema::TableSchema;
use crate::tuple::{Tuple, TupleHandle};

/// A table holds zero or more tuples; duplicates are allowed (paper §2),
/// distinguished by their handles. Iteration order is handle order, which
/// equals insertion order because handles are issued monotonically — this
/// keeps scans and therefore the whole system deterministic.
#[derive(Debug, Clone)]
pub struct Table {
    /// The immutable schema.
    pub schema: TableSchema,
    rows: BTreeMap<TupleHandle, Tuple>,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: TableSchema) -> Self {
        Table { schema, rows: BTreeMap::new() }
    }

    /// Number of live tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Get the live tuple with handle `h`, if any.
    pub fn get(&self, h: TupleHandle) -> Option<&Tuple> {
        self.rows.get(&h)
    }

    /// Whether handle `h` identifies a live tuple.
    pub fn contains(&self, h: TupleHandle) -> bool {
        self.rows.contains_key(&h)
    }

    /// Insert a (pre-validated) tuple under handle `h`.
    ///
    /// Panics if `h` is already present — handles are unique by construction.
    pub(crate) fn insert(&mut self, h: TupleHandle, t: Tuple) {
        let prev = self.rows.insert(h, t);
        debug_assert!(prev.is_none(), "tuple handle reused");
    }

    /// Remove the tuple with handle `h`, returning it.
    pub(crate) fn remove(&mut self, h: TupleHandle) -> Option<Tuple> {
        self.rows.remove(&h)
    }

    /// Replace the tuple with handle `h`, returning the old tuple.
    pub(crate) fn replace(&mut self, h: TupleHandle, t: Tuple) -> Option<Tuple> {
        self.rows.get_mut(&h).map(|slot| std::mem::replace(slot, t))
    }

    /// Mutable access to the tuple with handle `h`.
    pub(crate) fn get_mut(&mut self, h: TupleHandle) -> Option<&mut Tuple> {
        self.rows.get_mut(&h)
    }

    /// Scan the table in handle (= insertion) order.
    pub fn scan(&self) -> impl Iterator<Item = (TupleHandle, &Tuple)> {
        self.rows.iter().map(|(h, t)| (*h, t))
    }

    /// All live handles in order.
    pub fn handles(&self) -> impl Iterator<Item = TupleHandle> + '_ {
        self.rows.keys().copied()
    }

    /// Materialize the scan as an indexable vector in handle order — the
    /// shape partitioned parallel scans hand across worker threads, each
    /// worker reading a disjoint contiguous range.
    pub fn snapshot(&self) -> Vec<(TupleHandle, &Tuple)> {
        self.rows.iter().map(|(h, t)| (*h, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::paper_example_schemas;
    use crate::tuple;

    #[test]
    fn insert_scan_remove() {
        let mut t = Table::new(paper_example_schemas().1);
        t.insert(TupleHandle(1), tuple![5, 100]);
        t.insert(TupleHandle(2), tuple![6, 101]);
        assert_eq!(t.len(), 2);
        let rows: Vec<_> = t.scan().map(|(h, _)| h).collect();
        assert_eq!(rows, vec![TupleHandle(1), TupleHandle(2)]);
        let removed = t.remove(TupleHandle(1)).unwrap();
        assert_eq!(removed, tuple![5, 100]);
        assert!(!t.contains(TupleHandle(1)));
        assert!(t.contains(TupleHandle(2)));
    }

    #[test]
    fn duplicates_coexist_under_distinct_handles() {
        let mut t = Table::new(paper_example_schemas().1);
        t.insert(TupleHandle(1), tuple![5, 100]);
        t.insert(TupleHandle(2), tuple![5, 100]);
        assert_eq!(t.len(), 2, "duplicate tuples may appear in a table (paper §2)");
    }

    #[test]
    fn replace_returns_old() {
        let mut t = Table::new(paper_example_schemas().1);
        t.insert(TupleHandle(1), tuple![5, 100]);
        let old = t.replace(TupleHandle(1), tuple![5, 200]).unwrap();
        assert_eq!(old, tuple![5, 100]);
        assert_eq!(t.get(TupleHandle(1)).unwrap(), &tuple![5, 200]);
    }
}
