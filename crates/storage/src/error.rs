//! Storage-layer errors.

use std::fmt;

use crate::fault::FaultKind;
use crate::value::DataType;

/// Errors raised by the storage engine.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(missing_docs)] // variant fields are self-describing
pub enum StorageError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    NoSuchTable(String),
    /// No column with this name exists in the named table.
    NoSuchColumn { table: String, column: String },
    /// A tuple handle does not identify a live tuple in the given table.
    NoSuchTuple { table: String },
    /// A tuple has the wrong number of fields for the table.
    ArityMismatch { table: String, expected: usize, got: usize },
    /// A field value does not match (and cannot be coerced to) the column type.
    TypeMismatch {
        table: String,
        column: String,
        expected: DataType,
        got: Option<DataType>,
    },
    /// An index already exists on this column.
    IndexExists { table: String, column: String },
    /// An undo mark is no longer valid (the log was truncated past it).
    InvalidMark,
    /// The fault injector failed this operation (crash-consistency
    /// testing; see [`crate::FaultInjector`]). `op` is the 1-based
    /// occurrence number of `kind` that was made to fail.
    FaultInjected { kind: FaultKind, op: u64 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(t) => write!(f, "table '{t}' already exists"),
            StorageError::NoSuchTable(t) => write!(f, "no such table '{t}'"),
            StorageError::NoSuchColumn { table, column } => {
                write!(f, "no column '{column}' in table '{table}'")
            }
            StorageError::NoSuchTuple { table } => {
                write!(f, "tuple handle does not identify a live tuple in '{table}'")
            }
            StorageError::ArityMismatch { table, expected, got } => {
                write!(f, "table '{table}' has {expected} columns but tuple has {got} fields")
            }
            StorageError::TypeMismatch { table, column, expected, got } => match got {
                Some(g) => write!(
                    f,
                    "column '{table}.{column}' has type {expected} but value has type {g}"
                ),
                None => write!(f, "column '{table}.{column}' has type {expected}"),
            },
            StorageError::IndexExists { table, column } => {
                write!(f, "index on '{table}.{column}' already exists")
            }
            StorageError::InvalidMark => write!(f, "undo mark is no longer valid"),
            StorageError::FaultInjected { kind, op } => {
                write!(f, "injected fault: {kind} operation #{op} failed")
            }
        }
    }
}

impl std::error::Error for StorageError {}
