//! # setrules-storage
//!
//! The in-memory relational storage substrate for the `setrules` system — a
//! from-scratch reproduction of the database machinery that Widom &
//! Finkelstein's *Set-Oriented Production Rules in Relational Database
//! Systems* (SIGMOD 1990) assumes:
//!
//! * named tables with fixed, typed columns (§2);
//! * multisets of tuples — duplicates allowed — each carrying a **distinct,
//!   non-reusable tuple handle** (§2);
//! * handle → table provenance that survives deletion, so transition effects
//!   can be filtered per table even for tuples that no longer exist;
//! * a physical undo log supporting the `rollback` rule action (§4);
//! * hash and ordered (BTree) indexes so relational optimization "is
//!   directly applicable to the rules themselves" (§1).
//!
//! The paper abstracts away concurrency and failures ("multiple users,
//! concurrent processing, and failures are all transparent", §2.1); this
//! engine is accordingly volatile and follows a **read-parallel,
//! write-serial** model: all mutation happens on one thread, but the core
//! types ([`Value`], [`Tuple`], [`Table`], [`Database`]) are `Send + Sync`,
//! so the query layer may scan a frozen database from a worker pool
//! between mutations (see the `setrules-exec` crate and
//! `docs/parallel-execution.md`).

#![warn(missing_docs)]

mod database;
mod error;
mod fault;
mod index;
mod schema;
mod stats;
mod table;
pub mod tuple;
mod undo;
mod value;

pub use database::Database;
pub use error::StorageError;
pub use fault::{FaultInjector, FaultKind, FaultPlan};
pub use index::{ColumnIndex, HashIndex, IndexKind, OrderedIndex, TableIndexes};
pub use schema::{paper_example_schemas, ColumnDef, TableSchema};
pub use stats::StorageStats;
pub use table::Table;
pub use tuple::{ColumnId, TableId, Tuple, TupleHandle};
pub use undo::{UndoLog, UndoMark, UndoRecord};
pub use value::{DataType, Value};

// The read-parallel model above is load-bearing for the query layer's
// worker pool: shared scans hand `&Value` / `&Tuple` / `&Database` across
// threads. Keep the compiler checking that these types stay `Send + Sync`.
const _: () = {
    const fn assert_sync<T: Send + Sync>() {}
    assert_sync::<Value>();
    assert_sync::<Tuple>();
    assert_sync::<Table>();
    assert_sync::<Database>();
};
