//! Materialization of transition tables (paper §3, semantics §4).
//!
//! Given a rule's composite window (its `trans-info`), this provider
//! serves:
//!
//! * `inserted t` — tuples of `t` **in the current state** inserted within
//!   the window (so updates made after the insert are visible);
//! * `deleted t` — tuples of `t` with their **window-start values**;
//! * `old updated t[.c]` — updated tuples, window-start values;
//! * `new updated t[.c]` — the same tuples, current values;
//! * `selected t[.c]` — read tuples, current values (§5.1 extension).
//!
//! References are checked against the set licensed by the rule's
//! transition predicates (§3's restriction); a provider without a licence
//! set (used for debugging/analysis) allows everything.

use std::borrow::Cow;
use std::collections::BTreeSet;

use setrules_query::{describe, QueryError, TransitionTableProvider};
use setrules_sql::ast::TransitionKind;
use setrules_storage::{ColumnId, Database, TableId, Value};

use crate::transinfo::TransInfo;

/// A [`TransitionTableProvider`] over one rule's window (owning variant,
/// used where the provider must outlive local borrows — external actions).
#[derive(Debug, Clone)]
pub struct RuleWindowProvider {
    info: TransInfo,
    /// Licensed references; `None` = unrestricted (ad-hoc inspection).
    licensed: Option<BTreeSet<(TransitionKind, TableId, Option<ColumnId>)>>,
}

/// A borrowing [`TransitionTableProvider`] over one rule's window — avoids
/// cloning the (potentially large) window for declarative actions and
/// condition checks.
#[derive(Debug, Clone, Copy)]
pub struct RuleWindowRef<'a> {
    /// The rule's composite window.
    pub info: &'a TransInfo,
    /// The rule's licensed transition-table references (§3).
    pub licensed: &'a BTreeSet<(TransitionKind, TableId, Option<ColumnId>)>,
}

impl TransitionTableProvider for RuleWindowRef<'_> {
    fn rows<'a>(
        &'a self,
        db: &'a Database,
        kind: TransitionKind,
        table: &str,
        column: Option<&str>,
    ) -> Result<Vec<Cow<'a, [Value]>>, QueryError> {
        rows_impl(self.info, Some(self.licensed), db, kind, table, column)
    }
}

impl RuleWindowProvider {
    /// Provider enforcing the §3 restriction with the given licence set.
    pub fn licensed(
        info: TransInfo,
        licensed: BTreeSet<(TransitionKind, TableId, Option<ColumnId>)>,
    ) -> Self {
        RuleWindowProvider { info, licensed: Some(licensed) }
    }

    /// Provider allowing any reference (for analysis and the REPL's
    /// post-mortem inspection).
    pub fn unrestricted(info: TransInfo) -> Self {
        RuleWindowProvider { info, licensed: None }
    }

    /// The underlying window.
    pub fn info(&self) -> &TransInfo {
        &self.info
    }
}

impl TransitionTableProvider for RuleWindowProvider {
    fn rows<'a>(
        &'a self,
        db: &'a Database,
        kind: TransitionKind,
        table: &str,
        column: Option<&str>,
    ) -> Result<Vec<Cow<'a, [Value]>>, QueryError> {
        rows_impl(&self.info, self.licensed.as_ref(), db, kind, table, column)
    }
}

/// Shared materialization logic for the owning and borrowing providers.
///
/// Rows are *lent*, not cloned: window-start values (`deleted`,
/// `old updated`) borrow from the window's undo copies, current values
/// (`inserted`, `new updated`, `selected`) borrow from the live tuples —
/// the executor clones only rows that survive its filters. This is the
/// consideration hot path: a storm of reconsiderations over a large
/// window used to clone every row per consideration.
fn rows_impl<'a>(
    info: &'a TransInfo,
    licensed: Option<&BTreeSet<(TransitionKind, TableId, Option<ColumnId>)>>,
    db: &'a Database,
    kind: TransitionKind,
    table: &str,
    column: Option<&str>,
) -> Result<Vec<Cow<'a, [Value]>>, QueryError> {
    {
        let tid = db.table_id(table)?;
        let col = match column {
            Some(c) => Some(
                db.schema(tid)
                    .column_id(c)
                    .map_err(|_| QueryError::UnknownColumn(format!("{table}.{c}")))?,
            ),
            None => None,
        };
        if let Some(lic) = licensed {
            if !lic.contains(&(kind, tid, col)) {
                return Err(QueryError::TransitionTableUnavailable(describe(
                    kind, table, column,
                )));
            }
        }
        let rows = match kind {
            TransitionKind::Inserted => info
                .ins
                .iter()
                .filter(|h| db.table_of(**h) == Some(tid))
                .filter_map(|h| db.get(tid, *h))
                .map(|t| Cow::Borrowed(t.0.as_slice()))
                .collect(),
            TransitionKind::Deleted => info
                .del
                .values()
                .filter(|e| e.table == tid)
                .map(|e| Cow::Borrowed(e.old.0.as_slice()))
                .collect(),
            TransitionKind::OldUpdated => info
                .upd
                .values()
                .filter(|e| e.table == tid && col.is_none_or(|c| e.columns.contains(&c)))
                .map(|e| Cow::Borrowed(e.old.0.as_slice()))
                .collect(),
            TransitionKind::NewUpdated => info
                .upd
                .iter()
                .filter(|(_, e)| e.table == tid && col.is_none_or(|c| e.columns.contains(&c)))
                .filter_map(|(h, _)| db.get(tid, *h))
                .map(|t| Cow::Borrowed(t.0.as_slice()))
                .collect(),
            TransitionKind::Selected => info
                .sel
                .iter()
                .filter(|(_, e)| {
                    e.table == tid
                        && col.is_none_or(|c| match &e.columns {
                            None => true,
                            Some(cols) => cols.contains(&c),
                        })
                })
                .filter_map(|(h, _)| db.get(tid, *h))
                .map(|t| Cow::Borrowed(t.0.as_slice()))
                .collect(),
        };
        Ok(rows)
    }
}
