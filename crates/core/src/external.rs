//! External-procedure rule actions (paper §5.2).
//!
//! "This can be done by permitting the action part of a rule to call an
//! arbitrary external procedure. … the effect on the database of executing
//! an external procedure still corresponds to a sequence of data
//! manipulation operations."
//!
//! An [`ExternalAction`] receives an [`ActionCtx`] through which it can run
//! DML operations (which are absorbed into the rule-generated transition,
//! exactly like a declarative action block) and read the rule's transition
//! tables. Errors abort and roll back the transaction (the §5.2 error
//! semantics we adopt).

use setrules_query::{OpEffect, QueryError, Relation};
use setrules_sql::ast::DmlOp;
use setrules_sql::parse_op_block;
use setrules_storage::Database;

use crate::error::RuleError;
use crate::transition_tables::RuleWindowProvider;

/// A rule action implemented as native code.
pub trait ExternalAction: Send + Sync {
    /// Run the action. Database changes go through [`ActionCtx::run`] /
    /// [`ActionCtx::run_sql`]; anything else (logging, notifying, …) is up
    /// to the implementation.
    fn run(&self, ctx: &mut ActionCtx<'_>) -> Result<(), RuleError>;
}

impl<F> ExternalAction for F
where
    F: Fn(&mut ActionCtx<'_>) -> Result<(), RuleError> + Send + Sync,
{
    fn run(&self, ctx: &mut ActionCtx<'_>) -> Result<(), RuleError> {
        self(ctx)
    }
}

/// The capability handed to an external action: run operations that become
/// part of the rule's transition, and query the database (including the
/// rule's transition tables).
pub struct ActionCtx<'a> {
    pub(crate) db: &'a mut Database,
    pub(crate) provider: RuleWindowProvider,
    pub(crate) effects: Vec<OpEffect>,
    pub(crate) track_selects: bool,
    /// Set when the action ran DDL (e.g. [`ActionCtx::create_index`]);
    /// the engine drops every cached compiled plan after the action
    /// returns, since plans embed catalog-derived positions.
    pub(crate) did_ddl: bool,
}

impl ActionCtx<'_> {
    /// Execute one SQL operation; its affected set joins the rule's
    /// transition. Returns the rows for `select` operations.
    pub fn run(&mut self, op: &DmlOp) -> Result<Option<Relation>, RuleError> {
        let eff = setrules_query::execute_op(self.db, &self.provider, op)?;
        let out = match &eff {
            OpEffect::Select { output, .. } => Some(output.clone()),
            _ => None,
        };
        self.effects.push(eff);
        Ok(out)
    }

    /// Parse and execute a `;`-separated operation block. Returns the
    /// output of the last `select`, if any.
    pub fn run_sql(&mut self, sql: &str) -> Result<Option<Relation>, RuleError> {
        let ops = parse_op_block(sql)?;
        let mut last = None;
        for op in &ops {
            if let Some(rel) = self.run(op)? {
                last = Some(rel);
            }
        }
        Ok(last)
    }

    /// Read one of the rule's transition tables as raw rows (base-table
    /// schema order). Subject to the same §3 licensing restriction as SQL
    /// references.
    pub fn transition_table(
        &self,
        kind: setrules_sql::ast::TransitionKind,
        table: &str,
        column: Option<&str>,
    ) -> Result<Vec<Vec<setrules_storage::Value>>, QueryError> {
        use setrules_query::TransitionTableProvider;
        let rows = self.provider.rows(self.db, kind, table, column)?;
        Ok(rows.into_iter().map(|r| r.into_owned()).collect())
    }

    /// Create a hash index on `table.column` from inside a rule action —
    /// the one DDL operation permitted mid-transaction (indexes are
    /// redundant structures, so this cannot change logical state). The
    /// engine invalidates every cached compiled plan when the action
    /// returns.
    pub fn create_index(&mut self, table: &str, column: &str) -> Result<(), RuleError> {
        self.create_index_of(table, column, setrules_storage::IndexKind::Hash)
    }

    /// Like [`ActionCtx::create_index`] with an explicit index kind
    /// (`Ordered` builds a BTree index usable for range scans and sort
    /// elision).
    pub fn create_index_of(
        &mut self,
        table: &str,
        column: &str,
        kind: setrules_storage::IndexKind,
    ) -> Result<(), RuleError> {
        let tid = self.db.table_id(table)?;
        let c = self.db.schema(tid).column_id(column)?;
        self.db.create_index_of(tid, c, kind)?;
        self.did_ddl = true;
        Ok(())
    }

    /// Drop the index on `table.column` (any kind). Returns `true` when an
    /// index existed. Plans are invalidated when the action returns, just
    /// as for [`ActionCtx::create_index`].
    pub fn drop_index(&mut self, table: &str, column: &str) -> Result<bool, RuleError> {
        let tid = self.db.table_id(table)?;
        let c = self.db.schema(tid).column_id(column)?;
        let dropped = self.db.drop_index(tid, c);
        if dropped {
            self.did_ddl = true;
        }
        Ok(dropped)
    }

    /// Read-only access to the current database state.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Whether select-effect tracking (§5.1) is enabled — informational.
    pub fn track_selects(&self) -> bool {
        self.track_selects
    }
}
