//! The rule execution engine — the paper's Figure 1 algorithm with the §4
//! semantics, plus the §5.3 transaction-flexibility extensions.
//!
//! A transaction is one externally-generated operation block followed by
//! rule processing (§4): rules are repeatedly selected from the triggered
//! set, their conditions evaluated against their own composite windows, and
//! their actions executed — each action creating a new transition that is
//! composed into every *other* rule's window while resetting the acting
//! rule's window to just that transition (§4.2). Processing ends when no
//! triggered rule has a true condition; then the transaction commits. A
//! `rollback` action restores the transaction's start state.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;
use std::time::Instant;

use setrules_query::incremental::{analyze, CondVerdict, IncMemo, IncrState};
use setrules_query::{
    compile_cached, eval_compiled_predicate, execute_op_ext, execute_query_ext, ExecMode,
    ExecOpts, ExecStats, NoTransitionTables, OpEffect, PlanCache, QueryError, Relation, StatsCell,
};
use setrules_sql::ast::{CreateRule, DmlOp, Statement, TransitionKind};
use setrules_sql::{parse_op_block, parse_statement, parse_statements};
use setrules_storage::{
    Database, FaultInjector, FaultPlan, StorageError, StorageStats, TableSchema, UndoMark,
};
use setrules_wal::{WalConfig, WalRecord};

use crate::durability::{wal_log_effect, WalState};
use crate::effect::TransitionEffect;
use crate::error::RuleError;
use crate::events::{EngineEvent, EventBus, EventSink};
use crate::incremental::{refresh_term, DeltaSource};
use crate::external::{ActionCtx, ExternalAction};
use crate::priority::PriorityGraph;
use crate::rule::{CompiledAction, Rule, RuleId};
use crate::selection::{select_rule, SelectionStrategy, TriggerMemo};
use crate::stats::{EngineStats, TxnStats};
use crate::transinfo::TransInfo;
use crate::transition_tables::{RuleWindowProvider, RuleWindowRef};

/// Resolve the incremental-evaluation knob: a pinned config value wins,
/// else the `SETRULES_INCR` environment variable (`0`/`false`/`off`/`no`
/// disables), else on.
fn resolve_incremental(pinned: Option<bool>) -> bool {
    match pinned {
        Some(b) => b,
        None => match std::env::var("SETRULES_INCR") {
            Ok(v) => {
                !matches!(v.trim().to_ascii_lowercase().as_str(), "0" | "false" | "off" | "no")
            }
            Err(_) => true,
        },
    }
}

/// Which composite window a rule is (re)considered against — the paper's
/// default (§4.2) and the two footnote-8 alternatives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RetriggerSemantics {
    /// §4.2 (default): a rule's window restarts when *its own action*
    /// executes; otherwise it extends back to the start of the transaction
    /// (or its last action).
    #[default]
    SinceLastAction,
    /// Footnote 8, first alternative: the window restarts whenever the
    /// rule is *chosen for consideration*, whether or not its action runs.
    SinceLastConsidered,
    /// Footnote 8, second alternative (\[WF89b\]): the window restarts at
    /// the most recent transition that triggers the rule by itself.
    SinceLastTriggering,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Maximum rule-generated transitions per transaction — the run-time
    /// divergence guard of footnote 7. Exceeding it rolls back and raises
    /// [`RuleError::LoopLimitExceeded`].
    pub max_rule_transitions: usize,
    /// Track `select` operations in transition effects (§5.1 extension).
    pub track_selects: bool,
    /// Window semantics for rule reconsideration.
    pub retrigger: RetriggerSemantics,
    /// Rule selection strategy (§4.4).
    pub strategy: SelectionStrategy,
    /// Capacity of the always-on in-memory event ring (most recent N
    /// [`EngineEvent`]s retained; `0` disables retention).
    pub event_capacity: usize,
    /// Expression execution mode: `Compiled` (default) lowers predicates
    /// and projections to slot-addressed form once per statement, with a
    /// per-rule plan cache across firings; `Interpreted` walks the AST
    /// per row (kept for differential testing).
    pub exec_mode: ExecMode,
    /// Deterministic fault plan armed onto the storage layer's
    /// [`FaultInjector`] at construction: the Nth storage operation of the
    /// planned kind fails. For crash-consistency testing; `None` (the
    /// default) injects nothing.
    pub fault: Option<FaultPlan>,
    /// Thread budget for deterministic intra-query parallelism.
    /// `Some(n)` pins it; `None` (the default) defers to the
    /// `SETRULES_THREADS` environment variable and then to
    /// `std::thread::available_parallelism()`. `Some(1)` forces fully
    /// serial execution. Results are bit-identical either way (see
    /// `docs/parallel-execution.md`).
    pub parallelism: Option<usize>,
    /// Durability: `Some(cfg)` logs every transaction (its DML and every
    /// triggered rule-action write) plus all DDL to a write-ahead log,
    /// replaying it on open so a crashed system recovers exactly the
    /// committed image (see `docs/durability.md`). `None` (the default)
    /// keeps the system purely in-memory.
    pub durability: Option<WalConfig>,
    /// Incremental (TREAT-style) rule-condition evaluation: maintain
    /// per-rule materialized condition state and repair it from the
    /// composed `[I, D, U]` delta instead of re-scanning transition
    /// tables at every consideration (see
    /// `docs/incremental-evaluation.md`). `Some(b)` pins it; `None` (the
    /// default) defers to the `SETRULES_INCR` environment variable
    /// (`0`/`false`/`off`/`no` disables) and is otherwise on. Only
    /// effective in `Compiled` mode; results are observably identical
    /// either way.
    pub incremental: Option<bool>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            max_rule_transitions: 10_000,
            track_selects: false,
            retrigger: RetriggerSemantics::default(),
            strategy: SelectionStrategy::default(),
            event_capacity: 1024,
            exec_mode: ExecMode::default(),
            fault: None,
            parallelism: None,
            durability: None,
            incremental: None,
        }
    }
}

/// One rule firing in a transaction's trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiredRule {
    /// The rule that fired.
    pub rule: String,
    /// Tuples its transition inserted (net).
    pub inserted: usize,
    /// Tuples its transition deleted (net).
    pub deleted: usize,
    /// Tuples its transition updated (net).
    pub updated: usize,
}

/// The result of a committed-or-rolled-back transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutcome {
    /// The transaction committed.
    Committed {
        /// Rule firings, in execution order.
        fired: Vec<FiredRule>,
        /// Number of rule-generated transitions.
        transitions: usize,
        /// Output of the last `select` operation in the transaction
        /// (external or rule-generated), if any.
        output: Option<Relation>,
        /// Work counters for the whole transaction.
        stats: TxnStats,
    },
    /// A rule with a `rollback` action fired; the database is back at the
    /// transaction's start state.
    RolledBack {
        /// The rule that requested rollback.
        by_rule: String,
        /// Firings that happened (and were undone) before the rollback.
        fired: Vec<FiredRule>,
        /// Work counters for the whole transaction (including the
        /// rollback replay itself).
        stats: TxnStats,
    },
}

impl TxnOutcome {
    /// Whether the transaction committed.
    pub fn committed(&self) -> bool {
        matches!(self, TxnOutcome::Committed { .. })
    }

    /// The firing trace.
    pub fn fired(&self) -> &[FiredRule] {
        match self {
            TxnOutcome::Committed { fired, .. } | TxnOutcome::RolledBack { fired, .. } => fired,
        }
    }

    /// The transaction's work counters.
    pub fn stats(&self) -> &TxnStats {
        match self {
            TxnOutcome::Committed { stats, .. } | TxnOutcome::RolledBack { stats, .. } => stats,
        }
    }
}

/// Report of a `process rules` triggering point (§5.3).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessReport {
    /// Rules fired during this processing pass.
    pub fired: Vec<FiredRule>,
    /// Set when a `rollback` action fired — the transaction is gone.
    pub rolled_back_by: Option<String>,
    /// Work counters for this processing pass (per-rule timing and
    /// per-phase counts, plus query- and storage-layer work).
    pub stats: TxnStats,
}

/// Outcome of [`RuleSystem::execute`].
#[derive(Debug, Clone, PartialEq)]
pub enum ExecOutcome {
    /// A DDL statement was applied (message describes it).
    Ddl(String),
    /// A DML statement ran as its own transaction.
    Txn(TxnOutcome),
    /// A DML operation ran inside the open transaction (rules not yet
    /// processed).
    OpExecuted {
        /// Tuples affected (rows returned, for `select`).
        affected: usize,
        /// `select` output.
        output: Option<Relation>,
    },
    /// A `process rules` triggering point ran inside the open transaction.
    RulesProcessed(ProcessReport),
}

struct TxnState {
    mark: UndoMark,
    /// Per-rule composite windows (`R.trans-info` of Fig. 1), parallel to
    /// `RuleSystem::rules`.
    rule_infos: Vec<TransInfo>,
    /// External changes since the last rule processing pass.
    pending: TransInfo,
    trace: Vec<FiredRule>,
    transitions_used: usize,
    last_output: Option<Relation>,
    /// Cumulative counters at transaction begin, for outcome deltas.
    base: TxnStats,
    /// Transaction-wide incremental delta log: one projected `[I, D, U]`
    /// effect per transition, appended at the `apply_transition` choke
    /// point. A rule's memo at cursor `seq` repairs from the composition
    /// of `delta_log[seq..]`; that composition is rule-independent, so it
    /// is shared through `compose_cache`.
    delta_log: Vec<TransitionEffect>,
    /// suffix start → composed effect; cleared whenever `delta_log`
    /// grows. A hit means another rule at the same cursor already folded
    /// the suffix this round (`incr_shared_hits`).
    compose_cache: HashMap<usize, Arc<TransitionEffect>>,
    /// Per-rule window generation, parallel to `rule_infos`. Window
    /// restarts (acting rule, `SinceLastTriggering` re-trigger, footnote-8
    /// `SinceLastConsidered` clear) bump it, invalidating that rule's
    /// memo cursors without touching the shared log.
    window_gens: Vec<u64>,
    /// Monotone transaction id (from `RuleSystem::incr_epoch`): cursors
    /// from a previous transaction never validate against this one.
    epoch: u64,
}

/// What [`RuleSystem::try_incremental`] produced for one consideration.
enum IncOutcome {
    /// Authoritative truth value from the memoized term state.
    Answer { truth: bool, mode: &'static str, rows: u64, shared: bool },
    /// Not incrementalizable (static shape fallback or dynamic degrade);
    /// the label keys the `incr_fallback_reasons` breakdown.
    Fallback(&'static str),
}

/// A relational database with a set-oriented production rules facility —
/// the system of Widom & Finkelstein (SIGMOD 1990).
///
/// ```
/// use setrules_core::RuleSystem;
///
/// let mut sys = RuleSystem::new();
/// sys.execute("create table dept (dept_no int, mgr_no int)").unwrap();
/// sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
/// // Example 3.1: cascaded delete.
/// sys.execute(
///     "create rule cascade when deleted from dept \
///      then delete from emp where dept_no in (select dept_no from deleted dept)",
/// ).unwrap();
/// sys.execute("insert into dept values (1, 10)").unwrap();
/// sys.execute("insert into emp values ('Jane', 10, 95000.0, 1)").unwrap();
/// sys.execute("delete from dept where dept_no = 1").unwrap();
/// assert_eq!(sys.query("select count(*) from emp").unwrap().scalar().unwrap().as_i64(), Some(0));
/// ```
pub struct RuleSystem {
    pub(crate) db: Database,
    rules: Vec<Rule>,
    by_name: HashMap<String, RuleId>,
    priorities: PriorityGraph,
    config: EngineConfig,
    txn: Option<TxnState>,
    /// Logical consideration timestamps (for the recency strategies).
    last_considered: Vec<Option<u64>>,
    consider_clock: u64,
    /// Windows accumulated by [`RuleSystem::transaction_without_rules`]
    /// awaiting [`RuleSystem::process_deferred`] (§5.3). On a durable
    /// system every committed change to this window is logged as a
    /// `DeferredWindow` record, so recovery re-presents pending work.
    pub(crate) deferred: TransInfo,
    /// Per-rule compiled-plan caches, keyed by rule id. A cache holds the
    /// rule's condition and action expressions in slot-resolved form;
    /// plans embed catalog-derived positions and AST addresses, so the
    /// whole map is dropped on any DDL.
    rule_plans: HashMap<RuleId, PlanCache>,
    /// Cumulative engine-phase counters and per-rule timing.
    pub(crate) stats: EngineStats,
    /// Cumulative query-execution work (threaded into every executor call).
    qstats: StatsCell,
    /// Incremental condition evaluation, resolved once at open from
    /// `EngineConfig::incremental` / `SETRULES_INCR`.
    incr_enabled: bool,
    /// Monotone transaction counter stamped into each `TxnState::epoch`,
    /// so memo cursors from one transaction never validate in the next.
    incr_epoch: u64,
    /// Event fan-out: the always-on ring plus attached sinks.
    pub(crate) events: EventBus,
    /// Write-ahead-log state; `None` unless configured durable.
    pub(crate) wal: Option<WalState>,
}

impl Default for RuleSystem {
    fn default() -> Self {
        Self::new()
    }
}

impl RuleSystem {
    /// A fresh system with default configuration.
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// A fresh system with explicit configuration.
    ///
    /// Panics if a configured write-ahead log cannot be opened or
    /// replayed; use [`RuleSystem::open`] for the fallible form.
    pub fn with_config(config: EngineConfig) -> Self {
        Self::open(config).expect("failed to open durable rule system (use RuleSystem::open)")
    }

    /// A fresh system with explicit configuration, recovering from the
    /// configured write-ahead log (if any): the log is scanned, a torn
    /// tail discarded, and the committed image — checkpoint plus every
    /// committed transaction and all DDL — replayed before the system is
    /// returned.
    pub fn open(config: EngineConfig) -> Result<Self, RuleError> {
        let events = EventBus::new(config.event_capacity);
        let fault_plan = config.fault;
        let durability = config.durability.clone();
        let incr_enabled = resolve_incremental(config.incremental);
        let mut sys = RuleSystem {
            db: Database::new(),
            rules: Vec::new(),
            by_name: HashMap::new(),
            priorities: PriorityGraph::new(),
            config,
            txn: None,
            last_considered: Vec::new(),
            consider_clock: 0,
            deferred: TransInfo::new(),
            rule_plans: HashMap::new(),
            stats: EngineStats::default(),
            qstats: StatsCell::new(),
            incr_enabled,
            incr_epoch: 0,
            events,
            wal: None,
        };
        if let Some(wal_cfg) = durability {
            sys.recover(wal_cfg)?;
        }
        // Arm the fault plan only after recovery: recovery itself is
        // assumed reliable (like the undo path), and this keeps fault
        // site numbering independent of replayed history.
        if let Some(plan) = fault_plan {
            sys.db.fault_injector_mut().arm(plan.kind, plan.nth);
        }
        Ok(sys)
    }

    /// Read-only access to the database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The storage layer's fault injector (counters and armed plan).
    pub fn fault_injector(&self) -> &FaultInjector {
        self.db.fault_injector()
    }

    /// Mutable access to the fault injector, to arm/disarm plans or reset
    /// site counters between workloads.
    pub fn fault_injector_mut(&mut self) -> &mut FaultInjector {
        self.db.fault_injector_mut()
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Cumulative engine-phase counters and per-rule timing.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Cumulative query-execution work counters.
    pub fn exec_stats(&self) -> ExecStats {
        self.qstats.snapshot()
    }

    /// Cumulative storage-layer work counters.
    pub fn storage_stats(&self) -> StorageStats {
        self.db.stats()
    }

    /// The full cumulative observability bundle (engine + query +
    /// storage). Snapshot two of these and [`TxnStats::since`] them for
    /// a windowed view.
    pub fn full_stats(&self) -> TxnStats {
        TxnStats { engine: self.stats.clone(), exec: self.qstats.snapshot(), storage: self.db.stats() }
    }

    /// The most recent events, oldest first (bounded by
    /// [`EngineConfig::event_capacity`]).
    pub fn recent_events(&self) -> Vec<EngineEvent> {
        self.events.ring.events()
    }

    /// The most recent `(seq, event)` pairs, oldest first.
    pub fn recent_event_entries(&self) -> Vec<(u64, EngineEvent)> {
        self.events.ring.entries().cloned().collect()
    }

    /// Drop the retained events (the sequence counter keeps increasing).
    pub fn clear_events(&mut self) {
        self.events.ring.clear();
    }

    /// Total events emitted over the system's lifetime.
    pub fn events_emitted(&self) -> u64 {
        self.events.seq()
    }

    /// Attach an additional [`EventSink`] receiving every future event.
    pub fn add_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.events.attach(sink);
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Change the selection strategy (allowed any time outside a
    /// transaction).
    pub fn set_strategy(&mut self, strategy: SelectionStrategy) -> Result<(), RuleError> {
        self.require_no_txn()?;
        self.config.strategy = strategy;
        Ok(())
    }

    /// The defined (non-dropped) rules, in creation order.
    pub fn rules(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|r| !r.dropped)
    }

    /// Look up a rule by name.
    pub fn rule(&self, name: &str) -> Option<&Rule> {
        self.by_name.get(name).map(|id| &self.rules[id.0])
    }

    /// The priority partial order (§4.4).
    pub fn priorities(&self) -> &PriorityGraph {
        &self.priorities
    }

    /// The declared priority pairs, as (higher, lower) names.
    pub fn priority_pairs(&self) -> Vec<(String, String)> {
        self.priorities
            .pairs()
            .map(|(h, l)| (self.rules[h.0].name.clone(), self.rules[l.0].name.clone()))
            .collect()
    }

    // ------------------------------------------------------------------
    // Statement interface
    // ------------------------------------------------------------------

    /// Execute one statement: DDL takes effect immediately (not inside a
    /// transaction); DML outside a transaction runs as a complete
    /// transaction (operation block + rule processing + commit); DML
    /// inside an open transaction just runs the operation.
    pub fn execute(&mut self, sql: &str) -> Result<ExecOutcome, RuleError> {
        let stmt = parse_statement(sql)?;
        self.execute_stmt(stmt)
    }

    /// Execute a `;`-separated script, stopping at the first error.
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<ExecOutcome>, RuleError> {
        let stmts = parse_statements(sql)?;
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            out.push(self.execute_stmt(s)?);
        }
        Ok(out)
    }

    fn execute_stmt(&mut self, stmt: Statement) -> Result<ExecOutcome, RuleError> {
        // Canonical SQL for the table/index DDL arms (rule DDL is logged
        // inside the rule-administration methods, which are public API
        // and reachable without a statement).
        let ddl_sql = match &stmt {
            Statement::CreateTable(_)
            | Statement::DropTable(_)
            | Statement::CreateIndex { .. }
            | Statement::DropIndex { .. } => Some(stmt.to_string()),
            _ => None,
        };
        match stmt {
            Statement::CreateTable(ct) => {
                self.require_no_txn()?;
                // Pre-check the only failure mode so the log record can
                // precede an infallible apply: a logged statement that
                // then failed (or an applied one that wasn't logged)
                // would make replay diverge — and reverting a created
                // table would burn its `TableId` slot.
                if self.db.table_id(&ct.name).is_ok() {
                    return Err(StorageError::TableExists(ct.name).into());
                }
                self.wal_ddl(WalRecord::TableDdl { sql: ddl_sql.expect("captured above") })?;
                let cols = ct
                    .columns
                    .into_iter()
                    .map(|(n, ty)| setrules_storage::ColumnDef::new(n, ty))
                    .collect();
                self.db.create_table(TableSchema::new(ct.name.clone(), cols))?;
                self.invalidate_plans();
                Ok(ExecOutcome::Ddl(format!("table '{}' created", ct.name)))
            }
            Statement::DropTable(name) => {
                self.require_no_txn()?;
                let tid = self.db.table_id(&name)?;
                if let Some(r) = self.rules.iter().find(|r| r.referenced_tables.contains(&tid)) {
                    return Err(RuleError::TableReferencedByRules {
                        table: name,
                        rule: r.name.clone(),
                    });
                }
                // All failure modes checked: log, then apply.
                self.wal_ddl(WalRecord::TableDdl { sql: ddl_sql.expect("captured above") })?;
                self.db.drop_table(&name)?;
                self.invalidate_plans();
                Ok(ExecOutcome::Ddl(format!("table '{name}' dropped")))
            }
            Statement::CreateIndex { table, column, kind } => {
                self.require_no_txn()?;
                let tid = self.db.table_id(&table)?;
                let c = self.db.schema(tid).column_id(&column)?;
                // The index build itself can fault (`IndexMaintenance`),
                // so apply first and revert cleanly if the log record
                // cannot be written.
                self.db.create_index_of(tid, c, kind)?;
                if let Err(e) = self.wal_ddl(WalRecord::IndexDdl { sql: ddl_sql.expect("captured above") }) {
                    self.db.drop_index(tid, c);
                    return Err(e);
                }
                self.invalidate_plans();
                Ok(ExecOutcome::Ddl(format!("{kind} index on '{table}.{column}' created")))
            }
            Statement::DropIndex { table, column } => {
                self.require_no_txn()?;
                let tid = self.db.table_id(&table)?;
                let c = self.db.schema(tid).column_id(&column)?;
                self.wal_ddl(WalRecord::IndexDdl { sql: ddl_sql.expect("captured above") })?;
                self.db.drop_index(tid, c);
                self.invalidate_plans();
                Ok(ExecOutcome::Ddl(format!("index on '{table}.{column}' dropped")))
            }
            Statement::CreateRule(def) => {
                self.create_rule(&def)?;
                Ok(ExecOutcome::Ddl(format!("rule '{}' created", def.name)))
            }
            Statement::DropRule(name) => {
                self.drop_rule(&name)?;
                Ok(ExecOutcome::Ddl(format!("rule '{name}' dropped")))
            }
            Statement::ActivateRule(name) => {
                self.set_rule_active(&name, true)?;
                Ok(ExecOutcome::Ddl(format!("rule '{name}' activated")))
            }
            Statement::DeactivateRule(name) => {
                self.set_rule_active(&name, false)?;
                Ok(ExecOutcome::Ddl(format!("rule '{name}' deactivated")))
            }
            Statement::CreatePriority { higher, lower } => {
                self.add_priority(&higher, &lower)?;
                Ok(ExecOutcome::Ddl(format!("priority '{higher}' before '{lower}'")))
            }
            Statement::ProcessRules => {
                let report = self.process_rules()?;
                Ok(ExecOutcome::RulesProcessed(report))
            }
            Statement::Dml(op) => {
                if self.txn.is_some() {
                    let (affected, output) = self.run_op_in_txn(&op)?;
                    Ok(ExecOutcome::OpExecuted { affected, output })
                } else {
                    Ok(ExecOutcome::Txn(self.transaction_ops(&[op])?))
                }
            }
        }
    }

    /// Describe the access path for each `from` item of a select — how
    /// the planner would execute it (seq scan vs index probe).
    pub fn explain(&self, sql: &str) -> Result<String, RuleError> {
        let stmt = parse_statement(sql)?;
        let Statement::Dml(DmlOp::Select(sel)) = stmt else {
            return Err(RuleError::Unsupported("explain() accepts only select statements".into()));
        };
        let ctx = setrules_query::QueryCtx::plain(&self.db);
        Ok(setrules_query::explain_select(ctx, &sel))
    }

    /// Run a read-only query (no rule processing, no effect tracking;
    /// allowed inside or outside transactions).
    pub fn query(&self, sql: &str) -> Result<Relation, RuleError> {
        let stmt = parse_statement(sql)?;
        let Statement::Dml(DmlOp::Select(sel)) = stmt else {
            return Err(RuleError::Unsupported("query() accepts only select statements".into()));
        };
        Ok(execute_query_ext(
            &self.db,
            &NoTransitionTables,
            &sel,
            &ExecOpts {
                stats: Some(&self.qstats),
                mode: self.config.exec_mode,
                plans: None,
                threads: self.threads(),
                op_stats: None,
            },
        )?)
    }

    /// The resolved thread budget for query execution: the config's
    /// `parallelism` if pinned, else the `SETRULES_THREADS` environment
    /// variable, else `std::thread::available_parallelism()`.
    fn threads(&self) -> usize {
        setrules_exec::resolve_threads(self.config.parallelism)
    }

    /// Emit a [`EngineEvent::ParallelScan`] (and mirror the engine-level
    /// counters) if query execution since `before` used the pool.
    fn note_parallelism(&mut self, before: &setrules_query::ExecStats) {
        let d = self.qstats.snapshot().since(before);
        self.stats.parallel_scans += d.parallel_scans;
        self.stats.parallel_partitions += d.parallel_partitions;
        self.stats.serial_fallbacks += d.serial_fallbacks;
        if d.parallel_scans > 0 {
            self.events.emit(EngineEvent::ParallelScan {
                partitions: d.parallel_partitions,
                rows: d.rows_scanned,
            });
        }
    }

    // ------------------------------------------------------------------
    // Rule administration
    // ------------------------------------------------------------------

    /// Drop every cached compiled plan. Called on any DDL: plans embed
    /// slot positions derived from the catalog and are keyed by AST
    /// addresses inside the `rules` vector, both of which DDL may move.
    fn invalidate_plans(&mut self) {
        self.rule_plans.clear();
    }

    /// Define a rule from its parsed form.
    pub fn create_rule(&mut self, def: &CreateRule) -> Result<RuleId, RuleError> {
        self.require_no_txn()?;
        if self.by_name.contains_key(&def.name) {
            return Err(RuleError::DuplicateRule(def.name.clone()));
        }
        let id = RuleId(self.rules.len());
        let rule = Rule::compile(&self.db, id, def)?;
        // Compiled (all failure modes checked): log, then install.
        self.wal_ddl(WalRecord::RuleDdl {
            sql: Statement::CreateRule(def.clone()).to_string(),
        })?;
        self.by_name.insert(def.name.clone(), id);
        self.rules.push(rule);
        self.last_considered.push(None);
        self.invalidate_plans();
        Ok(id)
    }

    /// Define a rule from SQL text (`create rule ...`).
    pub fn create_rule_str(&mut self, sql: &str) -> Result<RuleId, RuleError> {
        match parse_statement(sql)? {
            Statement::CreateRule(def) => self.create_rule(&def),
            _ => Err(RuleError::Unsupported("expected a 'create rule' statement".into())),
        }
    }

    /// Define a rule whose action is an external procedure (§5.2). `when`
    /// is a transition-predicate list (e.g. `"inserted into emp or updated
    /// emp.salary"`); `condition` is an optional SQL predicate.
    pub fn create_rule_external(
        &mut self,
        name: &str,
        when: &str,
        condition: Option<&str>,
        action: std::sync::Arc<dyn ExternalAction>,
    ) -> Result<RuleId, RuleError> {
        self.require_no_txn()?;
        if self.wal.is_some() {
            return Err(RuleError::Unsupported(
                "external-action rules are native code and cannot be logged to the \
                 write-ahead log; use a non-durable system"
                    .into(),
            ));
        }
        if self.by_name.contains_key(name) {
            return Err(RuleError::DuplicateRule(name.to_string()));
        }
        let when = setrules_sql::parse_trans_pred(when)?;
        let condition = condition.map(setrules_sql::parse_expr).transpose()?;
        let def = CreateRule {
            name: name.to_string(),
            when,
            condition,
            // Compile with a placeholder action; swapped below.
            action: setrules_sql::ast::RuleAction::Rollback,
        };
        let id = RuleId(self.rules.len());
        let mut rule = Rule::compile(&self.db, id, &def)?;
        rule.action = CompiledAction::External(action);
        self.by_name.insert(name.to_string(), id);
        self.rules.push(rule);
        self.last_considered.push(None);
        self.invalidate_plans();
        Ok(id)
    }

    /// Drop a rule by name. Its priority edges are removed; its `RuleId`
    /// is retired (ids are creation indexes and are not reused).
    pub fn drop_rule(&mut self, name: &str) -> Result<(), RuleError> {
        self.require_no_txn()?;
        let id = *self.by_name.get(name).ok_or_else(|| RuleError::NoSuchRule(name.into()))?;
        self.wal_ddl(WalRecord::RuleDdl {
            sql: Statement::DropRule(name.to_string()).to_string(),
        })?;
        self.by_name.remove(name);
        // Keep the slot (ids are indexes) but make it inert and invisible.
        let rule = &mut self.rules[id.0];
        rule.active = false;
        rule.dropped = true;
        rule.when.clear();
        rule.referenced_tables.clear();
        rule.licensed.clear();
        self.priorities.remove_rule(id);
        self.invalidate_plans();
        Ok(())
    }

    /// Activate or deactivate a rule.
    pub fn set_rule_active(&mut self, name: &str, active: bool) -> Result<(), RuleError> {
        self.require_no_txn()?;
        let id = *self.by_name.get(name).ok_or_else(|| RuleError::NoSuchRule(name.into()))?;
        let stmt = if active {
            Statement::ActivateRule(name.to_string())
        } else {
            Statement::DeactivateRule(name.to_string())
        };
        self.wal_ddl(WalRecord::RuleDdl { sql: stmt.to_string() })?;
        self.rules[id.0].active = active;
        Ok(())
    }

    /// Declare `higher` before `lower` (§4.4). Rejects cycles.
    pub fn add_priority(&mut self, higher: &str, lower: &str) -> Result<(), RuleError> {
        self.require_no_txn()?;
        let h = *self.by_name.get(higher).ok_or_else(|| RuleError::NoSuchRule(higher.into()))?;
        let l = *self.by_name.get(lower).ok_or_else(|| RuleError::NoSuchRule(lower.into()))?;
        // Cycle-test on a scratch copy so the log record precedes an
        // infallible apply.
        let mut probe = self.priorities.clone();
        if !probe.add(h, l) {
            return Err(RuleError::PriorityCycle { higher: higher.into(), lower: lower.into() });
        }
        self.wal_ddl(WalRecord::RuleDdl {
            sql: Statement::CreatePriority { higher: higher.to_string(), lower: lower.to_string() }
                .to_string(),
        })?;
        self.priorities = probe;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transactions
    // ------------------------------------------------------------------

    /// Run a `;`-separated operation block as one complete transaction.
    pub fn transaction(&mut self, sql: &str) -> Result<TxnOutcome, RuleError> {
        let ops = parse_op_block(sql)?;
        self.transaction_ops(&ops)
    }

    /// Run parsed operations as one complete transaction.
    pub fn transaction_ops(&mut self, ops: &[DmlOp]) -> Result<TxnOutcome, RuleError> {
        self.begin()?;
        for op in ops {
            // On error, run_op_in_txn has already aborted the transaction.
            self.run_op_in_txn(op)?;
        }
        self.commit()
    }

    /// Open a transaction explicitly (§5.3 usage: interleave operations and
    /// `process rules` triggering points, then [`RuleSystem::commit`]).
    pub fn begin(&mut self) -> Result<(), RuleError> {
        self.require_no_txn()?;
        self.events.emit(EngineEvent::TxnBegin);
        self.incr_epoch += 1;
        self.txn = Some(TxnState {
            mark: self.db.mark(),
            rule_infos: vec![TransInfo::new(); self.rules.len()],
            pending: TransInfo::new(),
            trace: Vec::new(),
            transitions_used: 0,
            last_output: None,
            base: self.full_stats(),
            delta_log: Vec::new(),
            compose_cache: HashMap::new(),
            window_gens: vec![0; self.rules.len()],
            epoch: self.incr_epoch,
        });
        if let Err(e) = self.wal_begin() {
            self.note_statement_failure(&e);
            self.abort_internal();
            return Err(e);
        }
        Ok(())
    }

    /// Whether a transaction is open.
    pub fn in_transaction(&self) -> bool {
        self.txn.is_some()
    }

    /// Execute one operation inside the open transaction (no rule
    /// processing). Any error aborts and rolls back the transaction.
    pub fn run_op(&mut self, sql: &str) -> Result<Option<Relation>, RuleError> {
        let ops = match parse_op_block(sql) {
            Ok(ops) => ops,
            Err(e) => {
                // A parse error does not abort: nothing was executed.
                return Err(e.into());
            }
        };
        let mut last = None;
        for op in &ops {
            let (_, out) = self.run_op_in_txn(op)?;
            if out.is_some() {
                last = out;
            }
        }
        Ok(last)
    }

    fn run_op_in_txn(&mut self, op: &DmlOp) -> Result<(usize, Option<Relation>), RuleError> {
        if self.txn.is_none() {
            return Err(RuleError::NoOpenTransaction);
        }
        let before = self.qstats.snapshot();
        let threads = self.threads();
        let result = execute_op_ext(
            &mut self.db,
            &NoTransitionTables,
            op,
            &ExecOpts {
                stats: Some(&self.qstats),
                mode: self.config.exec_mode,
                plans: None,
                threads,
                op_stats: None,
            },
        );
        self.note_parallelism(&before);
        match result {
            Ok(eff) => {
                let txn = self.txn.as_mut().expect("checked above");
                let affected = eff.cardinality();
                let output = match &eff {
                    OpEffect::Select { output, .. } => {
                        txn.last_output = Some(output.clone());
                        Some(output.clone())
                    }
                    _ => None,
                };
                txn.pending.absorb(&eff, self.config.track_selects);
                if let Err(e) =
                    wal_log_effect(&mut self.db, &mut self.wal, &mut self.stats, &mut self.events, &eff)
                {
                    self.note_statement_failure(&e);
                    self.abort_internal();
                    return Err(e);
                }
                Ok((affected, output))
            }
            Err(e) => {
                let e: RuleError = e.into();
                self.note_statement_failure(&e);
                self.abort_internal();
                Err(e)
            }
        }
    }

    /// Abandon the open transaction, restoring the start state.
    pub fn rollback(&mut self) -> Result<(), RuleError> {
        if self.txn.is_none() {
            return Err(RuleError::NoOpenTransaction);
        }
        self.abort_internal();
        Ok(())
    }

    fn abort_internal(&mut self) {
        if let Some(txn) = self.txn.take() {
            self.db.rollback_to(txn.mark).expect("txn mark is valid");
            self.wal_graceful_abort();
            self.stats.txns_rolled_back += 1;
            self.events.emit(EngineEvent::Rollback { by_rule: None });
        }
    }

    /// Record a failed DML statement: the query layer has already undone
    /// its partial effects to the statement savepoint, so emit
    /// [`EngineEvent::StatementRollback`] (plus [`EngineEvent::Fault`]
    /// when the cause was an armed fault plan) before the transaction
    /// itself rolls back.
    fn note_statement_failure(&mut self, e: &RuleError) {
        let storage_err = match e {
            RuleError::Storage(se) => Some(se),
            RuleError::Query(QueryError::Storage(se)) => Some(se),
            _ => None,
        };
        if let Some(StorageError::FaultInjected { kind, op }) = storage_err {
            self.stats.faults_injected += 1;
            self.events.emit(EngineEvent::Fault { kind: kind.name().to_string(), n: *op });
        }
        self.stats.stmt_rollbacks += 1;
        self.events.emit(EngineEvent::StatementRollback);
    }

    /// A rule triggering point (§5.3): process rules now, mid-transaction.
    /// "The externally-generated transition is considered complete, rules
    /// are processed, and a new transition begins."
    pub fn process_rules(&mut self) -> Result<ProcessReport, RuleError> {
        if self.txn.is_none() {
            return Err(RuleError::NoOpenTransaction);
        }
        let base = self.full_stats();
        let fired_before = self.txn.as_ref().expect("checked").trace.len();
        let rolled_back_by = self.run_rule_processing()?;
        match rolled_back_by {
            Some(name) => {
                let txn = self.txn.take().expect("still open on rollback path");
                self.db.rollback_to(txn.mark).expect("txn mark is valid");
                self.wal_graceful_abort();
                self.stats.txns_rolled_back += 1;
                self.events.emit(EngineEvent::Rollback { by_rule: Some(name.clone()) });
                Ok(ProcessReport {
                    fired: txn.trace[fired_before..].to_vec(),
                    rolled_back_by: Some(name),
                    stats: self.full_stats().since(&base),
                })
            }
            None => {
                let stats = self.full_stats().since(&base);
                let txn = self.txn.as_ref().expect("still open");
                Ok(ProcessReport {
                    fired: txn.trace[fired_before..].to_vec(),
                    rolled_back_by: None,
                    stats,
                })
            }
        }
    }

    /// Process rules (unless already done for all changes) and commit the
    /// open transaction.
    pub fn commit(&mut self) -> Result<TxnOutcome, RuleError> {
        if self.txn.is_none() {
            return Err(RuleError::NoOpenTransaction);
        }
        let rolled_back_by = self.run_rule_processing()?;
        let txn = self.txn.take().expect("open unless an error aborted");
        match rolled_back_by {
            Some(by_rule) => {
                self.db.rollback_to(txn.mark).expect("txn mark is valid");
                self.wal_graceful_abort();
                self.stats.txns_rolled_back += 1;
                self.events.emit(EngineEvent::Rollback { by_rule: Some(by_rule.clone()) });
                let stats = self.full_stats().since(&txn.base);
                Ok(TxnOutcome::RolledBack { by_rule, fired: txn.trace, stats })
            }
            None => {
                // Durability first: the transaction's records — including
                // every rule-action write above — reach the sink and the
                // fsync boundary before the in-memory commit.
                if let Err(e) = self.wal_commit() {
                    self.note_statement_failure(&e);
                    self.db.rollback_to(txn.mark).expect("txn mark is valid");
                    self.wal_graceful_abort();
                    self.stats.txns_rolled_back += 1;
                    self.events.emit(EngineEvent::Rollback { by_rule: None });
                    return Err(e);
                }
                self.db.commit();
                self.stats.txns_committed += 1;
                self.events.emit(EngineEvent::TxnCommit {
                    fired: txn.trace.len(),
                    transitions: txn.transitions_used,
                });
                let stats = self.full_stats().since(&txn.base);
                self.maybe_checkpoint();
                Ok(TxnOutcome::Committed {
                    fired: txn.trace,
                    transitions: txn.transitions_used,
                    output: txn.last_output,
                    stats,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // Deferred rule processing across transactions (§5.3)
    // ------------------------------------------------------------------

    /// Execute and commit an operation block *without* processing rules;
    /// its changes accumulate for a later [`RuleSystem::process_deferred`]
    /// (§5.3: "it might be advantageous to execute several
    /// externally-generated transactions before considering triggered
    /// rules").
    pub fn transaction_without_rules(&mut self, sql: &str) -> Result<(), RuleError> {
        self.require_no_txn()?;
        let ops = parse_op_block(sql)?;
        let mark = self.db.mark();
        self.events.emit(EngineEvent::TxnBegin);
        if let Err(e) = self.wal_begin() {
            self.fail_flat_txn(mark, &e);
            return Err(e);
        }
        let mut window = TransInfo::new();
        let threads = self.threads();
        for op in &ops {
            let before = self.qstats.snapshot();
            let result = execute_op_ext(
                &mut self.db,
                &NoTransitionTables,
                op,
                &ExecOpts {
                    stats: Some(&self.qstats),
                    mode: self.config.exec_mode,
                    plans: None,
                    threads,
                    op_stats: None,
                },
            );
            self.note_parallelism(&before);
            match result {
                Ok(eff) => {
                    window.absorb(&eff, self.config.track_selects);
                    if let Err(e) = wal_log_effect(
                        &mut self.db,
                        &mut self.wal,
                        &mut self.stats,
                        &mut self.events,
                        &eff,
                    ) {
                        self.fail_flat_txn(mark, &e);
                        return Err(e);
                    }
                }
                Err(e) => {
                    let e: RuleError = e.into();
                    self.fail_flat_txn(mark, &e);
                    return Err(e);
                }
            }
        }
        // The pending window this commit leaves behind must be durable
        // too: log the *composed* window (everything still awaiting
        // `process_deferred` after this transaction) inside the same
        // commit unit, so a crash between this transaction and the
        // deferred pass re-presents the work on recovery.
        let mut combined = self.deferred.clone();
        combined.compose(&window);
        if !combined.is_empty() || !self.deferred.is_empty() {
            if let Err(e) = self.wal_log_deferred(&combined) {
                self.fail_flat_txn(mark, &e);
                return Err(e);
            }
        }
        if let Err(e) = self.wal_commit() {
            self.fail_flat_txn(mark, &e);
            return Err(e);
        }
        self.db.commit();
        self.stats.txns_committed += 1;
        self.events.emit(EngineEvent::TxnCommit { fired: 0, transitions: 0 });
        self.deferred = combined;
        self.maybe_checkpoint();
        Ok(())
    }

    /// Shared failure path for [`RuleSystem::transaction_without_rules`]
    /// (which has no `TxnState` to abort through): record the failed
    /// statement, undo to the transaction's mark, and roll the log back.
    fn fail_flat_txn(&mut self, mark: UndoMark, e: &RuleError) {
        self.note_statement_failure(e);
        self.db.rollback_to(mark).expect("mark valid");
        self.wal_graceful_abort();
        self.stats.txns_rolled_back += 1;
        self.events.emit(EngineEvent::Rollback { by_rule: None });
    }

    /// Process rules against everything accumulated by
    /// [`RuleSystem::transaction_without_rules`]. Rule actions run in a
    /// fresh transaction; a `rollback` action undoes *the rule actions
    /// only* (the deferred external transactions already committed).
    pub fn process_deferred(&mut self) -> Result<TxnOutcome, RuleError> {
        self.require_no_txn()?;
        self.events.emit(EngineEvent::TxnBegin);
        self.incr_epoch += 1;
        self.txn = Some(TxnState {
            mark: self.db.mark(),
            rule_infos: vec![TransInfo::new(); self.rules.len()],
            pending: TransInfo::new(),
            trace: Vec::new(),
            transitions_used: 0,
            last_output: None,
            base: self.full_stats(),
            delta_log: Vec::new(),
            compose_cache: HashMap::new(),
            window_gens: vec![0; self.rules.len()],
            epoch: self.incr_epoch,
        });
        if let Err(e) = self.wal_begin() {
            self.note_statement_failure(&e);
            self.abort_internal();
            return Err(e);
        }
        // A committed deferred pass leaves no pending window behind: log
        // the cleared window inside this transaction, so a crash before
        // its `Commit` keeps re-presenting the old one on recovery.
        if !self.deferred.is_empty() {
            if let Err(e) = self.wal_log_deferred(&TransInfo::new()) {
                self.note_statement_failure(&e);
                self.abort_internal();
                return Err(e);
            }
        }
        // Move the deferred window in only after the `Begin` is logged: a
        // failed begin must not silently drop the pending transitions.
        let pending = std::mem::take(&mut self.deferred);
        self.txn.as_mut().expect("just opened").pending = pending;
        self.commit()
    }

    /// Changes awaiting deferred processing.
    pub fn deferred_window(&self) -> &TransInfo {
        &self.deferred
    }

    /// Discard any changes awaiting deferred processing (used after bulk
    /// loads that should not count as a pending transition).
    ///
    /// On a durable system the clear is logged best-effort: if the log
    /// write fails, recovery re-presents the old window — the
    /// conservative direction (pending work reappears rather than
    /// silently vanishing).
    pub fn clear_deferred(&mut self) {
        if !self.deferred.is_empty() {
            let _ = self.wal_clear_deferred();
        }
        self.deferred = TransInfo::new();
    }

    /// The composite window of the named rule in the open transaction —
    /// a debugging aid; `None` when no transaction is open or the rule
    /// does not exist.
    pub fn current_window(&self, rule: &str) -> Option<&TransInfo> {
        let txn = self.txn.as_ref()?;
        let id = self.by_name.get(rule)?;
        txn.rule_infos.get(id.0)
    }

    /// Whether a name-level transition reference falls inside `rule`'s
    /// licence set (§3's reference restriction, resolved to catalog ids).
    fn rule_licenses(
        &self,
        rule: &Rule,
        kind: TransitionKind,
        table: &str,
        column: Option<&str>,
    ) -> bool {
        let Ok(tid) = self.db.table_id(table) else { return false };
        let col = match column {
            Some(c) => match self.db.schema(tid).column_id(c) {
                Ok(c) => Some(c),
                Err(_) => return false,
            },
            None => None,
        };
        rule.licensed.contains(&(kind, tid, col))
    }

    /// Whether incremental condition evaluation is enabled for this
    /// system (the `EngineConfig::incremental` / `SETRULES_INCR` knob;
    /// it only takes effect in compiled mode).
    pub fn incremental_enabled(&self) -> bool {
        self.incr_enabled && self.config.exec_mode == ExecMode::Compiled
    }

    /// Per-rule incremental-evaluation status: for each live rule, either
    /// the materialized term state the engine maintains for its condition
    /// (with memo-size accounting) or the reason it falls back to full
    /// re-scan, plus the cumulative fallback breakdown by reason. A
    /// debugging aid (the REPL's `\incr`); prefers the verdict the engine
    /// cached at first consideration and runs the same analysis otherwise.
    pub fn incremental_report(&self) -> String {
        use std::fmt::Write as _;
        let mut out = format!(
            "incremental evaluation: {}\n",
            if self.incremental_enabled() { "on" } else { "off" }
        );
        for rule in self.rules.iter().filter(|r| !r.dropped) {
            let Some(cond) = &rule.condition else {
                let _ = writeln!(out, "{}: no condition (always fires)", rule.name);
                continue;
            };
            // Prefer the engine's cached verdict + live memo; fall back
            // to a fresh analysis for rules not yet considered.
            let cached = self.rule_plans.get(&rule.id).and_then(|cache| {
                let state = cache.incr_state();
                state.as_ref().map(|st| {
                    let desc = match &st.plan {
                        Ok(plan) => format!(
                            "incremental ({} term{})\n{}",
                            plan.terms.len(),
                            if plan.terms.len() == 1 { "" } else { "s" },
                            plan.describe(),
                        ),
                        Err(reason) => {
                            format!("full re-scan [{}] ({reason})\n", reason.label())
                        }
                    };
                    let memo = st
                        .memo
                        .as_ref()
                        .map(|m| (m.entries(), m.approx_bytes()));
                    (desc, memo)
                })
            });
            let (desc, memo) = match cached {
                Some(v) => v,
                None => {
                    let licensed = |kind: TransitionKind, table: &str, column: Option<&str>| {
                        self.rule_licenses(rule, kind, table, column)
                    };
                    (setrules_query::explain_condition(&self.db, cond, &licensed), None)
                }
            };
            let _ = write!(out, "{}: {}", rule.name, desc);
            if let Some((entries, bytes)) = memo {
                let _ = writeln!(out, "  memo: {entries} entries (~{bytes} bytes)");
            }
        }
        if !self.stats.incr_fallback_reasons.is_empty() {
            let _ = writeln!(out, "fallbacks by reason:");
            for (label, n) in &self.stats.incr_fallback_reasons {
                let _ = writeln!(out, "  {label}: {n}");
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // The Figure 1 loop
    // ------------------------------------------------------------------

    /// Process rules until quiescence. Returns `Ok(Some(rule))` if a
    /// rollback action fired (caller rolls back), `Ok(None)` on normal
    /// completion. Errors abort and roll back before returning.
    fn run_rule_processing(&mut self) -> Result<Option<String>, RuleError> {
        self.flush_pending();
        // Rules whose condition was already evaluated (false) against the
        // current windows; cleared whenever a new transition occurs (§4.2:
        // "rules are chosen … until one is found with a condition that
        // holds or until there are none left").
        let mut considered: BTreeSet<RuleId> = BTreeSet::new();
        // Rules considered at least once in this pass, for re-trigger
        // detection (a second consideration means later transitions
        // re-triggered the rule, §4.2).
        let mut ever_considered: BTreeSet<RuleId> = BTreeSet::new();
        // Trigger verdicts only move when windows do; memoize them across
        // loop iterations (most iterations consider without firing).
        let mut triggers = TriggerMemo::new(self.rules.len());
        loop {
            let candidates: Vec<RuleId> = {
                let txn = self.txn.as_ref().expect("transaction open");
                self.rules
                    .iter()
                    .filter(|r| {
                        !considered.contains(&r.id)
                            && triggers.check(r.id, || {
                                r.triggered_by(&self.db, &txn.rule_infos[r.id.0])
                            })
                    })
                    .map(|r| r.id)
                    .collect()
            };
            let Some(rid) =
                select_rule(self.config.strategy, &self.priorities, &candidates, &self.last_considered)
            else {
                return Ok(None);
            };
            considered.insert(rid);
            self.consider_clock += 1;
            self.last_considered[rid.0] = Some(self.consider_clock);

            let name = self.rules[rid.0].name.clone();
            if !ever_considered.insert(rid) {
                self.stats.rules_retriggered += 1;
                self.stats.rule_mut(&name).retriggered += 1;
                self.events.emit(EngineEvent::RuleRetriggered { rule: name.clone() });
            }
            self.stats.rules_considered += 1;
            self.stats.rule_mut(&name).considered += 1;
            self.events.emit(EngineEvent::RuleConsidered { rule: name.clone() });

            // Plan-cache bookkeeping: a rule considered before (since the
            // last DDL) reuses its compiled condition and action plans; a
            // first consideration creates the cache they compile into.
            if self.config.exec_mode == ExecMode::Compiled {
                let hit = self.rule_plans.contains_key(&rid);
                self.rule_plans.entry(rid).or_default();
                if hit {
                    self.stats.plan_cache_hits += 1;
                } else {
                    self.stats.plan_cache_misses += 1;
                }
                self.events.emit(EngineEvent::PlanCache { rule: name.clone(), hit });
            }

            // Evaluate the condition against the rule's own window.
            let cond_start = Instant::now();
            let cond = self.evaluate_condition(rid, &name);
            self.stats.rule_mut(&name).condition_nanos +=
                cond_start.elapsed().as_nanos() as u64;
            let cond_holds = match cond {
                Ok(b) => b,
                Err(e) => {
                    self.abort_internal();
                    return Err(e);
                }
            };
            if !cond_holds {
                self.stats.conditions_false += 1;
                self.stats.rule_mut(&name).condition_false += 1;
                self.events.emit(EngineEvent::RuleConditionFalse { rule: name.clone() });
                if self.config.retrigger == RetriggerSemantics::SinceLastConsidered {
                    // Footnote 8: the window restarts at consideration —
                    // the memo (built against the old window) is stale, so
                    // bump the window generation to invalidate its cursors.
                    // The shared delta log is untouched: other rules'
                    // windows are unbroken and still repair from it.
                    let txn = self.txn.as_mut().expect("open");
                    txn.rule_infos[rid.0] = TransInfo::new();
                    txn.window_gens[rid.0] += 1;
                    triggers.invalidate(rid);
                }
                continue;
            }

            match self.rules[rid.0].action.clone() {
                CompiledAction::Rollback => {
                    return Ok(Some(name));
                }
                action => {
                    {
                        let txn = self.txn.as_mut().expect("open");
                        txn.transitions_used += 1;
                        if txn.transitions_used > self.config.max_rule_transitions {
                            let limit = self.config.max_rule_transitions;
                            self.stats.loop_aborts += 1;
                            self.events.emit(EngineEvent::LoopSafeguardAbort { limit });
                            self.abort_internal();
                            return Err(RuleError::LoopLimitExceeded { limit });
                        }
                    }
                    let action_start = Instant::now();
                    let tinfo = match self.execute_rule_action(rid, &action) {
                        Ok(t) => t,
                        Err(e) => {
                            // §4: an aborted rule action aborts the whole
                            // transaction — partial statement effects were
                            // already undone at the statement boundary.
                            self.note_statement_failure(&e);
                            self.abort_internal();
                            return Err(e);
                        }
                    };
                    self.stats.rule_mut(&name).action_nanos +=
                        action_start.elapsed().as_nanos() as u64;
                    self.stats.rules_executed += 1;
                    self.stats.rule_mut(&name).executed += 1;
                    self.events.emit(EngineEvent::RuleExecuted {
                        rule: name.clone(),
                        inserted: tinfo.ins.len(),
                        deleted: tinfo.del.len(),
                        updated: tinfo.upd.len(),
                    });
                    let fired = FiredRule {
                        rule: name,
                        inserted: tinfo.ins.len(),
                        deleted: tinfo.del.len(),
                        updated: tinfo.upd.len(),
                    };
                    self.txn.as_mut().expect("open").trace.push(fired);
                    self.apply_transition(&tinfo, Some(rid));
                    considered.clear();
                    triggers.invalidate_all();
                }
            }
        }
    }

    /// Compose the pending external window into every rule's window.
    fn flush_pending(&mut self) {
        let pending = {
            let txn = self.txn.as_mut().expect("transaction open");
            if txn.pending.is_empty() {
                return;
            }
            std::mem::take(&mut txn.pending)
        };
        self.stats.external_blocks += 1;
        self.events.emit(EngineEvent::ExternalBlockAbsorbed {
            inserted: pending.ins.len(),
            deleted: pending.del.len(),
            updated: pending.upd.len(),
            selected: pending.sel.len(),
        });
        self.apply_transition(&pending, None);
    }

    /// Merge a new transition into the per-rule windows (§4.2): the acting
    /// rule's window becomes exactly this transition; every other rule's
    /// window is the composition.
    fn apply_transition(&mut self, tinfo: &TransInfo, acting: Option<RuleId>) {
        let retrigger = self.config.retrigger;
        // Append this transition's pure `[I, D, U]` effect to the shared
        // delta log exactly once; every live memo cursor repairs from the
        // composed suffix at its own position. Rules whose window restarts
        // below get their generation bumped instead (stale cursors ⇒ next
        // consideration rebuilds from the fresh window).
        if self.incremental_enabled() {
            let eff = tinfo.effect(|t| self.db.schema(t).arity());
            let txn = self.txn.as_mut().expect("transaction open");
            txn.delta_log.push(eff);
            txn.compose_cache.clear();
        }
        let txn = self.txn.as_mut().expect("transaction open");
        for rule in &self.rules {
            // Fig. 1 emits trans-info maintenance only for rules this
            // transition triggers by itself (plus the acting rule, whose
            // window always restarts).
            let triggered_by_this = !rule.dropped && rule.triggered_by(&self.db, tinfo);
            let slot = &mut txn.rule_infos[rule.id.0];
            if Some(rule.id) == acting {
                *slot = tinfo.clone();
                txn.window_gens[rule.id.0] += 1;
                self.events.emit(EngineEvent::TransInfoInit { rule: rule.name.clone() });
            } else if retrigger == RetriggerSemantics::SinceLastTriggering && triggered_by_this {
                // [WF89b]: this transition alone re-triggers the rule, so
                // its window restarts here.
                *slot = tinfo.clone();
                txn.window_gens[rule.id.0] += 1;
                self.events.emit(EngineEvent::TransInfoInit { rule: rule.name.clone() });
            } else {
                let was_empty = slot.is_empty();
                slot.compose(tinfo);
                if triggered_by_this {
                    self.events.emit(if was_empty {
                        EngineEvent::TransInfoInit { rule: rule.name.clone() }
                    } else {
                        EngineEvent::TransInfoModify { rule: rule.name.clone() }
                    });
                }
            }
        }
    }

    /// Evaluate the considered rule's condition, preferring the
    /// incremental path — repairing (or rebuilding) the materialized
    /// per-term match sets from the delta since the last consideration —
    /// and falling back to [`Self::check_condition`]'s full window scan
    /// whenever the condition is not incrementalizable. The observable
    /// truth value is identical on either path.
    fn evaluate_condition(&mut self, rid: RuleId, name: &str) -> Result<bool, RuleError> {
        if self.incr_enabled
            && self.config.exec_mode == ExecMode::Compiled
            && self.rules[rid.0].condition.is_some()
        {
            match self.try_incremental(rid)? {
                IncOutcome::Answer { truth, mode, rows, shared } => {
                    if mode == "repair" {
                        self.stats.incr_hits += 1;
                    } else {
                        self.stats.incr_rebuilds += 1;
                    }
                    self.stats.incr_delta_rows += rows;
                    if shared {
                        self.stats.incr_shared_hits += 1;
                    }
                    self.events.emit(EngineEvent::IncrementalEval {
                        rule: name.to_string(),
                        mode: mode.to_string(),
                        delta_rows: rows,
                        shared,
                    });
                    return Ok(truth);
                }
                IncOutcome::Fallback(label) => {
                    self.stats.incr_fallbacks += 1;
                    *self.stats.incr_fallback_reasons.entry(label.to_string()).or_insert(0) +=
                        1;
                    self.events.emit(EngineEvent::IncrementalEval {
                        rule: name.to_string(),
                        mode: "fallback".to_string(),
                        delta_rows: 0,
                        shared: false,
                    });
                }
            }
        }
        self.check_condition(rid)
    }

    /// The incremental path. `Fallback(label)` means the condition is not
    /// incrementalizable — either at analysis time (the cached
    /// [`FallbackReason`]'s label) or at this evaluation (a dynamic
    /// degrade such as the sum overflow guard) — and the caller must run
    /// the full evaluator. `Answer` is authoritative: `mode` is
    /// `"repair"` when every term patched from the delta log and
    /// `"rebuild"` when any memo was (re)populated from the whole window;
    /// `rows` counts probed rows either way, and `shared` reports whether
    /// any composed delta suffix came from another rule's fold this
    /// round.
    ///
    /// [`FallbackReason`]: setrules_query::incremental::FallbackReason
    fn try_incremental(&mut self, rid: RuleId) -> Result<IncOutcome, RuleError> {
        let rule = &self.rules[rid.0];
        let cond = rule.condition.as_ref().expect("caller checked");
        let Some(cache) = self.rule_plans.get(&rid) else {
            return Ok(IncOutcome::Fallback("no-plan-cache"));
        };
        let mut state = cache.incr_state();
        if state.is_none() {
            // First consideration since the cache was (re)created:
            // analyze once; the verdict is cached alongside the plans
            // and dies with them on DDL.
            let licensed = |kind: TransitionKind, table: &str, column: Option<&str>| {
                self.rule_licenses(rule, kind, table, column)
            };
            let plan = analyze(&self.db, cond, &licensed).map(Arc::new);
            *state = Some(IncrState { plan, memo: None });
        }
        let st = state.as_mut().expect("just filled");
        let plan = match &st.plan {
            Ok(p) => Arc::clone(p),
            Err(reason) => return Ok(IncOutcome::Fallback(reason.label())),
        };
        let txn = self.txn.as_mut().expect("transaction open");
        let window = &txn.rule_infos[rid.0];
        let mut src = DeltaSource {
            log: &txn.delta_log,
            epoch: txn.epoch,
            wgen: txn.window_gens[rid.0],
            cache: &mut txn.compose_cache,
        };
        let db = &self.db;
        let memo = st.memo.get_or_insert_with(|| IncMemo::for_plan(&plan));
        let outcome = plan.evaluate(memo, &mut |_, term, tstate| {
            refresh_term(db, term, window, &mut src, tstate)
        })?;
        self.qstats.bump(|s| s.incr_probe_rows += outcome.rows);
        match outcome.verdict {
            CondVerdict::Truth(truth) => Ok(IncOutcome::Answer {
                truth,
                mode: if outcome.rebuilt > 0 { "rebuild" } else { "repair" },
                rows: outcome.rows,
                shared: outcome.shared > 0,
            }),
            // A dynamic degrade (e.g. the sum overflow guard): the memo
            // stays live — only this evaluation answers via full scan.
            CondVerdict::Degrade(label) => Ok(IncOutcome::Fallback(label)),
        }
    }

    fn check_condition(&self, rid: RuleId) -> Result<bool, RuleError> {
        let rule = &self.rules[rid.0];
        let Some(cond) = &rule.condition else {
            return Ok(true); // omitted ⇒ `if true`
        };
        let txn = self.txn.as_ref().expect("transaction open");
        let provider = RuleWindowRef { info: &txn.rule_infos[rid.0], licensed: &rule.licensed };
        let cache = setrules_query::SubqueryCache::new();
        let ctx = setrules_query::QueryCtx::with_provider(&self.db, &provider)
            .with_cache(&cache)
            .with_stats(Some(&self.qstats))
            .with_mode(self.config.exec_mode)
            .with_plans(self.rule_plans.get(&rid))
            .with_threads(self.threads());
        let mut bindings = setrules_query::bindings::Bindings::new();
        match self.config.exec_mode {
            ExecMode::Compiled => {
                // The condition is a rule-owned AST whose address is stable
                // between DDLs, so the per-rule cache makes repeated
                // considerations compile-free.
                let compiled = compile_cached(ctx, cond, &bindings.layout());
                Ok(eval_compiled_predicate(ctx, &mut bindings, None, &compiled)?)
            }
            ExecMode::Interpreted => {
                Ok(setrules_query::eval_predicate(ctx, &mut bindings, None, cond)?)
            }
        }
    }

    /// Execute a rule's action as one operation block, returning the
    /// transition's window.
    fn execute_rule_action(
        &mut self,
        rid: RuleId,
        action: &CompiledAction,
    ) -> Result<TransInfo, RuleError> {
        let mut tinfo = TransInfo::new();
        let mut last_output: Option<Relation> = None;
        let threads = self.threads();
        let before = self.qstats.snapshot();
        let result: Result<(), RuleError> = (|| {
            match action {
                CompiledAction::Block(ops) => {
                    // Borrow the rule's window directly — `self.db` (mutable)
                    // and `self.txn`/`self.rules` (immutable) are disjoint
                    // fields, so no O(window) clone is needed.
                    let rule = &self.rules[rid.0];
                    let txn = self.txn.as_ref().expect("open");
                    let provider =
                        RuleWindowRef { info: &txn.rule_infos[rid.0], licensed: &rule.licensed };
                    // `ops` shares the rule-owned allocation (the action clone
                    // is an `Arc` copy), so plan-cache pointer keys see the
                    // same AST addresses on every firing.
                    let plans = self.rule_plans.get(&rid);
                    for op in ops.iter() {
                        let eff = execute_op_ext(
                            &mut self.db,
                            &provider,
                            op,
                            &ExecOpts {
                                stats: Some(&self.qstats),
                                mode: self.config.exec_mode,
                                plans,
                                threads,
                                op_stats: None,
                            },
                        )?;
                        if let OpEffect::Select { output, .. } = &eff {
                            last_output = Some(output.clone());
                        }
                        tinfo.absorb(&eff, self.config.track_selects);
                        // Rule-action writes join the transaction's commit
                        // unit (free function: `provider`/`plans` still
                        // borrow `self.txn`/`self.rule_plans`).
                        wal_log_effect(
                            &mut self.db,
                            &mut self.wal,
                            &mut self.stats,
                            &mut self.events,
                            &eff,
                        )?;
                    }
                }
            CompiledAction::External(f) => {
                // External actions hold the provider across arbitrary user
                // code; give them an owning snapshot of the window.
                let rule = &self.rules[rid.0];
                let provider = RuleWindowProvider::licensed(
                    self.txn.as_ref().expect("open").rule_infos[rid.0].clone(),
                    rule.licensed.clone(),
                );
                let mut ctx = ActionCtx {
                    db: &mut self.db,
                    provider,
                    effects: Vec::new(),
                    track_selects: self.config.track_selects,
                    did_ddl: false,
                };
                f.run(&mut ctx)?;
                let effects = ctx.effects;
                if ctx.did_ddl {
                    // Mid-transaction DDL (index creation) moved the
                    // catalog under every cached plan's feet.
                    self.invalidate_plans();
                }
                for eff in &effects {
                    if let OpEffect::Select { output, .. } = eff {
                        last_output = Some(output.clone());
                    }
                    tinfo.absorb(eff, self.config.track_selects);
                }
            }
            CompiledAction::Rollback => unreachable!("handled by the caller"),
            }
            Ok(())
        })();
        self.note_parallelism(&before);
        result?;
        if last_output.is_some() {
            self.txn.as_mut().expect("open").last_output = last_output;
        }
        Ok(tinfo)
    }

    fn require_no_txn(&self) -> Result<(), RuleError> {
        if self.txn.is_some() {
            Err(RuleError::TransactionOpen)
        } else {
            Ok(())
        }
    }
}
