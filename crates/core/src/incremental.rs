//! Delta repair for incremental rule-condition evaluation (ISSUE 7,
//! widened by ISSUE 10).
//!
//! `setrules-query::incremental` decides *whether* a condition is
//! incrementalizable and owns the memo representation; this module owns
//! the operations that keep a term memo truthful, because they need the
//! engine's window ([`TransInfo`]) and delta log ([`TransitionEffect`]):
//!
//! * [`refresh_term`] — bring one term's memo up to date: repair it from
//!   the composed `[I, D, U]` suffix of the transaction's delta log when
//!   the term's [`Cursor`] is still valid, or rebuild it by one full scan
//!   of the rule's composite window when it is not (first consideration,
//!   new transaction, window restart, or an interrupted repair).
//!
//! # Shared delta cursors
//!
//! Every transition appends its projected effect to the transaction-wide
//! `delta_log` exactly once. A term at cursor `seq` needs the composition
//! (Definition 2.1 ⊕) of `log[seq..]`; that composition is a pure
//! function of the suffix — independent of which rule asks — so it is
//! memoized in a per-transaction compose cache keyed by `seq`. When N
//! rules watch the same views at the same cursor (the 60-watcher storm),
//! the first refresh folds the suffix and the other N−1 hit the cache
//! (`shared` in [`TermRefresh::Repaired`], `incr_shared_hits` in stats).
//! The cache is cleared whenever the log grows, keeping entries exact.
//!
//! Window *resets* (footnote-8 `SinceLastConsidered` clears, acting-rule
//! restarts, `SinceLastTriggering` re-triggers) never touch the log: they
//! bump the rule's window generation, which invalidates that rule's
//! cursors only. Other rules' suffixes still compose the same effects
//! over their own unbroken windows, so sharing stays sound.
//!
//! # Why repair is sound
//!
//! Term predicates are *row-local* (the analyzer guarantees it), so a
//! row's membership in a term — and its join key, and its aggregate
//! contribution — depends only on that row's own (old or current)
//! values. Old values (`deleted` / `old updated` views) are fixed once
//! recorded in the window; current values change only through operations
//! that — because every transition is composed into every rule's window
//! and appended to the delta log at the same choke point
//! (`apply_transition`) — are named by the delta's handle sets. Tuple
//! handles are allocated monotonically and never reused, so a handle in
//! the delta denotes the same tuple it denoted at memo time. Hence a
//! tuple not named by the delta cannot have changed term state, and
//! patching exactly the named handles reproduces what a full re-scan
//! would compute.
//!
//! Per view, with `W` the rule's window and `(I, D, U)` the delta:
//!
//! | view            | inserts `I`      | deletes `D`  | updates `U`                 |
//! |-----------------|------------------|--------------|-----------------------------|
//! | `inserted t`    | probe current    | remove       | re-probe if handle ∈ `W.ins`|
//! | `deleted t`     | —                | probe `old`  | —                           |
//! | `old updated t` | —                | remove       | probe `old` if ∈ `W.upd`    |
//! | `new updated t` | —                | remove       | re-probe current if ∈ `W.upd`|
//!
//! (`I` never touches the update views: an insert-then-update tuple
//! stays in `inserted` only — Definition 2.1 keeps `U` disjoint from
//! `I1`. `D` removes everywhere because delete cancels window membership
//! in the current-state views and `upd` entries migrate to `del`.) The
//! same matrix drives all three memo kinds: a match set removes/probes
//! handles, an accumulator retires/patches contributions, and a join
//! memory applies it *per side* and then re-derives exactly the pairs
//! involving a changed handle by probing the opposite side's key index.
//!
//! # Error-order fidelity
//!
//! Probe errors propagate: an erroring row is met here exactly when the
//! full evaluator would scan it, and *in the same order*. Windows
//! iterate in ascending handle order (= the provider's scan order), so
//! rebuilds probe exactly as the executor scans; repairs probe the
//! delta-named handles as one ascending set per view (rows not named by
//! the delta are unchanged and cannot error: they were probed without
//! error when they last changed). Join pair probes run in `(left,
//! right)`-lexicographic order — the hash join's sorted cursor emission
//! — over exactly the changed pairs.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use setrules_query::incremental::{
    Cursor, IncTerm, TermKind, TermMemo, TermRefresh, TermState, ViewScan,
};
use setrules_query::QueryError;
use setrules_sql::ast::TransitionKind;
use setrules_storage::{ColumnId, Database, TableId, TupleHandle, Value};

use crate::effect::TransitionEffect;
use crate::transinfo::TransInfo;

/// Resolved per-view addressing: the view's table/column names mapped to
/// catalog ids once per refresh, not per row.
struct ViewIds {
    tid: TableId,
    col: Option<ColumnId>,
}

fn view_ids(db: &Database, view: &ViewScan) -> Result<ViewIds, QueryError> {
    let tid = db.table_id(&view.table)?;
    let col = match &view.column {
        Some(c) => Some(
            db.schema(tid)
                .column_id(c)
                .map_err(|_| QueryError::UnknownColumn(format!("{}.{c}", view.table)))?,
        ),
        None => None,
    };
    Ok(ViewIds { tid, col })
}

/// The transaction-wide delta source one refresh round reads from: the
/// append-only effect log, the validity coordinates (transaction epoch
/// and this rule's window generation), and the shared compose cache.
pub struct DeltaSource<'a> {
    /// One projected effect per transition, in order.
    pub log: &'a [TransitionEffect],
    /// The owning transaction's epoch (cursor validity).
    pub epoch: u64,
    /// The refreshing rule's current window generation.
    pub wgen: u64,
    /// suffix start → composed effect, shared across rules.
    pub cache: &'a mut HashMap<usize, Arc<TransitionEffect>>,
}

impl DeltaSource<'_> {
    /// The composition of `log[from..]`, served from the shared cache
    /// when another term at the same cursor already folded it. Returns
    /// `(effect, came_from_cache)`.
    fn composed(&mut self, from: usize) -> (Arc<TransitionEffect>, bool) {
        if let Some(d) = self.cache.get(&from) {
            return (Arc::clone(d), true);
        }
        let eff =
            self.log[from..].iter().fold(TransitionEffect::new(), |acc, e| acc.compose(e));
        let arc = Arc::new(eff);
        self.cache.insert(from, Arc::clone(&arc));
        (arc, false)
    }
}

/// Bring one term's memo up to date against the rule's current window,
/// repairing from the delta-log suffix when the cursor is valid and
/// rebuilding from the window otherwise. Returns what was done and how
/// many rows were probed.
pub fn refresh_term(
    db: &Database,
    term: &IncTerm,
    window: &TransInfo,
    src: &mut DeltaSource<'_>,
    state: &mut TermState,
) -> Result<TermRefresh, QueryError> {
    let next = Cursor { epoch: src.epoch, wgen: src.wgen, seq: src.log.len() };
    let valid = state
        .cursor
        .is_some_and(|c| c.epoch == src.epoch && c.wgen == src.wgen && c.seq <= src.log.len());
    if valid {
        let from = state.cursor.expect("validated above").seq;
        // Clear the cursor before patching: a probe error mid-repair
        // leaves the memo half-patched, and the cleared cursor forces the
        // next consideration to rebuild instead of trusting it.
        state.cursor = None;
        let (rows, shared) = if from == src.log.len() {
            (0, false) // nothing happened since the last consideration
        } else {
            let (delta, shared) = src.composed(from);
            (repair_term(db, term, window, &delta, &mut state.memo)?, shared)
        };
        state.cursor = Some(next);
        Ok(TermRefresh::Repaired { rows, shared })
    } else {
        state.cursor = None;
        state.memo = TermMemo::empty_for(term);
        let rows = rebuild_term(db, term, window, &mut state.memo)?;
        state.cursor = Some(next);
        Ok(TermRefresh::Rebuilt { rows })
    }
}

/// A per-row visitor for [`scan_view`]: the handle and the row as the
/// executor would see it.
type RowVisitor<'a> = dyn FnMut(TupleHandle, &[Value]) -> Result<(), QueryError> + 'a;

/// Walk `kind`'s view of `window` in ascending handle order (= the
/// provider's scan order), yielding each row as the executor would see
/// it.
fn scan_view(
    db: &Database,
    ids: &ViewIds,
    kind: TransitionKind,
    window: &TransInfo,
    f: &mut RowVisitor<'_>,
) -> Result<(), QueryError> {
    match kind {
        TransitionKind::Inserted => {
            for h in &window.ins {
                if db.table_of(*h) != Some(ids.tid) {
                    continue;
                }
                let Some(t) = db.get(ids.tid, *h) else { continue };
                f(*h, &t.0)?;
            }
        }
        TransitionKind::Deleted => {
            for (h, e) in &window.del {
                if e.table != ids.tid {
                    continue;
                }
                f(*h, &e.old.0)?;
            }
        }
        TransitionKind::OldUpdated => {
            for (h, e) in &window.upd {
                if e.table != ids.tid || !ids.col.is_none_or(|c| e.columns.contains(&c)) {
                    continue;
                }
                f(*h, &e.old.0)?;
            }
        }
        TransitionKind::NewUpdated => {
            for (h, e) in &window.upd {
                if e.table != ids.tid || !ids.col.is_none_or(|c| e.columns.contains(&c)) {
                    continue;
                }
                let Some(t) = db.get(ids.tid, *h) else { continue };
                f(*h, &t.0)?;
            }
        }
        TransitionKind::Selected => {
            unreachable!("analyzer rejects selected windows")
        }
    }
    Ok(())
}

/// The delta-named handles whose membership in `kind`'s view may have
/// changed: `(removed, probes)`. Removed handles leave unconditionally;
/// probe handles re-resolve against the window through [`probe_row`].
/// `probes` is one ascending set per view — new inserts and re-probed
/// updates interleave in handle order, exactly the scan order the full
/// evaluator would meet them in.
fn delta_changes(
    db: &Database,
    ids: &ViewIds,
    kind: TransitionKind,
    window: &TransInfo,
    delta: &TransitionEffect,
) -> (Vec<TupleHandle>, BTreeSet<TupleHandle>) {
    // The delta names updates per column; membership probes are per
    // tuple, so dedup once.
    let updated: BTreeSet<TupleHandle> = delta.updated.iter().map(|(h, _)| *h).collect();
    match kind {
        TransitionKind::Inserted => {
            let removed = delta.deleted.iter().copied().collect();
            // New inserts probe in; updates of window-inserted tuples
            // re-probe (their current values changed).
            let probes = delta
                .inserted
                .iter()
                .chain(&updated)
                .filter(|h| window.ins.contains(h) && db.table_of(**h) == Some(ids.tid))
                .copied()
                .collect();
            (removed, probes)
        }
        TransitionKind::Deleted => {
            // Deletes only ever join this view; their old values are
            // frozen, so no removals and no re-probes.
            let probes = delta
                .deleted
                .iter()
                .filter(|h| window.del.get(h).is_some_and(|e| e.table == ids.tid))
                .copied()
                .collect();
            (Vec::new(), probes)
        }
        TransitionKind::OldUpdated | TransitionKind::NewUpdated => {
            let removed = delta.deleted.iter().copied().collect();
            // A newly updated column can bring a tuple into a
            // column-restricted view.
            let probes = updated
                .iter()
                .filter(|h| {
                    window.upd.get(h).is_some_and(|e| {
                        e.table == ids.tid && ids.col.is_none_or(|c| e.columns.contains(&c))
                    })
                })
                .copied()
                .collect();
            (removed, probes)
        }
        TransitionKind::Selected => unreachable!("analyzer rejects selected windows"),
    }
}

/// Resolve the row a probe of `h` in `kind`'s view evaluates: current
/// values for the current-state views, frozen old values otherwise.
fn probe_row<'a>(
    db: &'a Database,
    ids: &ViewIds,
    kind: TransitionKind,
    window: &'a TransInfo,
    h: TupleHandle,
) -> Option<&'a [Value]> {
    match kind {
        TransitionKind::Inserted | TransitionKind::NewUpdated => {
            db.get(ids.tid, h).map(|t| t.0.as_slice())
        }
        TransitionKind::Deleted => window.del.get(&h).map(|e| e.old.0.as_slice()),
        TransitionKind::OldUpdated => window.upd.get(&h).map(|e| e.old.0.as_slice()),
        TransitionKind::Selected => unreachable!("analyzer rejects selected windows"),
    }
}

/// Populate `memo` from scratch by scanning the term's view(s) of the
/// whole window. Returns the number of rows probed.
fn rebuild_term(
    db: &Database,
    term: &IncTerm,
    window: &TransInfo,
    memo: &mut TermMemo,
) -> Result<u64, QueryError> {
    let mut rows = 0u64;
    match (&term.kind, memo) {
        (TermKind::Set { view, .. }, TermMemo::Set(set)) => {
            let ids = view_ids(db, view)?;
            scan_view(db, &ids, view.kind, window, &mut |h, row| {
                rows += 1;
                if term.probe_set(row)? {
                    set.insert(h);
                }
                Ok(())
            })?;
        }
        (TermKind::Acc { view, .. }, TermMemo::Acc(acc)) => {
            let ids = view_ids(db, view)?;
            scan_view(db, &ids, view.kind, window, &mut |h, row| {
                rows += 1;
                if let Some(v) = term.probe_acc(row)? {
                    acc.insert(h, v);
                }
                Ok(())
            })?;
        }
        (TermKind::Join { left, right, .. }, TermMemo::Join(j)) => {
            let lids = view_ids(db, left)?;
            let rids = view_ids(db, right)?;
            scan_view(db, &lids, left.kind, window, &mut |h, row| {
                rows += 1;
                if let Some(key) = term.probe_join_side(true, row) {
                    j.left.insert(h, key, row.to_vec());
                }
                Ok(())
            })?;
            scan_view(db, &rids, right.kind, window, &mut |h, row| {
                rows += 1;
                if let Some(key) = term.probe_join_side(false, row) {
                    j.right.insert(h, key, row.to_vec());
                }
                Ok(())
            })?;
            // Probe every key-matching pair in (left, right)-lexicographic
            // order — the hash join's sorted cursor emission feeding the
            // filter.
            let mut matched = Vec::new();
            for (l, (key, lrow)) in &j.left.rows {
                let Some(bucket) = j.right.by_key.get(key) else { continue };
                for r in bucket {
                    rows += 1;
                    if term.probe_join_pair(lrow, &j.right.rows[r].1)? {
                        matched.push((*l, *r));
                    }
                }
            }
            for (l, r) in matched {
                j.add_pair(l, r);
            }
        }
        _ => return Err(QueryError::Type("internal: memo kind does not match term".into())),
    }
    Ok(rows)
}

/// Patch `memo` from the delta composed since the term's cursor.
/// `window` must be the rule's *current* composite window (the delta is
/// a suffix of its composition). Returns the number of rows probed.
fn repair_term(
    db: &Database,
    term: &IncTerm,
    window: &TransInfo,
    delta: &TransitionEffect,
    memo: &mut TermMemo,
) -> Result<u64, QueryError> {
    let mut rows = 0u64;
    match (&term.kind, memo) {
        (TermKind::Set { view, .. }, TermMemo::Set(set)) => {
            let ids = view_ids(db, view)?;
            let (removed, probes) = delta_changes(db, &ids, view.kind, window, delta);
            for h in removed {
                set.remove(&h);
            }
            for h in probes {
                let Some(row) = probe_row(db, &ids, view.kind, window, h) else {
                    set.remove(&h);
                    continue;
                };
                rows += 1;
                if term.probe_set(row)? {
                    set.insert(h);
                } else {
                    set.remove(&h);
                }
            }
        }
        (TermKind::Acc { view, .. }, TermMemo::Acc(acc)) => {
            let ids = view_ids(db, view)?;
            let (removed, probes) = delta_changes(db, &ids, view.kind, window, delta);
            for h in removed {
                acc.remove(h);
            }
            for h in probes {
                let Some(row) = probe_row(db, &ids, view.kind, window, h) else {
                    acc.remove(h);
                    continue;
                };
                rows += 1;
                match term.probe_acc(row)? {
                    Some(v) => acc.insert(h, v),
                    None => acc.remove(h),
                }
            }
        }
        (TermKind::Join { left, right, .. }, TermMemo::Join(j)) => {
            let lids = view_ids(db, left)?;
            let rids = view_ids(db, right)?;
            // 1. Re-resolve each side's delta-named handles against its
            //    own memo (side probes never error: scan and hash both
            //    defer errors to the pair predicate).
            let (lrem, lprobes) = delta_changes(db, &lids, left.kind, window, delta);
            let (rrem, rprobes) = delta_changes(db, &rids, right.kind, window, delta);
            let mut lchanged: BTreeSet<TupleHandle> = lrem.iter().copied().collect();
            let mut rchanged: BTreeSet<TupleHandle> = rrem.iter().copied().collect();
            for h in lrem {
                j.left.remove(h);
            }
            for h in rrem {
                j.right.remove(h);
            }
            for h in lprobes {
                lchanged.insert(h);
                match probe_row(db, &lids, left.kind, window, h)
                    .and_then(|row| term.probe_join_side(true, row).map(|k| (k, row)))
                {
                    Some((key, row)) => {
                        rows += 1;
                        j.left.insert(h, key, row.to_vec());
                    }
                    None => j.left.remove(h),
                }
            }
            for h in rprobes {
                rchanged.insert(h);
                match probe_row(db, &rids, right.kind, window, h)
                    .and_then(|row| term.probe_join_side(false, row).map(|k| (k, row)))
                {
                    Some((key, row)) => {
                        rows += 1;
                        j.right.insert(h, key, row.to_vec());
                    }
                    None => j.right.remove(h),
                }
            }
            // 2. Every pair involving a changed handle is stale: purge
            //    them, then re-derive candidates by probing the opposite
            //    side's key index (Rete beta propagation).
            let mut cand: BTreeSet<(TupleHandle, TupleHandle)> = BTreeSet::new();
            for &h in &lchanged {
                j.purge_left(h);
                if let Some((key, _)) = j.left.rows.get(&h) {
                    if let Some(bucket) = j.right.by_key.get(key) {
                        cand.extend(bucket.iter().map(|r| (h, *r)));
                    }
                }
            }
            for &h in &rchanged {
                j.purge_right(h);
                if let Some((key, _)) = j.right.rows.get(&h) {
                    if let Some(bucket) = j.left.by_key.get(key) {
                        cand.extend(bucket.iter().map(|l| (*l, h)));
                    }
                }
            }
            // 3. Probe the changed pairs in (left, right)-lexicographic
            //    order — unchanged pairs keep their verdict and are
            //    provably error-free, so this reproduces the filter's
            //    error order over the full combination walk.
            for (l, r) in cand {
                rows += 1;
                let ok = term.probe_join_pair(&j.left.rows[&l].1, &j.right.rows[&r].1)?;
                if ok {
                    j.add_pair(l, r);
                }
            }
        }
        _ => return Err(QueryError::Type("internal: memo kind does not match term".into())),
    }
    Ok(rows)
}
