//! Delta repair for incremental rule-condition evaluation (ISSUE 7).
//!
//! `setrules-query::incremental` decides *whether* a condition is
//! incrementalizable and owns the memo representation; this module owns
//! the two operations that keep a memo truthful, because they need the
//! engine's window ([`TransInfo`]) and delta ([`TransitionEffect`]):
//!
//! * [`rebuild_memo`] — populate the match sets by one full scan of the
//!   rule's composite window (first consideration, or any time the delta
//!   chain was broken by a window reset);
//! * [`repair_memo`] — patch the match sets from the `[I, D, U]` effect
//!   composed (Definition 2.1 ⊕) since the previous consideration.
//!
//! # Why repair is sound
//!
//! Term predicates are *row-local* (the analyzer guarantees it), so a
//! tuple's membership depends only on that tuple's own old or current
//! values. Old values (`deleted` / `old updated` views) are fixed once
//! recorded in the window; current values change only through operations
//! that — because every transition is composed into every rule's window
//! and into the tracked delta at the same choke point
//! (`apply_transition`) — are named by the delta's handle sets. Tuple
//! handles are allocated monotonically and never reused, so a handle in
//! the delta denotes the same tuple it denoted at memo time. Hence a
//! tuple not named by the delta cannot have changed membership in any
//! term, and patching exactly the named handles reproduces what a full
//! re-scan would compute.
//!
//! Per view, with `W` the rule's window and `(I, D, U)` the delta:
//!
//! | view            | inserts `I`      | deletes `D`  | updates `U`                 |
//! |-----------------|------------------|--------------|-----------------------------|
//! | `inserted t`    | probe current    | remove       | re-probe if handle ∈ `W.ins`|
//! | `deleted t`     | —                | probe `old`  | —                           |
//! | `old updated t` | —                | remove       | probe `old` if ∈ `W.upd`    |
//! | `new updated t` | —                | remove       | re-probe current if ∈ `W.upd`|
//!
//! (`I` never touches the update views: an insert-then-update tuple
//! stays in `inserted` only — Definition 2.1 keeps `U` disjoint from
//! `I1`. `D` removes everywhere because delete cancels window
//! membership in the current-state views and `upd` entries migrate to
//! `del`.) Probe errors propagate: an erroring row is met here exactly
//! when the full evaluator would scan it, so the consideration aborts
//! the same way re-scan would.

use std::collections::BTreeSet;

use setrules_query::incremental::{IncMemo, IncrementalPlan};
use setrules_query::QueryError;
use setrules_sql::ast::TransitionKind;
use setrules_storage::{ColumnId, Database, TupleHandle};

use crate::effect::TransitionEffect;
use crate::transinfo::TransInfo;

/// Resolved per-term addressing: the term's table/column names mapped to
/// catalog ids once per (re)build, not per row.
struct TermIds {
    tid: setrules_storage::TableId,
    col: Option<ColumnId>,
}

fn term_ids(db: &Database, plan: &IncrementalPlan) -> Result<Vec<TermIds>, QueryError> {
    plan.terms
        .iter()
        .map(|t| {
            let tid = db.table_id(&t.table)?;
            let col = match &t.column {
                Some(c) => Some(db.schema(tid).column_id(c).map_err(|_| {
                    QueryError::UnknownColumn(format!("{}.{c}", t.table))
                })?),
                None => None,
            };
            Ok(TermIds { tid, col })
        })
        .collect()
}

/// Populate `memo` from scratch by scanning the rule's whole window.
/// Returns the number of rows probed.
pub fn rebuild_memo(
    db: &Database,
    plan: &IncrementalPlan,
    window: &TransInfo,
    memo: &mut IncMemo,
) -> Result<u64, QueryError> {
    let ids = term_ids(db, plan)?;
    let mut probed = 0u64;
    for ((term, ids), set) in plan.terms.iter().zip(&ids).zip(&mut memo.terms) {
        set.clear();
        match term.kind {
            TransitionKind::Inserted => {
                for h in &window.ins {
                    if db.table_of(*h) != Some(ids.tid) {
                        continue;
                    }
                    let Some(t) = db.get(ids.tid, *h) else { continue };
                    probed += 1;
                    if term.matches(&t.0)? {
                        set.insert(*h);
                    }
                }
            }
            TransitionKind::Deleted => {
                for (h, e) in &window.del {
                    if e.table != ids.tid {
                        continue;
                    }
                    probed += 1;
                    if term.matches(&e.old.0)? {
                        set.insert(*h);
                    }
                }
            }
            TransitionKind::OldUpdated => {
                for (h, e) in &window.upd {
                    if e.table != ids.tid || !ids.col.is_none_or(|c| e.columns.contains(&c)) {
                        continue;
                    }
                    probed += 1;
                    if term.matches(&e.old.0)? {
                        set.insert(*h);
                    }
                }
            }
            TransitionKind::NewUpdated => {
                for (h, e) in &window.upd {
                    if e.table != ids.tid || !ids.col.is_none_or(|c| e.columns.contains(&c)) {
                        continue;
                    }
                    let Some(t) = db.get(ids.tid, *h) else { continue };
                    probed += 1;
                    if term.matches(&t.0)? {
                        set.insert(*h);
                    }
                }
            }
            TransitionKind::Selected => {
                unreachable!("analyzer rejects selected windows")
            }
        }
    }
    Ok(probed)
}

/// Patch `memo` from the delta composed since the last consideration.
/// `window` must be the rule's *current* composite window (the delta is a
/// suffix of its composition). Returns the number of rows probed.
pub fn repair_memo(
    db: &Database,
    plan: &IncrementalPlan,
    window: &TransInfo,
    delta: &TransitionEffect,
    memo: &mut IncMemo,
) -> Result<u64, QueryError> {
    let ids = term_ids(db, plan)?;
    // The delta names updates per column; membership probes are per
    // tuple, so dedup once for all terms.
    let updated_handles: BTreeSet<TupleHandle> =
        delta.updated.iter().map(|(h, _)| *h).collect();
    let mut probed = 0u64;
    for ((term, ids), set) in plan.terms.iter().zip(&ids).zip(&mut memo.terms) {
        match term.kind {
            TransitionKind::Inserted => {
                for h in &delta.deleted {
                    set.remove(h);
                }
                // New inserts probe in, updates of window-inserted tuples
                // re-probe (their current values changed).
                for h in delta.inserted.iter().chain(&updated_handles) {
                    if !window.ins.contains(h) || db.table_of(*h) != Some(ids.tid) {
                        continue;
                    }
                    let Some(t) = db.get(ids.tid, *h) else { continue };
                    probed += 1;
                    if term.matches(&t.0)? {
                        set.insert(*h);
                    } else {
                        set.remove(h);
                    }
                }
            }
            TransitionKind::Deleted => {
                // Deletes only ever join this view; their old values are
                // frozen, so no re-probes.
                for h in &delta.deleted {
                    let Some(e) = window.del.get(h) else { continue };
                    if e.table != ids.tid {
                        continue;
                    }
                    probed += 1;
                    if term.matches(&e.old.0)? {
                        set.insert(*h);
                    }
                }
            }
            TransitionKind::OldUpdated => {
                for h in &delta.deleted {
                    set.remove(h);
                }
                // A newly updated column can bring a tuple into a
                // column-restricted view; its old value is frozen.
                for h in &updated_handles {
                    let Some(e) = window.upd.get(h) else { continue };
                    if e.table != ids.tid || !ids.col.is_none_or(|c| e.columns.contains(&c)) {
                        continue;
                    }
                    probed += 1;
                    if term.matches(&e.old.0)? {
                        set.insert(*h);
                    } else {
                        set.remove(h);
                    }
                }
            }
            TransitionKind::NewUpdated => {
                for h in &delta.deleted {
                    set.remove(h);
                }
                for h in &updated_handles {
                    let licensed = window.upd.get(h).is_some_and(|e| {
                        e.table == ids.tid && ids.col.is_none_or(|c| e.columns.contains(&c))
                    });
                    if !licensed {
                        continue;
                    }
                    let Some(t) = db.get(ids.tid, *h) else { continue };
                    probed += 1;
                    if term.matches(&t.0)? {
                        set.insert(*h);
                    } else {
                        set.remove(h);
                    }
                }
            }
            TransitionKind::Selected => {
                unreachable!("analyzer rejects selected windows")
            }
        }
    }
    Ok(probed)
}
