//! Engine-level counters and per-rule timing.
//!
//! [`EngineStats`] accumulates over the lifetime of a
//! [`crate::RuleSystem`]; deltas for one processing pass or one
//! transaction are taken with [`EngineStats::since`] and surfaced on
//! [`crate::ProcessReport`] / [`crate::TxnOutcome`] as a [`TxnStats`]
//! bundle alongside the query layer's `ExecStats` and the storage
//! layer's `StorageStats`.

use std::collections::BTreeMap;

use setrules_json::Json;
use setrules_query::ExecStats;
use setrules_storage::StorageStats;

/// Per-rule consideration/execution counts and wall-clock timing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RuleTiming {
    /// Times the rule was chosen for consideration.
    pub considered: u64,
    /// Considerations whose condition evaluated to not-true.
    pub condition_false: u64,
    /// Times the rule's action executed.
    pub executed: u64,
    /// Considerations that were re-considerations within one pass.
    pub retriggered: u64,
    /// Nanoseconds spent evaluating the rule's condition.
    pub condition_nanos: u64,
    /// Nanoseconds spent executing the rule's action.
    pub action_nanos: u64,
}

impl RuleTiming {
    /// Counter-wise sum.
    pub fn plus(&self, other: &RuleTiming) -> RuleTiming {
        RuleTiming {
            considered: self.considered + other.considered,
            condition_false: self.condition_false + other.condition_false,
            executed: self.executed + other.executed,
            retriggered: self.retriggered + other.retriggered,
            condition_nanos: self.condition_nanos + other.condition_nanos,
            action_nanos: self.action_nanos + other.action_nanos,
        }
    }

    /// Counter-wise difference from an earlier snapshot.
    pub fn since(&self, earlier: &RuleTiming) -> RuleTiming {
        RuleTiming {
            considered: self.considered - earlier.considered,
            condition_false: self.condition_false - earlier.condition_false,
            executed: self.executed - earlier.executed,
            retriggered: self.retriggered - earlier.retriggered,
            condition_nanos: self.condition_nanos - earlier.condition_nanos,
            action_nanos: self.action_nanos - earlier.action_nanos,
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == RuleTiming::default()
    }

    /// JSON object form.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("considered", Json::Int(self.considered as i64)),
            ("condition_false", Json::Int(self.condition_false as i64)),
            ("executed", Json::Int(self.executed as i64)),
            ("retriggered", Json::Int(self.retriggered as i64)),
            ("condition_nanos", Json::Int(self.condition_nanos as i64)),
            ("action_nanos", Json::Int(self.action_nanos as i64)),
        ])
    }
}

/// Cumulative engine-phase counters with a per-rule timing breakdown.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Transactions committed.
    pub txns_committed: u64,
    /// Transactions rolled back (rule-requested, explicit, or on error).
    pub txns_rolled_back: u64,
    /// Externally-generated blocks absorbed into rule windows.
    pub external_blocks: u64,
    /// Rule considerations (Fig. 1 selections).
    pub rules_considered: u64,
    /// Considerations whose condition evaluated to not-true.
    pub conditions_false: u64,
    /// Rule actions executed.
    pub rules_executed: u64,
    /// Re-considerations of an already-considered rule within one pass.
    pub rules_retriggered: u64,
    /// Footnote-7 loop-safeguard aborts.
    pub loop_aborts: u64,
    /// Rule considerations that reused the rule's cached compiled plans.
    pub plan_cache_hits: u64,
    /// Rule considerations that had to compile plans fresh (first
    /// consideration, or after a DDL invalidation).
    pub plan_cache_misses: u64,
    /// Considerations answered by repairing the rule's materialized
    /// condition state from the composed `[I, D, U]` delta instead of
    /// re-scanning its transition tables.
    pub incr_hits: u64,
    /// Considerations that (re)built the condition state by one full
    /// window scan (first consideration, or after a window reset broke
    /// the delta chain).
    pub incr_rebuilds: u64,
    /// Considerations of incrementally-enabled rules that fell back to
    /// full re-scan (non-incrementalizable condition shape).
    pub incr_fallbacks: u64,
    /// Rows probed by incremental repairs and rebuilds combined.
    pub incr_delta_rows: u64,
    /// Incremental considerations whose composed delta suffix was served
    /// from the shared per-transaction compose cache (another rule at the
    /// same cursor already folded it this round).
    pub incr_shared_hits: u64,
    /// `incr_fallbacks` broken down by `FallbackReason` label (plus
    /// dynamic degrade labels such as the sum overflow guard).
    pub incr_fallback_reasons: BTreeMap<String, u64>,
    /// Storage faults deliberately injected by an armed
    /// `setrules_storage::FaultInjector` plan.
    pub faults_injected: u64,
    /// Failed DML statements whose partial effects were undone to the
    /// statement savepoint (each is followed by a transaction rollback).
    pub stmt_rollbacks: u64,
    /// Query phases (scan, hash build/probe, where) that ran partitioned
    /// on the worker pool (mirrors the query layer's counter).
    pub parallel_scans: u64,
    /// Total partitions across those parallel phases.
    pub parallel_partitions: u64,
    /// Query phases big enough to parallelize that fell back to serial
    /// because their predicate was not row-local (correlated subqueries,
    /// interpreter fallback).
    pub serial_fallbacks: u64,
    /// Write-ahead-log records appended (durable configurations only).
    pub wal_appends: u64,
    /// Write-ahead-log syncs — fsync-boundary crossings (durable
    /// configurations only).
    pub wal_syncs: u64,
    /// Records replayed from the log when this system was opened.
    pub wal_replayed_records: u64,
    /// Checkpoint records written to the log.
    pub checkpoints: u64,
    /// Per-rule breakdown, keyed by rule name (deterministic order).
    pub per_rule: BTreeMap<String, RuleTiming>,
}

impl EngineStats {
    /// The timing slot for `rule`, creating it on first touch.
    pub(crate) fn rule_mut(&mut self, rule: &str) -> &mut RuleTiming {
        self.per_rule.entry(rule.to_string()).or_default()
    }

    /// Counter-wise sum (union of per-rule maps).
    pub fn plus(&self, other: &EngineStats) -> EngineStats {
        let mut per_rule = self.per_rule.clone();
        for (name, t) in &other.per_rule {
            let slot = per_rule.entry(name.clone()).or_default();
            *slot = slot.plus(t);
        }
        EngineStats {
            txns_committed: self.txns_committed + other.txns_committed,
            txns_rolled_back: self.txns_rolled_back + other.txns_rolled_back,
            external_blocks: self.external_blocks + other.external_blocks,
            rules_considered: self.rules_considered + other.rules_considered,
            conditions_false: self.conditions_false + other.conditions_false,
            rules_executed: self.rules_executed + other.rules_executed,
            rules_retriggered: self.rules_retriggered + other.rules_retriggered,
            loop_aborts: self.loop_aborts + other.loop_aborts,
            plan_cache_hits: self.plan_cache_hits + other.plan_cache_hits,
            plan_cache_misses: self.plan_cache_misses + other.plan_cache_misses,
            incr_hits: self.incr_hits + other.incr_hits,
            incr_rebuilds: self.incr_rebuilds + other.incr_rebuilds,
            incr_fallbacks: self.incr_fallbacks + other.incr_fallbacks,
            incr_delta_rows: self.incr_delta_rows + other.incr_delta_rows,
            incr_shared_hits: self.incr_shared_hits + other.incr_shared_hits,
            incr_fallback_reasons: {
                let mut m = self.incr_fallback_reasons.clone();
                for (label, n) in &other.incr_fallback_reasons {
                    *m.entry(label.clone()).or_insert(0) += n;
                }
                m
            },
            faults_injected: self.faults_injected + other.faults_injected,
            stmt_rollbacks: self.stmt_rollbacks + other.stmt_rollbacks,
            parallel_scans: self.parallel_scans + other.parallel_scans,
            parallel_partitions: self.parallel_partitions + other.parallel_partitions,
            serial_fallbacks: self.serial_fallbacks + other.serial_fallbacks,
            wal_appends: self.wal_appends + other.wal_appends,
            wal_syncs: self.wal_syncs + other.wal_syncs,
            wal_replayed_records: self.wal_replayed_records + other.wal_replayed_records,
            checkpoints: self.checkpoints + other.checkpoints,
            per_rule,
        }
    }

    /// Counter-wise difference from an earlier snapshot of the same
    /// system. Rules whose delta is all-zero are omitted from `per_rule`.
    pub fn since(&self, earlier: &EngineStats) -> EngineStats {
        let mut per_rule = BTreeMap::new();
        for (name, t) in &self.per_rule {
            let base = earlier.per_rule.get(name).copied().unwrap_or_default();
            let d = t.since(&base);
            if !d.is_zero() {
                per_rule.insert(name.clone(), d);
            }
        }
        EngineStats {
            txns_committed: self.txns_committed - earlier.txns_committed,
            txns_rolled_back: self.txns_rolled_back - earlier.txns_rolled_back,
            external_blocks: self.external_blocks - earlier.external_blocks,
            rules_considered: self.rules_considered - earlier.rules_considered,
            conditions_false: self.conditions_false - earlier.conditions_false,
            rules_executed: self.rules_executed - earlier.rules_executed,
            rules_retriggered: self.rules_retriggered - earlier.rules_retriggered,
            loop_aborts: self.loop_aborts - earlier.loop_aborts,
            plan_cache_hits: self.plan_cache_hits - earlier.plan_cache_hits,
            plan_cache_misses: self.plan_cache_misses - earlier.plan_cache_misses,
            incr_hits: self.incr_hits - earlier.incr_hits,
            incr_rebuilds: self.incr_rebuilds - earlier.incr_rebuilds,
            incr_fallbacks: self.incr_fallbacks - earlier.incr_fallbacks,
            incr_delta_rows: self.incr_delta_rows - earlier.incr_delta_rows,
            incr_shared_hits: self.incr_shared_hits - earlier.incr_shared_hits,
            incr_fallback_reasons: self
                .incr_fallback_reasons
                .iter()
                .filter_map(|(label, n)| {
                    let d = n - earlier.incr_fallback_reasons.get(label).copied().unwrap_or(0);
                    (d != 0).then(|| (label.clone(), d))
                })
                .collect(),
            faults_injected: self.faults_injected - earlier.faults_injected,
            stmt_rollbacks: self.stmt_rollbacks - earlier.stmt_rollbacks,
            parallel_scans: self.parallel_scans - earlier.parallel_scans,
            parallel_partitions: self.parallel_partitions - earlier.parallel_partitions,
            serial_fallbacks: self.serial_fallbacks - earlier.serial_fallbacks,
            wal_appends: self.wal_appends - earlier.wal_appends,
            wal_syncs: self.wal_syncs - earlier.wal_syncs,
            wal_replayed_records: self.wal_replayed_records - earlier.wal_replayed_records,
            checkpoints: self.checkpoints - earlier.checkpoints,
            per_rule,
        }
    }

    /// JSON object form: phase counters plus a `per_rule` object.
    pub fn to_json(&self) -> Json {
        let per_rule =
            self.per_rule.iter().map(|(n, t)| (n.clone(), t.to_json())).collect::<Vec<_>>();
        Json::obj([
            ("txns_committed", Json::Int(self.txns_committed as i64)),
            ("txns_rolled_back", Json::Int(self.txns_rolled_back as i64)),
            ("external_blocks", Json::Int(self.external_blocks as i64)),
            ("rules_considered", Json::Int(self.rules_considered as i64)),
            ("conditions_false", Json::Int(self.conditions_false as i64)),
            ("rules_executed", Json::Int(self.rules_executed as i64)),
            ("rules_retriggered", Json::Int(self.rules_retriggered as i64)),
            ("loop_aborts", Json::Int(self.loop_aborts as i64)),
            ("plan_cache_hits", Json::Int(self.plan_cache_hits as i64)),
            ("plan_cache_misses", Json::Int(self.plan_cache_misses as i64)),
            ("incr_hits", Json::Int(self.incr_hits as i64)),
            ("incr_rebuilds", Json::Int(self.incr_rebuilds as i64)),
            ("incr_fallbacks", Json::Int(self.incr_fallbacks as i64)),
            ("incr_delta_rows", Json::Int(self.incr_delta_rows as i64)),
            ("incr_shared_hits", Json::Int(self.incr_shared_hits as i64)),
            (
                "incr_fallback_reasons",
                Json::Object(
                    self.incr_fallback_reasons
                        .iter()
                        .map(|(label, n)| (label.clone(), Json::Int(*n as i64)))
                        .collect(),
                ),
            ),
            ("faults_injected", Json::Int(self.faults_injected as i64)),
            ("stmt_rollbacks", Json::Int(self.stmt_rollbacks as i64)),
            ("parallel_scans", Json::Int(self.parallel_scans as i64)),
            ("parallel_partitions", Json::Int(self.parallel_partitions as i64)),
            ("serial_fallbacks", Json::Int(self.serial_fallbacks as i64)),
            ("wal_appends", Json::Int(self.wal_appends as i64)),
            ("wal_syncs", Json::Int(self.wal_syncs as i64)),
            ("wal_replayed_records", Json::Int(self.wal_replayed_records as i64)),
            ("checkpoints", Json::Int(self.checkpoints as i64)),
            ("per_rule", Json::Object(per_rule)),
        ])
    }
}

/// The observability bundle for one transaction or processing pass:
/// engine-phase counters (with per-rule timing), query-execution work,
/// and physical storage work — all as deltas over the pass.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TxnStats {
    /// Engine-phase counters for the pass.
    pub engine: EngineStats,
    /// Query-layer work (rows scanned/matched, access paths, joins,
    /// subquery memo effectiveness) for the pass.
    pub exec: ExecStats,
    /// Storage-layer work (tuples touched, undo volume, index
    /// maintenance) for the pass.
    pub storage: StorageStats,
}

impl TxnStats {
    /// Component-wise sum.
    pub fn plus(&self, other: &TxnStats) -> TxnStats {
        TxnStats {
            engine: self.engine.plus(&other.engine),
            exec: self.exec.plus(&other.exec),
            storage: self.storage.plus(&other.storage),
        }
    }

    /// Component-wise difference from an earlier snapshot.
    pub fn since(&self, earlier: &TxnStats) -> TxnStats {
        TxnStats {
            engine: self.engine.since(&earlier.engine),
            exec: self.exec.since(&earlier.exec),
            storage: self.storage.since(&earlier.storage),
        }
    }

    /// JSON object with `engine` / `query` / `storage` sections.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("engine", self.engine.to_json()),
            ("query", self.exec.to_json()),
            ("storage", self.storage.to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_stats_since_and_plus_roundtrip() {
        let mut a = EngineStats { rules_considered: 3, ..Default::default() };
        a.rule_mut("r1").considered = 3;
        let mut b = EngineStats { rules_considered: 7, rules_executed: 2, ..Default::default() };
        b.rule_mut("r1").considered = 5;
        b.rule_mut("r2").considered = 2;
        b.rule_mut("r2").executed = 2;
        let d = b.since(&a);
        assert_eq!(d.rules_considered, 4);
        assert_eq!(d.per_rule["r1"].considered, 2);
        assert_eq!(d.per_rule["r2"].executed, 2);
        assert_eq!(a.plus(&d), b);
    }

    #[test]
    fn zero_rule_deltas_are_omitted() {
        let mut a = EngineStats::default();
        a.rule_mut("quiet").considered = 4;
        let b = a.clone();
        assert!(b.since(&a).per_rule.is_empty());
    }

    #[test]
    fn txn_stats_json_sections() {
        let j = TxnStats::default().to_json();
        assert!(j.get("engine").is_some());
        assert!(j.get("query").is_some());
        assert!(j.get("storage").is_some());
    }
}
