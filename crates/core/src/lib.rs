//! # setrules-core
//!
//! Set-oriented production rules for a relational database — a full
//! reproduction of **Widom & Finkelstein, "Set-Oriented Production Rules in
//! Relational Database Systems" (SIGMOD 1990)**, the design that became the
//! Starburst rule system and shaped SQL's statement-level triggers with
//! transition tables.
//!
//! The crate provides:
//!
//! * [`TransitionEffect`] — the `[I, D, U]` effect triples and the
//!   Definition 2.1 composition operator (plus the §5.1 `S` extension);
//! * [`TransInfo`] — per-rule composite transition information with old
//!   values (Fig. 1's `trans-info`, `init-trans-info`,
//!   `modify-trans-info`);
//! * [`RuleWindowProvider`] — transition tables (`inserted t`, `deleted t`,
//!   `old/new updated t[.c]`, `selected t[.c]`) materialized into query
//!   evaluation, enforcing §3's reference restriction;
//! * [`RuleSystem`] — the execution engine: the Figure 1 algorithm with §4
//!   semantics (self-triggering, composite retriggering windows, rollback
//!   actions, consideration rounds), §4.4 selection strategies with
//!   priorities, the footnote-7 divergence guard, and the §5 extensions
//!   (select-triggered rules, external actions, `process rules` triggering
//!   points, deferred processing).
//!
//! ```
//! use setrules_core::RuleSystem;
//!
//! let mut sys = RuleSystem::new();
//! sys.execute("create table emp (name text, emp_no int, salary float, dept_no int)").unwrap();
//! sys.execute(
//!     "create rule cap when updated emp.salary \
//!      if exists (select * from new updated emp.salary where salary > 1000000.0) \
//!      then rollback",
//! ).unwrap();
//! sys.execute("insert into emp values ('Jane', 1, 95000.0, 1)").unwrap();
//! let out = sys.transaction("update emp set salary = 2000000.0").unwrap();
//! assert!(!out.committed());
//! ```

#![warn(missing_docs)]

pub mod effect;
mod durability;
mod engine;
mod error;
pub mod events;
pub mod external;
pub mod incremental;
pub mod priority;
pub mod rule;
pub mod selection;
pub mod snapshot;
pub mod stats;
pub mod transinfo;
pub mod transition_tables;

pub use effect::TransitionEffect;
pub use engine::{
    EngineConfig, ExecOutcome, FiredRule, ProcessReport, RetriggerSemantics, RuleSystem, TxnOutcome,
};
pub use error::RuleError;
pub use events::{EngineEvent, EventSink, JsonLinesSink, RingBufferSink};
// Re-exported so [`EngineConfig::exec_mode`]'s type is nameable from this
// crate's API without depending on the query crate directly.
pub use setrules_query::ExecMode;
// Likewise for [`EngineConfig::fault`] and the injector it arms.
pub use setrules_storage::{FaultInjector, FaultKind, FaultPlan};
// And for [`EngineConfig::durability`]: the log configuration plus the
// pieces a crash-recovery harness needs (the shared test sink, its op
// trace, and the record/error types).
pub use setrules_wal::{
    SharedMemSink, SinkOp, SinkSpec, SyncPolicy, WalConfig, WalError, WalRecord,
};
pub use external::{ActionCtx, ExternalAction};
pub use priority::PriorityGraph;
pub use rule::{CompiledAction, CompiledPred, Rule, RuleId};
pub use selection::SelectionStrategy;
pub use snapshot::{Snapshot, TableSnapshot};
pub use stats::{EngineStats, RuleTiming, TxnStats};
pub use transinfo::{DelEntry, SelEntry, TransInfo, UpdEntry};
pub use transition_tables::{RuleWindowProvider, RuleWindowRef};
