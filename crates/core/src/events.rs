//! Structured engine trace events.
//!
//! Every significant step of the Figure 1 algorithm emits an
//! [`EngineEvent`]: transaction boundaries, external blocks being
//! absorbed into rule windows, rule consideration / condition-false /
//! execution / re-triggering, trans-info maintenance, rollbacks, and the
//! footnote-7 loop-safeguard abort. Events flow to [`EventSink`]s; the
//! engine always keeps a bounded in-memory [`RingBufferSink`], and
//! callers may attach extra sinks (e.g. a [`JsonLinesSink`] for durable
//! traces).
//!
//! Events are *descriptive*, not authoritative: they carry names and
//! cardinalities, never handles or values, so emitting them costs a few
//! allocations and cannot change engine behavior.

use std::collections::VecDeque;
use std::fmt;

use setrules_json::Json;

/// One step of the rule-execution algorithm, in emission order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineEvent {
    /// A transaction opened (explicitly or implicitly).
    TxnBegin,
    /// The open transaction committed.
    TxnCommit {
        /// Rule firings in the transaction.
        fired: usize,
        /// Rule-generated transitions used.
        transitions: usize,
    },
    /// The open transaction was rolled back to its start state.
    Rollback {
        /// The rule whose `rollback` action fired, or `None` for an
        /// explicit/user abort (including error aborts).
        by_rule: Option<String>,
    },
    /// An externally-generated operation block was composed into the rule
    /// windows (the transition becoming "complete" at a triggering point).
    ExternalBlockAbsorbed {
        /// Net inserted tuples in the block.
        inserted: usize,
        /// Net deleted tuples in the block.
        deleted: usize,
        /// Net updated tuples in the block.
        updated: usize,
        /// Net selected tuples in the block (§5.1 extension).
        selected: usize,
    },
    /// A triggered rule was chosen for consideration (Fig. 1 selection).
    RuleConsidered {
        /// The rule's name.
        rule: String,
    },
    /// The considered rule's plan cache was consulted before condition
    /// evaluation: a hit reuses the rule's compiled plans, a miss means
    /// they compile fresh (first consideration, or after a DDL
    /// invalidated every rule's cache).
    PlanCache {
        /// The rule's name.
        rule: String,
        /// Whether compiled plans were already cached.
        hit: bool,
    },
    /// The considered rule's condition was evaluated by the incremental
    /// (TREAT-style) path: its materialized match sets were repaired from
    /// the composed `[I, D, U]` delta (`mode: "repair"`), rebuilt from
    /// the full window (`mode: "rebuild"`), or the rule fell back to full
    /// re-scan (`mode: "fallback"`, with the analyzer's reason).
    IncrementalEval {
        /// The rule's name.
        rule: String,
        /// `"repair"`, `"rebuild"`, or `"fallback"`.
        mode: String,
        /// Rows probed by the repair/rebuild (0 for fallbacks).
        delta_rows: u64,
        /// Whether any term's composed delta suffix was served from the
        /// shared per-transaction compose cache (another rule already
        /// folded it this round).
        shared: bool,
    },
    /// The considered rule's condition evaluated to not-true.
    RuleConditionFalse {
        /// The rule's name.
        rule: String,
    },
    /// The considered rule's action executed, producing a transition.
    RuleExecuted {
        /// The rule's name.
        rule: String,
        /// Tuples the action's transition inserted (net).
        inserted: usize,
        /// Tuples the action's transition deleted (net).
        deleted: usize,
        /// Tuples the action's transition updated (net).
        updated: usize,
    },
    /// A rule already considered in this processing pass was chosen
    /// again — later transitions re-triggered it (§4.2).
    RuleRetriggered {
        /// The rule's name.
        rule: String,
    },
    /// A rule's trans-info was (re)initialized to a single transition
    /// (Fig. 1 `init-trans-info`).
    TransInfoInit {
        /// The rule's name.
        rule: String,
    },
    /// A new transition was composed into a rule's existing trans-info
    /// (Fig. 1 `modify-trans-info`).
    TransInfoModify {
        /// The rule's name.
        rule: String,
    },
    /// The footnote-7 run-time divergence guard tripped; the transaction
    /// is about to roll back.
    LoopSafeguardAbort {
        /// The configured transition limit that was exceeded.
        limit: usize,
    },
    /// An armed [`setrules_storage::FaultInjector`] fired: the Nth storage
    /// operation of the planned kind failed deliberately. Always followed
    /// by [`EngineEvent::StatementRollback`] and a transaction rollback.
    Fault {
        /// The faulted operation kind (stable snake_case name).
        kind: String,
        /// Which occurrence of that kind failed (1-based).
        n: u64,
    },
    /// A DML statement failed mid-flight and its partial effects (if any)
    /// were undone to the statement savepoint, leaving the database
    /// exactly at the pre-statement state before the transaction itself
    /// rolls back.
    StatementRollback,
    /// One or more read-only query phases of a statement ran partitioned
    /// across the worker pool (see `docs/parallel-execution.md`); results
    /// are bit-identical to serial execution.
    ParallelScan {
        /// Total partitions handed to the pool across the statement's
        /// parallel phases.
        partitions: u64,
        /// Rows scanned by the statement (parallel and serial phases).
        rows: u64,
    },
    /// One record was appended to the write-ahead log (durable
    /// configurations only).
    WalAppend {
        /// The record's stable snake_case kind tag (`"begin"`,
        /// `"insert"`, `"commit"`, ...).
        kind: String,
    },
    /// A full-state checkpoint record was written to the write-ahead log.
    Checkpoint {
        /// Size of the encoded checkpoint state, in bytes.
        bytes: u64,
    },
    /// A durable system was opened: the log was scanned and its committed
    /// records replayed onto the fresh image.
    Recovery {
        /// Valid records found in the log (checkpoint + tail).
        records: u64,
        /// Bytes of torn or corrupt tail discarded by the scan.
        truncated_bytes: u64,
    },
}

impl EngineEvent {
    /// Stable machine-readable tag for the event type.
    pub fn kind(&self) -> &'static str {
        match self {
            EngineEvent::TxnBegin => "txn_begin",
            EngineEvent::TxnCommit { .. } => "txn_commit",
            EngineEvent::Rollback { .. } => "rollback",
            EngineEvent::ExternalBlockAbsorbed { .. } => "external_block_absorbed",
            EngineEvent::RuleConsidered { .. } => "rule_considered",
            EngineEvent::PlanCache { .. } => "plan_cache",
            EngineEvent::IncrementalEval { .. } => "incremental_eval",
            EngineEvent::RuleConditionFalse { .. } => "rule_condition_false",
            EngineEvent::RuleExecuted { .. } => "rule_executed",
            EngineEvent::RuleRetriggered { .. } => "rule_retriggered",
            EngineEvent::TransInfoInit { .. } => "trans_info_init",
            EngineEvent::TransInfoModify { .. } => "trans_info_modify",
            EngineEvent::LoopSafeguardAbort { .. } => "loop_safeguard_abort",
            EngineEvent::Fault { .. } => "fault",
            EngineEvent::StatementRollback => "statement_rollback",
            EngineEvent::ParallelScan { .. } => "parallel_scan",
            EngineEvent::WalAppend { .. } => "wal_append",
            EngineEvent::Checkpoint { .. } => "checkpoint",
            EngineEvent::Recovery { .. } => "recovery",
        }
    }

    /// The rule this event concerns, if it concerns one.
    pub fn rule(&self) -> Option<&str> {
        match self {
            EngineEvent::RuleConsidered { rule }
            | EngineEvent::PlanCache { rule, .. }
            | EngineEvent::IncrementalEval { rule, .. }
            | EngineEvent::RuleConditionFalse { rule }
            | EngineEvent::RuleExecuted { rule, .. }
            | EngineEvent::RuleRetriggered { rule }
            | EngineEvent::TransInfoInit { rule }
            | EngineEvent::TransInfoModify { rule } => Some(rule),
            EngineEvent::Rollback { by_rule } => by_rule.as_deref(),
            _ => None,
        }
    }

    /// JSON object form: an `"event"` tag plus the variant's fields.
    pub fn to_json(&self) -> Json {
        let mut fields: Vec<(String, Json)> =
            vec![("event".into(), Json::Str(self.kind().into()))];
        let mut put = |k: &str, v: Json| fields.push((k.into(), v));
        match self {
            EngineEvent::TxnBegin => {}
            EngineEvent::TxnCommit { fired, transitions } => {
                put("fired", Json::Int(*fired as i64));
                put("transitions", Json::Int(*transitions as i64));
            }
            EngineEvent::Rollback { by_rule } => {
                put(
                    "by_rule",
                    match by_rule {
                        Some(r) => Json::Str(r.clone()),
                        None => Json::Null,
                    },
                );
            }
            EngineEvent::ExternalBlockAbsorbed { inserted, deleted, updated, selected } => {
                put("inserted", Json::Int(*inserted as i64));
                put("deleted", Json::Int(*deleted as i64));
                put("updated", Json::Int(*updated as i64));
                put("selected", Json::Int(*selected as i64));
            }
            EngineEvent::RuleConsidered { rule }
            | EngineEvent::RuleConditionFalse { rule }
            | EngineEvent::RuleRetriggered { rule }
            | EngineEvent::TransInfoInit { rule }
            | EngineEvent::TransInfoModify { rule } => {
                put("rule", Json::Str(rule.clone()));
            }
            EngineEvent::RuleExecuted { rule, inserted, deleted, updated } => {
                put("rule", Json::Str(rule.clone()));
                put("inserted", Json::Int(*inserted as i64));
                put("deleted", Json::Int(*deleted as i64));
                put("updated", Json::Int(*updated as i64));
            }
            EngineEvent::PlanCache { rule, hit } => {
                put("rule", Json::Str(rule.clone()));
                put("hit", Json::Bool(*hit));
            }
            EngineEvent::IncrementalEval { rule, mode, delta_rows, shared } => {
                put("rule", Json::Str(rule.clone()));
                put("mode", Json::Str(mode.clone()));
                put("delta_rows", Json::Int(*delta_rows as i64));
                put("shared", Json::Bool(*shared));
            }
            EngineEvent::LoopSafeguardAbort { limit } => {
                put("limit", Json::Int(*limit as i64));
            }
            EngineEvent::Fault { kind, n } => {
                put("kind", Json::Str(kind.clone()));
                put("n", Json::Int(*n as i64));
            }
            EngineEvent::StatementRollback => {}
            EngineEvent::ParallelScan { partitions, rows } => {
                put("partitions", Json::Int(*partitions as i64));
                put("rows", Json::Int(*rows as i64));
            }
            EngineEvent::WalAppend { kind } => {
                put("kind", Json::Str(kind.clone()));
            }
            EngineEvent::Checkpoint { bytes } => {
                put("bytes", Json::Int(*bytes as i64));
            }
            EngineEvent::Recovery { records, truncated_bytes } => {
                put("records", Json::Int(*records as i64));
                put("truncated_bytes", Json::Int(*truncated_bytes as i64));
            }
        }
        Json::Object(fields)
    }
}

impl fmt::Display for EngineEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineEvent::TxnBegin => write!(f, "txn begin"),
            EngineEvent::TxnCommit { fired, transitions } => {
                write!(f, "txn commit ({fired} fired, {transitions} transitions)")
            }
            EngineEvent::Rollback { by_rule: Some(r) } => write!(f, "rollback by rule '{r}'"),
            EngineEvent::Rollback { by_rule: None } => write!(f, "rollback"),
            EngineEvent::ExternalBlockAbsorbed { inserted, deleted, updated, selected } => {
                write!(
                    f,
                    "external block absorbed (I={inserted} D={deleted} U={updated} S={selected})"
                )
            }
            EngineEvent::RuleConsidered { rule } => write!(f, "rule '{rule}' considered"),
            EngineEvent::PlanCache { rule, hit: true } => {
                write!(f, "plan cache hit for '{rule}'")
            }
            EngineEvent::PlanCache { rule, hit: false } => {
                write!(f, "plan cache miss for '{rule}'")
            }
            EngineEvent::IncrementalEval { rule, mode, delta_rows, shared } => {
                write!(
                    f,
                    "incremental eval ({mode}) for '{rule}' ({delta_rows} delta rows{})",
                    if *shared { ", shared delta" } else { "" }
                )
            }
            EngineEvent::RuleConditionFalse { rule } => {
                write!(f, "rule '{rule}' condition false")
            }
            EngineEvent::RuleExecuted { rule, inserted, deleted, updated } => {
                write!(f, "rule '{rule}' executed (I={inserted} D={deleted} U={updated})")
            }
            EngineEvent::RuleRetriggered { rule } => write!(f, "rule '{rule}' re-triggered"),
            EngineEvent::TransInfoInit { rule } => write!(f, "trans-info init for '{rule}'"),
            EngineEvent::TransInfoModify { rule } => {
                write!(f, "trans-info modify for '{rule}'")
            }
            EngineEvent::LoopSafeguardAbort { limit } => {
                write!(f, "loop safeguard abort (limit {limit})")
            }
            EngineEvent::Fault { kind, n } => {
                write!(f, "injected fault: {kind} #{n}")
            }
            EngineEvent::StatementRollback => write!(f, "statement rollback"),
            EngineEvent::ParallelScan { partitions, rows } => {
                write!(f, "parallel scan ({partitions} partitions, {rows} rows)")
            }
            EngineEvent::WalAppend { kind } => write!(f, "wal append ({kind})"),
            EngineEvent::Checkpoint { bytes } => write!(f, "checkpoint written ({bytes} bytes)"),
            EngineEvent::Recovery { records, truncated_bytes } => {
                write!(f, "recovery replayed {records} records ({truncated_bytes} torn bytes)")
            }
        }
    }
}

/// A consumer of the engine's event stream. `seq` is a monotonically
/// increasing sequence number over the lifetime of the [`crate::RuleSystem`].
pub trait EventSink {
    /// Receive one event. Sinks must not panic; the engine treats them as
    /// fire-and-forget.
    fn emit(&mut self, seq: u64, event: &EngineEvent);
}

/// Bounded in-memory sink retaining the most recent `capacity` events —
/// the engine's always-on default.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: VecDeque<(u64, EngineEvent)>,
}

impl RingBufferSink {
    /// A ring retaining at most `capacity` events (`0` disables retention).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink { capacity, buf: VecDeque::new() }
    }

    /// Retained `(seq, event)` pairs, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, EngineEvent)> {
        self.buf.iter()
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<EngineEvent> {
        self.buf.iter().map(|(_, e)| e.clone()).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drop all retained events (the sequence counter lives in the engine
    /// and keeps increasing).
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

impl EventSink for RingBufferSink {
    fn emit(&mut self, seq: u64, event: &EngineEvent) {
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((seq, event.clone()));
    }
}

/// Sink writing each event as one compact JSON object per line
/// (`{"seq": …, "event": …, …}`) — suitable for files or pipes.
pub struct JsonLinesSink<W: std::io::Write> {
    w: W,
}

impl<W: std::io::Write> JsonLinesSink<W> {
    /// Wrap a writer.
    pub fn new(w: W) -> Self {
        JsonLinesSink { w }
    }

    /// Recover the writer (e.g. to flush or inspect a buffer).
    pub fn into_inner(self) -> W {
        self.w
    }
}

impl<W: std::io::Write> EventSink for JsonLinesSink<W> {
    fn emit(&mut self, seq: u64, event: &EngineEvent) {
        let Json::Object(fields) = event.to_json() else { unreachable!("to_json is an object") };
        let mut all = vec![("seq".to_string(), Json::Int(seq as i64))];
        all.extend(fields);
        // Write errors are swallowed: tracing must never fail the engine.
        let _ = writeln!(self.w, "{}", Json::Object(all).compact());
    }
}

/// The engine's event fan-out: an always-on ring buffer plus any number
/// of caller-attached sinks, sharing one sequence counter.
pub(crate) struct EventBus {
    pub(crate) ring: RingBufferSink,
    extra: Vec<Box<dyn EventSink>>,
    seq: u64,
}

impl EventBus {
    pub(crate) fn new(capacity: usize) -> Self {
        EventBus { ring: RingBufferSink::new(capacity), extra: Vec::new(), seq: 0 }
    }

    pub(crate) fn attach(&mut self, sink: Box<dyn EventSink>) {
        self.extra.push(sink);
    }

    pub(crate) fn emit(&mut self, event: EngineEvent) {
        let seq = self.seq;
        self.seq += 1;
        for s in &mut self.extra {
            s.emit(seq, &event);
        }
        self.ring.emit(seq, &event);
    }

    pub(crate) fn seq(&self) -> u64 {
        self.seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn samples() -> Vec<EngineEvent> {
        vec![
            EngineEvent::TxnBegin,
            EngineEvent::TxnCommit { fired: 2, transitions: 3 },
            EngineEvent::Rollback { by_rule: Some("r".into()) },
            EngineEvent::Rollback { by_rule: None },
            EngineEvent::ExternalBlockAbsorbed { inserted: 1, deleted: 0, updated: 2, selected: 0 },
            EngineEvent::RuleConsidered { rule: "r".into() },
            EngineEvent::PlanCache { rule: "r".into(), hit: true },
            EngineEvent::RuleConditionFalse { rule: "r".into() },
            EngineEvent::RuleExecuted { rule: "r".into(), inserted: 1, deleted: 1, updated: 0 },
            EngineEvent::RuleRetriggered { rule: "r".into() },
            EngineEvent::TransInfoInit { rule: "r".into() },
            EngineEvent::TransInfoModify { rule: "r".into() },
            EngineEvent::LoopSafeguardAbort { limit: 10 },
            EngineEvent::Fault { kind: "tuple_insert".into(), n: 3 },
            EngineEvent::StatementRollback,
            EngineEvent::ParallelScan { partitions: 4, rows: 100_000 },
            EngineEvent::WalAppend { kind: "commit".into() },
            EngineEvent::Checkpoint { bytes: 512 },
            EngineEvent::Recovery { records: 9, truncated_bytes: 3 },
        ]
    }

    #[test]
    fn kinds_are_unique_and_json_tags_match() {
        let evs = samples();
        let mut kinds: Vec<&str> = evs.iter().map(|e| e.kind()).collect();
        kinds.dedup();
        // Rollback appears twice in samples (named / unnamed).
        assert_eq!(kinds.len(), 18);
        for e in &evs {
            assert_eq!(e.to_json().get("event").unwrap().as_str(), Some(e.kind()));
            assert!(!format!("{e}").is_empty());
        }
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut ring = RingBufferSink::new(3);
        for i in 0..10u64 {
            ring.emit(i, &EngineEvent::LoopSafeguardAbort { limit: i as usize });
        }
        let seqs: Vec<u64> = ring.entries().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn json_lines_sink_writes_one_line_per_event() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.emit(0, &EngineEvent::TxnBegin);
        sink.emit(1, &EngineEvent::RuleConsidered { rule: "r".into() });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let parsed = Json::parse(lines[1]).unwrap();
        assert_eq!(parsed.get("seq").unwrap().as_i64(), Some(1));
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("rule_considered"));
        assert_eq!(parsed.get("rule").unwrap().as_str(), Some("r"));
    }
}
