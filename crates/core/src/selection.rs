//! Rule selection strategies (paper §4.4).
//!
//! When several rules are triggered at once, `select-triggered-rule` must
//! pick one. The paper discusses: arbitrary choice, a total order, a
//! partial order from `create rule priority` pairings, and recency of
//! consideration ("preferring those rules considered least recently or
//! those considered most recently"). All are implemented; every strategy
//! breaks remaining ties by creation order, so execution is deterministic.

use crate::priority::PriorityGraph;
use crate::rule::RuleId;

/// How [`crate::RuleSystem`] picks among simultaneously triggered rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Respect the priority partial order; among maximal rules, pick the
    /// one created first. This is the paper's recommended compromise and
    /// the default.
    #[default]
    PartialOrder,
    /// Ignore priorities; pick the triggered rule created first (a simple
    /// deterministic stand-in for "arbitrary").
    CreationOrder,
    /// Among priority-maximal rules, prefer the one considered least
    /// recently (never-considered rules first).
    LeastRecentlyConsidered,
    /// Among priority-maximal rules, prefer the one considered most
    /// recently (never-considered rules last).
    MostRecentlyConsidered,
}

/// Pick one rule from `candidates` (all currently triggered and not yet
/// considered this round).
///
/// `last_considered[r.0]` is the logical timestamp at which rule `r` was
/// last chosen for consideration (`None` = never).
pub fn select_rule(
    strategy: SelectionStrategy,
    priorities: &PriorityGraph,
    candidates: &[RuleId],
    last_considered: &[Option<u64>],
) -> Option<RuleId> {
    if candidates.is_empty() {
        return None;
    }
    match strategy {
        SelectionStrategy::CreationOrder => candidates.iter().copied().min(),
        SelectionStrategy::PartialOrder => priorities.maximal(candidates).into_iter().min(),
        SelectionStrategy::LeastRecentlyConsidered => {
            let maximal = priorities.maximal(candidates);
            maximal
                .into_iter()
                .min_by_key(|r| (last_considered[r.0].unwrap_or(0), last_considered[r.0].is_some(), *r))
        }
        SelectionStrategy::MostRecentlyConsidered => {
            let maximal = priorities.maximal(candidates);
            maximal.into_iter().min_by_key(|r| {
                // Most recent first: invert the timestamp; never-considered last.
                let ts = last_considered[r.0];
                (ts.is_none(), u64::MAX - ts.unwrap_or(0), *r)
            })
        }
    }
}

/// Memoized trigger checks for one rule-processing pass.
///
/// The Figure 1 loop re-derives the triggered set on every iteration, but
/// a rule's `triggered_by` verdict only changes when its composite window
/// does — i.e. after a transition is applied ([`TriggerMemo::invalidate_all`])
/// or after a footnote-8 per-rule window reset ([`TriggerMemo::invalidate`]).
/// Between those points the cached verdict is authoritative, which keeps
/// candidate collection O(rules) instead of O(rules × window).
#[derive(Debug)]
pub struct TriggerMemo {
    cached: Vec<Option<bool>>,
}

impl TriggerMemo {
    /// A memo for `n` rules with no cached verdicts.
    pub fn new(n: usize) -> Self {
        Self { cached: vec![None; n] }
    }

    /// The cached verdict for `rid`, computing (and caching) it on a miss.
    pub fn check(&mut self, rid: RuleId, compute: impl FnOnce() -> bool) -> bool {
        *self.cached[rid.0].get_or_insert_with(compute)
    }

    /// Drop one rule's verdict (its window was reset).
    pub fn invalidate(&mut self, rid: RuleId) {
        self.cached[rid.0] = None;
    }

    /// Drop every verdict (a transition touched all windows).
    pub fn invalidate_all(&mut self) {
        self.cached.fill(None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: usize) -> RuleId {
        RuleId(n)
    }

    #[test]
    fn trigger_memo_caches_until_invalidated() {
        let mut memo = TriggerMemo::new(2);
        let mut calls = 0;
        assert!(memo.check(r(0), || {
            calls += 1;
            true
        }));
        // Hit: the closure must not run again.
        assert!(memo.check(r(0), || unreachable!("cached")));
        assert_eq!(calls, 1);

        memo.invalidate(r(0));
        assert!(!memo.check(r(0), || false), "recomputed after invalidate");
        // r1 was never cached; r0 now caches `false`.
        assert!(!memo.check(r(0), || unreachable!("cached")));
    }

    #[test]
    fn trigger_memo_invalidate_all_clears_every_rule() {
        let mut memo = TriggerMemo::new(3);
        for i in 0..3 {
            memo.check(r(i), || i % 2 == 0);
        }
        memo.invalidate_all();
        for i in 0..3 {
            assert!(memo.check(r(i), || true), "all verdicts recomputed");
        }
    }

    #[test]
    fn creation_order_ignores_priorities() {
        let mut g = PriorityGraph::new();
        g.add(r(2), r(0));
        let picked = select_rule(SelectionStrategy::CreationOrder, &g, &[r(2), r(0)], &[None; 3]);
        assert_eq!(picked, Some(r(0)));
    }

    #[test]
    fn partial_order_prefers_maximal() {
        let mut g = PriorityGraph::new();
        g.add(r(2), r(0));
        let picked = select_rule(SelectionStrategy::PartialOrder, &g, &[r(2), r(0)], &[None; 3]);
        assert_eq!(picked, Some(r(2)));
        // Incomparable maxima tie-break by creation order.
        let picked = select_rule(SelectionStrategy::PartialOrder, &g, &[r(1), r(2)], &[None; 3]);
        assert_eq!(picked, Some(r(1)));
    }

    #[test]
    fn lrc_prefers_never_considered_then_oldest() {
        let g = PriorityGraph::new();
        let last = vec![Some(5), None, Some(3)];
        let picked =
            select_rule(SelectionStrategy::LeastRecentlyConsidered, &g, &[r(0), r(1), r(2)], &last);
        assert_eq!(picked, Some(r(1)), "never-considered wins");
        let last = vec![Some(5), Some(9), Some(3)];
        let picked =
            select_rule(SelectionStrategy::LeastRecentlyConsidered, &g, &[r(0), r(1), r(2)], &last);
        assert_eq!(picked, Some(r(2)), "timestamp 3 is oldest");
    }

    #[test]
    fn mrc_prefers_most_recent_then_creation() {
        let g = PriorityGraph::new();
        let last = vec![Some(5), None, Some(9)];
        let picked =
            select_rule(SelectionStrategy::MostRecentlyConsidered, &g, &[r(0), r(1), r(2)], &last);
        assert_eq!(picked, Some(r(2)));
        // All never considered: creation order.
        let picked =
            select_rule(SelectionStrategy::MostRecentlyConsidered, &g, &[r(2), r(1)], &[None; 3]);
        assert_eq!(picked, Some(r(1)));
    }

    #[test]
    fn recency_strategies_respect_priorities() {
        let mut g = PriorityGraph::new();
        g.add(r(0), r(1));
        // r1 is least recently considered but r0 dominates it.
        let last = vec![Some(9), Some(1)];
        let picked =
            select_rule(SelectionStrategy::LeastRecentlyConsidered, &g, &[r(0), r(1)], &last);
        assert_eq!(picked, Some(r(0)));
    }

    #[test]
    fn empty_candidates() {
        let g = PriorityGraph::new();
        assert_eq!(select_rule(SelectionStrategy::PartialOrder, &g, &[], &[]), None);
    }
}
