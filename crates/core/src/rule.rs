//! Compiled production rules.
//!
//! A rule (paper §3) has a transition predicate (a disjunction of basic
//! predicates), an optional SQL condition, and an action — an operation
//! block, `rollback`, or (the §5.2 extension) an external procedure.
//! Rules are compiled at creation time: table names are resolved to ids,
//! and every transition-table reference in the condition and action is
//! checked against the rule's predicates (the §3 syntactic restriction).

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

use setrules_sql::ast::{
    BasicTransPred, CreateRule, DmlOp, Expr, InsertSource, RuleAction, SelectItem, SelectStmt,
    TableSource, TransitionKind,
};
use setrules_storage::{ColumnId, Database, TableId};

use crate::error::RuleError;
use crate::external::ExternalAction;
use crate::transinfo::TransInfo;

/// Identifies a rule within a [`crate::RuleSystem`] (its creation index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RuleId(pub usize);

/// A compiled basic transition predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompiledPred {
    /// `inserted into t`
    Inserted(TableId),
    /// `deleted from t`
    Deleted(TableId),
    /// `updated t[.c]`
    Updated(TableId, Option<ColumnId>),
    /// `selected t[.c]` (§5.1 extension)
    Selected(TableId, Option<ColumnId>),
}

impl CompiledPred {
    /// Compile a parsed predicate against the catalog.
    pub fn compile(db: &Database, p: &BasicTransPred) -> Result<CompiledPred, RuleError> {
        let tid = db.table_id(p.table())?;
        Ok(match p {
            BasicTransPred::InsertedInto(_) => CompiledPred::Inserted(tid),
            BasicTransPred::DeletedFrom(_) => CompiledPred::Deleted(tid),
            BasicTransPred::Updated { column, .. } => {
                let c = column.as_ref().map(|c| db.schema(tid).column_id(c)).transpose()?;
                CompiledPred::Updated(tid, c)
            }
            BasicTransPred::Selected { column, .. } => {
                let c = column.as_ref().map(|c| db.schema(tid).column_id(c)).transpose()?;
                CompiledPred::Selected(tid, c)
            }
        })
    }

    /// Whether this predicate holds with respect to a window (§3: "holds
    /// with respect to any transition effect in which …").
    pub fn satisfied_by(&self, db: &Database, info: &TransInfo) -> bool {
        match self {
            CompiledPred::Inserted(t) => info.ins.iter().any(|h| db.table_of(*h) == Some(*t)),
            CompiledPred::Deleted(t) => info.del.values().any(|e| e.table == *t),
            CompiledPred::Updated(t, col) => info
                .upd
                .values()
                .any(|e| e.table == *t && col.is_none_or(|c| e.columns.contains(&c))),
            CompiledPred::Selected(t, col) => info.sel.values().any(|e| {
                e.table == *t
                    && col.is_none_or(|c| match &e.columns {
                        None => true,
                        Some(cols) => cols.contains(&c),
                    })
            }),
        }
    }

    /// The transition tables this predicate licenses (paper §3):
    /// `inserted into t` → `inserted t`; `deleted from t` → `deleted t`;
    /// `updated t[.c]` → `old updated t[.c]` and `new updated t[.c]`;
    /// `selected t[.c]` → `selected t[.c]`.
    pub fn licensed_tables(&self) -> Vec<(TransitionKind, TableId, Option<ColumnId>)> {
        match self {
            CompiledPred::Inserted(t) => vec![(TransitionKind::Inserted, *t, None)],
            CompiledPred::Deleted(t) => vec![(TransitionKind::Deleted, *t, None)],
            CompiledPred::Updated(t, c) => vec![
                (TransitionKind::OldUpdated, *t, *c),
                (TransitionKind::NewUpdated, *t, *c),
            ],
            CompiledPred::Selected(t, c) => vec![(TransitionKind::Selected, *t, *c)],
        }
    }
}

/// A compiled rule action.
#[derive(Clone)]
pub enum CompiledAction {
    /// An operation block (one transition when executed). `Arc`d so the
    /// per-firing clone the engine takes (to release the rules borrow) is
    /// a pointer copy, and so the ops' AST addresses stay stable for the
    /// rule's plan cache.
    Block(Arc<Vec<DmlOp>>),
    /// Roll the transaction back to its start state.
    Rollback,
    /// An external procedure (§5.2 extension). Its database operations
    /// still form an operation block — see [`crate::external`].
    External(Arc<dyn ExternalAction>),
}

impl fmt::Debug for CompiledAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompiledAction::Block(ops) => f.debug_tuple("Block").field(&ops.len()).finish(),
            CompiledAction::Rollback => write!(f, "Rollback"),
            CompiledAction::External(_) => write!(f, "External(..)"),
        }
    }
}

/// A compiled production rule.
#[derive(Debug, Clone)]
pub struct Rule {
    /// Unique rule name.
    pub name: String,
    /// Creation index.
    pub id: RuleId,
    /// The transition predicate: a disjunction of basic predicates.
    pub when: Vec<CompiledPred>,
    /// Optional condition (omitted ⇒ `if true`).
    pub condition: Option<Expr>,
    /// The action.
    pub action: CompiledAction,
    /// Deactivated rules stay defined but never trigger.
    pub active: bool,
    /// Dropped rules keep their slot (ids are creation indexes) but are
    /// inert and invisible.
    pub dropped: bool,
    /// Transition tables the rule may reference.
    pub licensed: BTreeSet<(TransitionKind, TableId, Option<ColumnId>)>,
    /// Tables mentioned anywhere in the rule (predicates, condition,
    /// action) — used to refuse dropping tables rules depend on.
    pub referenced_tables: BTreeSet<TableId>,
}

impl Rule {
    /// Whether the rule is triggered by the given window.
    pub fn triggered_by(&self, db: &Database, info: &TransInfo) -> bool {
        self.active && self.when.iter().any(|p| p.satisfied_by(db, info))
    }

    /// Compile a parsed `create rule` against the catalog, enforcing the
    /// §3 restriction on transition-table references.
    pub fn compile(db: &Database, id: RuleId, def: &CreateRule) -> Result<Rule, RuleError> {
        let mut when = Vec::with_capacity(def.when.len());
        for p in &def.when {
            when.push(CompiledPred::compile(db, p)?);
        }
        let mut licensed = BTreeSet::new();
        for p in &when {
            licensed.extend(p.licensed_tables());
        }

        // Collect every transition-table reference in condition and action
        // and check it against the licensed set.
        let mut trefs: Vec<(TransitionKind, String, Option<String>)> = Vec::new();
        if let Some(c) = &def.condition {
            collect_trefs_expr(c, &mut trefs);
        }
        if let RuleAction::Block(ops) = &def.action {
            for op in ops {
                collect_trefs_op(op, &mut trefs);
            }
        }
        for (kind, table, column) in &trefs {
            let tid = db.table_id(table)?;
            let col = column.as_ref().map(|c| db.schema(tid).column_id(c)).transpose()?;
            if !licensed.contains(&(*kind, tid, col)) {
                return Err(RuleError::IllegalTransitionTable {
                    rule: def.name.clone(),
                    reference: setrules_query::describe(*kind, table, column.as_deref()),
                });
            }
        }

        // Tables referenced anywhere (for drop-table protection).
        let mut referenced_tables: BTreeSet<TableId> = BTreeSet::new();
        for p in &when {
            referenced_tables.insert(match p {
                CompiledPred::Inserted(t)
                | CompiledPred::Deleted(t)
                | CompiledPred::Updated(t, _)
                | CompiledPred::Selected(t, _) => *t,
            });
        }
        let mut names: BTreeSet<String> = BTreeSet::new();
        if let Some(c) = &def.condition {
            collect_tables_expr(c, &mut names);
        }
        if let RuleAction::Block(ops) = &def.action {
            for op in ops {
                collect_tables_op(op, &mut names);
            }
        }
        for n in names {
            if let Ok(t) = db.table_id(&n) {
                referenced_tables.insert(t);
            }
        }

        let action = match &def.action {
            RuleAction::Block(ops) => CompiledAction::Block(Arc::new(ops.clone())),
            RuleAction::Rollback => CompiledAction::Rollback,
        };
        Ok(Rule {
            name: def.name.clone(),
            id,
            when,
            condition: def.condition.clone(),
            action,
            active: true,
            dropped: false,
            licensed,
            referenced_tables,
        })
    }
}

// ----------------------------------------------------------------------
// AST walkers: transition-table references and stored-table names.
// ----------------------------------------------------------------------

fn collect_trefs_select(s: &SelectStmt, out: &mut Vec<(TransitionKind, String, Option<String>)>) {
    for t in &s.from {
        if let TableSource::Transition { kind, table, column } = &t.source {
            out.push((*kind, table.clone(), column.clone()));
        }
    }
    for item in &s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_trefs_expr(expr, out);
        }
    }
    for e in s
        .predicate
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e))
    {
        collect_trefs_expr(e, out);
    }
}

fn collect_trefs_expr(e: &Expr, out: &mut Vec<(TransitionKind, String, Option<String>)>) {
    match e {
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_trefs_expr(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_trefs_expr(left, out);
            collect_trefs_expr(right, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_trefs_expr(expr, out);
            for i in list {
                collect_trefs_expr(i, out);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_trefs_expr(expr, out);
            collect_trefs_select(subquery, out);
        }
        Expr::Exists { subquery, .. } => collect_trefs_select(subquery, out),
        Expr::ScalarSubquery(s) => collect_trefs_select(s, out),
        Expr::Between { expr, low, high, .. } => {
            collect_trefs_expr(expr, out);
            collect_trefs_expr(low, out);
            collect_trefs_expr(high, out);
        }
        Expr::Like { expr, pattern, escape, .. } => {
            collect_trefs_expr(expr, out);
            collect_trefs_expr(pattern, out);
            if let Some(e) = escape {
                collect_trefs_expr(e, out);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_trefs_expr(a, out);
            }
        }
    }
}

fn collect_trefs_op(op: &DmlOp, out: &mut Vec<(TransitionKind, String, Option<String>)>) {
    match op {
        DmlOp::Select(s) => collect_trefs_select(s, out),
        DmlOp::Insert(i) => match &i.source {
            InsertSource::Values(rows) => {
                for row in rows {
                    for e in row {
                        collect_trefs_expr(e, out);
                    }
                }
            }
            InsertSource::Select(s) => collect_trefs_select(s, out),
        },
        DmlOp::Delete(d) => {
            if let Some(p) = &d.predicate {
                collect_trefs_expr(p, out);
            }
        }
        DmlOp::Update(u) => {
            for (_, e) in &u.sets {
                collect_trefs_expr(e, out);
            }
            if let Some(p) = &u.predicate {
                collect_trefs_expr(p, out);
            }
        }
    }
}

fn collect_tables_select(s: &SelectStmt, out: &mut BTreeSet<String>) {
    for t in &s.from {
        match &t.source {
            TableSource::Named(n) => {
                out.insert(n.clone());
            }
            TableSource::Transition { table, .. } => {
                out.insert(table.clone());
            }
        }
    }
    for item in &s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_tables_expr(expr, out);
        }
    }
    for e in s
        .predicate
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e))
    {
        collect_tables_expr(e, out);
    }
}

fn collect_tables_expr(e: &Expr, out: &mut BTreeSet<String>) {
    match e {
        Expr::Literal(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_tables_expr(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_tables_expr(left, out);
            collect_tables_expr(right, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_tables_expr(expr, out);
            for i in list {
                collect_tables_expr(i, out);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_tables_expr(expr, out);
            collect_tables_select(subquery, out);
        }
        Expr::Exists { subquery, .. } => collect_tables_select(subquery, out),
        Expr::ScalarSubquery(s) => collect_tables_select(s, out),
        Expr::Between { expr, low, high, .. } => {
            collect_tables_expr(expr, out);
            collect_tables_expr(low, out);
            collect_tables_expr(high, out);
        }
        Expr::Like { expr, pattern, escape, .. } => {
            collect_tables_expr(expr, out);
            collect_tables_expr(pattern, out);
            if let Some(e) = escape {
                collect_tables_expr(e, out);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_tables_expr(a, out);
            }
        }
    }
}

/// Collect stored-table names mentioned by an operation (targets and all
/// query references). Public for use by the static analyzer.
pub fn collect_tables_op(op: &DmlOp, out: &mut BTreeSet<String>) {
    match op {
        DmlOp::Select(s) => collect_tables_select(s, out),
        DmlOp::Insert(i) => {
            out.insert(i.table.clone());
            match &i.source {
                InsertSource::Values(rows) => {
                    for row in rows {
                        for e in row {
                            collect_tables_expr(e, out);
                        }
                    }
                }
                InsertSource::Select(s) => collect_tables_select(s, out),
            }
        }
        DmlOp::Delete(d) => {
            out.insert(d.table.clone());
            if let Some(p) = &d.predicate {
                collect_tables_expr(p, out);
            }
        }
        DmlOp::Update(u) => {
            out.insert(u.table.clone());
            for (_, e) in &u.sets {
                collect_tables_expr(e, out);
            }
            if let Some(p) = &u.predicate {
                collect_tables_expr(p, out);
            }
        }
    }
}
