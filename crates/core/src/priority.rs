//! The rule priority partial order (paper §4.4).
//!
//! `create rule priority r1 before r2` makes `r1` strictly higher than
//! `r2`; "any acyclic group of such pairings induces a partial order on
//! the set of defined rules". Adding a pair that would create a cycle is
//! rejected.

use std::collections::{BTreeMap, BTreeSet};

use crate::rule::RuleId;

/// A DAG of `higher → lower` priority edges.
#[derive(Debug, Clone, Default)]
pub struct PriorityGraph {
    edges: BTreeMap<RuleId, BTreeSet<RuleId>>,
}

impl PriorityGraph {
    /// An empty (fully unordered) priority relation.
    pub fn new() -> Self {
        PriorityGraph::default()
    }

    /// Declare `higher` before `lower`. Returns `false` (and changes
    /// nothing) if the edge would create a cycle; duplicate edges are
    /// accepted idempotently.
    pub fn add(&mut self, higher: RuleId, lower: RuleId) -> bool {
        if higher == lower || self.higher_than(lower, higher) {
            return false;
        }
        self.edges.entry(higher).or_default().insert(lower);
        true
    }

    /// Whether `a` is strictly higher-priority than `b` (transitively).
    pub fn higher_than(&self, a: RuleId, b: RuleId) -> bool {
        if a == b {
            return false;
        }
        let mut stack = vec![a];
        let mut seen = BTreeSet::new();
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(lows) = self.edges.get(&n) {
                if lows.contains(&b) {
                    return true;
                }
                stack.extend(lows.iter().copied());
            }
        }
        false
    }

    /// The maximal elements of `candidates` under this partial order: those
    /// with no strictly-higher candidate (§4.4: "a rule is chosen such that
    /// no other triggered rule is strictly higher in the ordering").
    pub fn maximal(&self, candidates: &[RuleId]) -> Vec<RuleId> {
        candidates
            .iter()
            .copied()
            .filter(|&c| !candidates.iter().any(|&o| o != c && self.higher_than(o, c)))
            .collect()
    }

    /// Remove every edge touching `r` (rule dropped).
    pub fn remove_rule(&mut self, r: RuleId) {
        self.edges.remove(&r);
        for lows in self.edges.values_mut() {
            lows.remove(&r);
        }
    }

    /// All declared (higher, lower) pairs, for introspection.
    pub fn pairs(&self) -> impl Iterator<Item = (RuleId, RuleId)> + '_ {
        self.edges
            .iter()
            .flat_map(|(h, lows)| lows.iter().map(move |l| (*h, *l)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: usize) -> RuleId {
        RuleId(n)
    }

    #[test]
    fn transitivity() {
        let mut g = PriorityGraph::new();
        assert!(g.add(r(1), r(2)));
        assert!(g.add(r(2), r(3)));
        assert!(g.higher_than(r(1), r(3)));
        assert!(!g.higher_than(r(3), r(1)));
        assert!(!g.higher_than(r(1), r(1)));
    }

    #[test]
    fn cycles_rejected() {
        let mut g = PriorityGraph::new();
        assert!(g.add(r(1), r(2)));
        assert!(g.add(r(2), r(3)));
        assert!(!g.add(r(3), r(1)), "would close a cycle");
        assert!(!g.add(r(1), r(1)), "self-loop");
        // The failed add changed nothing.
        assert!(!g.higher_than(r(3), r(1)));
    }

    #[test]
    fn maximal_elements() {
        let mut g = PriorityGraph::new();
        g.add(r(1), r(2));
        g.add(r(3), r(2));
        // 1 and 3 are incomparable maxima; 2 is dominated.
        let m = g.maximal(&[r(1), r(2), r(3)]);
        assert_eq!(m, vec![r(1), r(3)]);
        // Without 1 and 3 present, 2 is maximal.
        assert_eq!(g.maximal(&[r(2)]), vec![r(2)]);
        // Unrelated rule is always maximal.
        assert_eq!(g.maximal(&[r(2), r(9)]), vec![r(2), r(9)]);
    }

    #[test]
    fn remove_rule_clears_edges() {
        let mut g = PriorityGraph::new();
        g.add(r(1), r(2));
        g.add(r(2), r(3));
        g.remove_rule(r(2));
        assert!(!g.higher_than(r(1), r(3)));
        assert!(g.pairs().all(|(h, l)| h != r(2) && l != r(2)), "no edges touch the removed rule");
    }

    #[test]
    fn duplicate_edge_idempotent() {
        let mut g = PriorityGraph::new();
        assert!(g.add(r(1), r(2)));
        assert!(g.add(r(1), r(2)));
        assert_eq!(g.pairs().count(), 1);
    }
}
