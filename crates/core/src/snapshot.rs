//! Snapshot and restore: serialize a whole [`RuleSystem`] — schemas, data,
//! indexes, rules, priorities — to a plain structure with a JSON encoding
//! ([`Snapshot::to_json`] / [`Snapshot::from_json`]).
//!
//! Restores re-execute canonical DDL and re-insert rows, so **tuple
//! handles are not preserved** (they are never reused within one system,
//! §2, but a restored system starts a fresh handle space). There are no
//! open transactions or rule windows to carry: snapshots are taken at
//! quiescence.
//!
//! Rules with [external actions](crate::external) are native code and
//! cannot be serialized; snapshotting a system that has any raises
//! [`RuleError::Unsupported`].

use setrules_json::{Json, JsonError};
use setrules_sql::ast::{BasicTransPred, CreateRule, RuleAction};
use setrules_storage::{DataType, IndexKind, Value};

use crate::engine::RuleSystem;
use crate::error::RuleError;
use crate::rule::{CompiledAction, CompiledPred};

/// A serializable image of one table.
#[derive(Debug, Clone)]
pub struct TableSnapshot {
    /// Table name.
    pub name: String,
    /// Columns in declaration order.
    pub columns: Vec<(String, DataType)>,
    /// Indexed columns with their index kind.
    pub indexes: Vec<(String, IndexKind)>,
    /// Rows in handle (insertion) order.
    pub rows: Vec<Vec<Value>>,
}

/// A serializable image of a whole rule system.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Tables in creation order.
    pub tables: Vec<TableSnapshot>,
    /// `create rule` statements in canonical SQL, in creation order.
    pub rules: Vec<String>,
    /// Names of rules that were deactivated.
    pub deactivated: Vec<String>,
    /// Priority pairs as (higher, lower) rule names.
    pub priorities: Vec<(String, String)>,
}

fn str_array(items: &[String]) -> Json {
    Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect())
}

fn read_str_array(json: &Json, field: &str) -> Result<Vec<String>, RuleError> {
    json.get(field)
        .and_then(Json::as_array)
        .ok_or_else(|| bad_snapshot(field))?
        .iter()
        .map(|v| v.as_str().map(str::to_string).ok_or_else(|| bad_snapshot(field)))
        .collect()
}

fn bad_snapshot(what: &str) -> RuleError {
    RuleError::Unsupported(format!("malformed snapshot JSON: bad or missing '{what}'"))
}

impl TableSnapshot {
    /// JSON form of one table image.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("name", Json::Str(self.name.clone())),
            (
                "columns",
                Json::Array(
                    self.columns
                        .iter()
                        .map(|(n, ty)| Json::Array(vec![Json::Str(n.clone()), ty.to_json()]))
                        .collect(),
                ),
            ),
            (
                // Hash indexes encode as a bare column name (the format
                // before index kinds existed); ordered indexes as a
                // `[column, kind]` pair, so old snapshots keep parsing.
                "indexes",
                Json::Array(
                    self.indexes
                        .iter()
                        .map(|(c, k)| match k {
                            IndexKind::Hash => Json::Str(c.clone()),
                            IndexKind::Ordered => Json::Array(vec![
                                Json::Str(c.clone()),
                                Json::Str(k.name().to_string()),
                            ]),
                        })
                        .collect(),
                ),
            ),
            (
                "rows",
                Json::Array(
                    self.rows
                        .iter()
                        .map(|r| Json::Array(r.iter().map(Value::to_json).collect()))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the JSON form written by [`TableSnapshot::to_json`].
    pub fn from_json(json: &Json) -> Result<TableSnapshot, RuleError> {
        let name = json
            .get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| bad_snapshot("name"))?
            .to_string();
        let mut columns = Vec::new();
        for col in json.get("columns").and_then(Json::as_array).ok_or_else(|| bad_snapshot("columns"))? {
            let pair = col.as_array().ok_or_else(|| bad_snapshot("columns"))?;
            let [n, ty] = pair else {
                return Err(bad_snapshot("columns"));
            };
            columns.push((
                n.as_str().ok_or_else(|| bad_snapshot("columns"))?.to_string(),
                DataType::from_json(ty).ok_or_else(|| bad_snapshot("columns"))?,
            ));
        }
        let mut indexes = Vec::new();
        for idx in json.get("indexes").and_then(Json::as_array).ok_or_else(|| bad_snapshot("indexes"))? {
            indexes.push(match idx {
                Json::Str(c) => (c.clone(), IndexKind::Hash),
                Json::Array(pair) => {
                    let [c, k] = pair.as_slice() else {
                        return Err(bad_snapshot("indexes"));
                    };
                    let c = c.as_str().ok_or_else(|| bad_snapshot("indexes"))?.to_string();
                    let kind = match k.as_str() {
                        Some("hash") => IndexKind::Hash,
                        Some("ordered") => IndexKind::Ordered,
                        _ => return Err(bad_snapshot("indexes")),
                    };
                    (c, kind)
                }
                _ => return Err(bad_snapshot("indexes")),
            });
        }
        let mut rows = Vec::new();
        for row in json.get("rows").and_then(Json::as_array).ok_or_else(|| bad_snapshot("rows"))? {
            let vals = row.as_array().ok_or_else(|| bad_snapshot("rows"))?;
            rows.push(
                vals.iter()
                    .map(|v| Value::from_json(v).ok_or_else(|| bad_snapshot("rows")))
                    .collect::<Result<Vec<Value>, RuleError>>()?,
            );
        }
        Ok(TableSnapshot { name, columns, indexes, rows })
    }
}

impl Snapshot {
    /// JSON form of the whole snapshot.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("tables", Json::Array(self.tables.iter().map(TableSnapshot::to_json).collect())),
            ("rules", str_array(&self.rules)),
            ("deactivated", str_array(&self.deactivated)),
            (
                "priorities",
                Json::Array(
                    self.priorities
                        .iter()
                        .map(|(h, l)| Json::Array(vec![Json::Str(h.clone()), Json::Str(l.clone())]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse the JSON form written by [`Snapshot::to_json`].
    pub fn from_json(json: &Json) -> Result<Snapshot, RuleError> {
        let mut tables = Vec::new();
        for t in json.get("tables").and_then(Json::as_array).ok_or_else(|| bad_snapshot("tables"))? {
            tables.push(TableSnapshot::from_json(t)?);
        }
        let rules = read_str_array(json, "rules")?;
        let deactivated = read_str_array(json, "deactivated")?;
        let mut priorities = Vec::new();
        for p in json
            .get("priorities")
            .and_then(Json::as_array)
            .ok_or_else(|| bad_snapshot("priorities"))?
        {
            let pair = p.as_array().ok_or_else(|| bad_snapshot("priorities"))?;
            let [h, l] = pair else {
                return Err(bad_snapshot("priorities"));
            };
            priorities.push((
                h.as_str().ok_or_else(|| bad_snapshot("priorities"))?.to_string(),
                l.as_str().ok_or_else(|| bad_snapshot("priorities"))?.to_string(),
            ));
        }
        Ok(Snapshot { tables, rules, deactivated, priorities })
    }

    /// Serialize to a pretty-printed JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_json().pretty()
    }

    /// Parse a JSON string produced by [`Snapshot::to_json_string`].
    pub fn from_json_str(text: &str) -> Result<Snapshot, RuleError> {
        let json = Json::parse(text)
            .map_err(|e: JsonError| RuleError::Unsupported(format!("snapshot parse: {e}")))?;
        Snapshot::from_json(&json)
    }
}

impl RuleSystem {
    /// Capture a snapshot of this system. Fails inside a transaction or if
    /// any rule has a native (external) action.
    pub fn snapshot(&self) -> Result<Snapshot, RuleError> {
        if self.in_transaction() {
            return Err(RuleError::TransactionOpen);
        }
        if !self.deferred_window().is_empty() {
            // A snapshot has no encoding for an in-flight deferred window;
            // taking one here would silently drop the pending transitions
            // on restore.
            return Err(RuleError::Unsupported(
                "snapshot with pending deferred transitions would silently drop them; \
                 call process_deferred() or clear_deferred() first"
                    .into(),
            ));
        }
        let db = self.database();
        let mut tables = Vec::new();
        for tid in db.table_ids() {
            let Some(table) = db.try_table(tid) else {
                continue; // dropped
            };
            let schema = &table.schema;
            let columns: Vec<(String, DataType)> =
                schema.columns.iter().map(|c| (c.name.clone(), c.ty)).collect();
            let indexes = (0..schema.arity())
                .map(|i| setrules_storage::ColumnId(i as u16))
                .filter_map(|c| {
                    db.index_kind(tid, c).map(|k| (schema.column_name(c).to_string(), k))
                })
                .collect();
            let rows = table.scan().map(|(_, t)| t.0.clone()).collect();
            tables.push(TableSnapshot { name: schema.name.clone(), columns, indexes, rows });
        }

        let mut rules = Vec::new();
        let mut deactivated = Vec::new();
        for r in self.rules() {
            let def = self.rule_to_ast(r)?;
            rules.push(setrules_sql::ast::Statement::CreateRule(def).to_string());
            if !r.active {
                deactivated.push(r.name.clone());
            }
        }
        Ok(Snapshot { tables, rules, deactivated, priorities: self.priority_pairs() })
    }

    /// Reconstruct a system from a snapshot (with the given engine
    /// configuration).
    pub fn restore(snap: &Snapshot, config: crate::EngineConfig) -> Result<RuleSystem, RuleError> {
        let mut sys = RuleSystem::with_config(config);
        for t in &snap.tables {
            let cols: Vec<String> =
                t.columns.iter().map(|(n, ty)| format!("{n} {ty}")).collect();
            sys.execute(&format!("create table {} ({})", t.name, cols.join(", ")))?;
            for (c, kind) in &t.indexes {
                sys.execute(&format!("create index on {} ({}) using {}", t.name, c, kind))?;
            }
            // Load rows without rule processing (rules are not defined yet
            // anyway; this also keeps the deferred window clean).
            for chunk in t.rows.chunks(256) {
                if chunk.is_empty() {
                    continue;
                }
                let rows: Vec<String> = chunk
                    .iter()
                    .map(|row| {
                        let vals: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                        format!("({})", vals.join(", "))
                    })
                    .collect();
                sys.transaction_without_rules(&format!(
                    "insert into {} values {}",
                    t.name,
                    rows.join(", ")
                ))?;
            }
        }
        // Discard the load-time deferred window: the snapshot is a start
        // state, not a pending transition.
        sys.clear_deferred();
        for r in &snap.rules {
            sys.create_rule_str(r)?;
        }
        for name in &snap.deactivated {
            sys.set_rule_active(name, false)?;
        }
        for (h, l) in &snap.priorities {
            sys.add_priority(h, l)?;
        }
        Ok(sys)
    }

    /// Rebuild the parsed form of a compiled rule (canonical SQL source).
    fn rule_to_ast(&self, r: &crate::Rule) -> Result<CreateRule, RuleError> {
        let db = self.database();
        let mut when = Vec::with_capacity(r.when.len());
        for p in &r.when {
            when.push(match p {
                CompiledPred::Inserted(t) => {
                    BasicTransPred::InsertedInto(db.schema(*t).name.clone())
                }
                CompiledPred::Deleted(t) => BasicTransPred::DeletedFrom(db.schema(*t).name.clone()),
                CompiledPred::Updated(t, c) => BasicTransPred::Updated {
                    table: db.schema(*t).name.clone(),
                    column: c.map(|c| db.schema(*t).column_name(c).to_string()),
                },
                CompiledPred::Selected(t, c) => BasicTransPred::Selected {
                    table: db.schema(*t).name.clone(),
                    column: c.map(|c| db.schema(*t).column_name(c).to_string()),
                },
            });
        }
        let action = match &r.action {
            CompiledAction::Block(ops) => RuleAction::Block(ops.as_ref().clone()),
            CompiledAction::Rollback => RuleAction::Rollback,
            CompiledAction::External(_) => {
                return Err(RuleError::Unsupported(format!(
                    "rule '{}' has a native action and cannot be snapshotted",
                    r.name
                )))
            }
        };
        Ok(CreateRule { name: r.name.clone(), when, condition: r.condition.clone(), action })
    }
}
