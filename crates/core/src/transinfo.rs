//! Per-rule composite transition information — the `R.trans-info` of the
//! paper's Figure 1 algorithm.
//!
//! A [`TransInfo`] describes the net effect of a *window* of transitions
//! (from some start state to the current state) **together with the old
//! values** needed to materialize transition tables, so no historical
//! database states are ever retained (§4.3: "the necessary transition
//! information can be accumulated within transitions"):
//!
//! * `ins` — handles of tuples inserted in the window (current values live
//!   in the database);
//! * `del` — tuples deleted in the window, with their values as of the
//!   window start (Fig. 1's `del` of type *set of tuple value*);
//! * `upd` — tuples updated in the window, with the set of updated columns
//!   and **one full old tuple** as of the window start (Fig. 1 stores
//!   `(h, c, v)` triples where "all `(h,c,v)`'s in `upd` have the same
//!   `v`" — `v` is the whole old tuple);
//! * `sel` — tuples read in the window (§5.1 extension; current values).
//!
//! [`TransInfo::absorb`] implements Fig. 1's `init-trans-info` /
//! `modify-trans-info` generalized to compose *any* later window, so a
//! whole operation block can be folded in at once; absorbing op-by-op or
//! block-at-once yields identical results (property-tested).

use std::collections::{BTreeMap, BTreeSet};

use setrules_query::OpEffect;
use setrules_storage::{ColumnId, TableId, Tuple, TupleHandle};

use crate::effect::TransitionEffect;

/// A deleted tuple recorded in a window: its table and its value at the
/// window start.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DelEntry {
    /// The table the tuple belonged to.
    pub table: TableId,
    /// The tuple's value at the window start (before any in-window updates).
    pub old: Tuple,
}

/// An updated tuple recorded in a window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdEntry {
    /// The table the tuple belongs to.
    pub table: TableId,
    /// All columns updated within the window (paper: one element per
    /// updated column, even if a value was re-assigned unchanged).
    pub columns: BTreeSet<ColumnId>,
    /// The tuple's full value at the window start.
    pub old: Tuple,
}

/// A selected (read) tuple recorded in a window (§5.1 extension).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelEntry {
    /// The table the tuple belongs to.
    pub table: TableId,
    /// Columns read; `None` means all columns (wildcard projection).
    pub columns: Option<BTreeSet<ColumnId>>,
}

/// Composite transition information for one window.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransInfo {
    /// Handles inserted in the window.
    pub ins: BTreeSet<TupleHandle>,
    /// Tuples deleted in the window, keyed by handle.
    pub del: BTreeMap<TupleHandle, DelEntry>,
    /// Tuples updated in the window, keyed by handle.
    pub upd: BTreeMap<TupleHandle, UpdEntry>,
    /// Tuples selected in the window, keyed by handle (§5.1 extension).
    pub sel: BTreeMap<TupleHandle, SelEntry>,
}

impl TransInfo {
    /// The empty window.
    pub fn new() -> Self {
        TransInfo::default()
    }

    /// Whether the window saw no changes (and no tracked reads).
    pub fn is_empty(&self) -> bool {
        self.ins.is_empty() && self.del.is_empty() && self.upd.is_empty() && self.sel.is_empty()
    }

    /// Total number of entries (used by benches to size windows).
    pub fn cardinality(&self) -> usize {
        self.ins.len() + self.del.len() + self.upd.len() + self.sel.len()
    }

    /// Fold the affected set of one executed operation into this window —
    /// Fig. 1's `modify-trans-info`, with `init-trans-info` being the same
    /// operation applied to an empty window.
    ///
    /// `track_selects` controls whether `Select` effects contribute to
    /// `sel` (the §5.1 extension is optional).
    pub fn absorb(&mut self, eff: &OpEffect, track_selects: bool) {
        match eff {
            OpEffect::Insert { handles, .. } => {
                // ins ← ins ∪ I(E).
                self.ins.extend(handles.iter().copied());
            }
            OpEffect::Delete { table, tuples } => {
                for (h, old_now) in tuples {
                    self.absorb_delete(*table, *h, old_now);
                }
            }
            OpEffect::Update { table, tuples } => {
                for (h, cols, old_now) in tuples {
                    self.absorb_update(*table, *h, cols.iter().copied(), old_now);
                }
            }
            OpEffect::Select { reads, .. } => {
                if track_selects {
                    for (table, h, cols) in reads {
                        self.absorb_select(*table, *h, cols.as_deref());
                    }
                }
            }
        }
    }

    /// Compose a *later* window into this one (this window happened first).
    ///
    /// This is Definition 2.1 lifted to carry old values: for a tuple
    /// deleted or updated in the later window, the old value recorded for
    /// the combined window is this window's old value when one exists
    /// (Fig. 1's `get-old-value`), otherwise the later window's.
    pub fn compose(&mut self, later: &TransInfo) {
        for (h, e) in &later.del {
            self.absorb_delete(e.table, *h, &e.old);
        }
        for (h, e) in &later.upd {
            self.absorb_update(e.table, *h, e.columns.iter().copied(), &e.old);
        }
        for (h, e) in &later.sel {
            self.absorb_select(e.table, *h, e.columns.as_ref().map(|s| {
                // Temporarily collect to a vec for the shared helper.
                s.iter().copied().collect::<Vec<_>>()
            }).as_deref());
        }
        self.ins.extend(later.ins.iter().copied());
    }

    /// A tuple was deleted; `old_now` is its value just before the
    /// deletion (i.e., at the start of the *later* sub-window).
    fn absorb_delete(&mut self, table: TableId, h: TupleHandle, old_now: &Tuple) {
        if self.ins.remove(&h) {
            // Inserted then deleted within the window: no net effect.
            self.upd.remove(&h); // defensive; ins and upd are disjoint
            self.sel.remove(&h);
            return;
        }
        // get-old-value: prefer the window-start value captured by an
        // earlier in-window update.
        let old = match self.upd.remove(&h) {
            Some(u) => u.old,
            None => old_now.clone(),
        };
        self.del.insert(h, DelEntry { table, old });
        self.sel.remove(&h);
    }

    /// A tuple's columns were updated; `old_now` is its value just before
    /// this update.
    fn absorb_update(
        &mut self,
        table: TableId,
        h: TupleHandle,
        cols: impl IntoIterator<Item = ColumnId>,
        old_now: &Tuple,
    ) {
        if self.ins.contains(&h) {
            // Insert-then-update is still just an insert (§2.2).
            return;
        }
        debug_assert!(!self.del.contains_key(&h), "cannot update a deleted tuple");
        match self.upd.get_mut(&h) {
            Some(entry) => {
                // Columns not yet recorded get added; the stored old tuple
                // (window-start value) already covers them, because a
                // column absent from `columns` was unchanged between the
                // window start and now.
                entry.columns.extend(cols);
            }
            None => {
                self.upd.insert(
                    h,
                    UpdEntry { table, columns: cols.into_iter().collect(), old: old_now.clone() },
                );
            }
        }
    }

    /// A tuple was read by a top-level select (§5.1 extension).
    fn absorb_select(&mut self, table: TableId, h: TupleHandle, cols: Option<&[ColumnId]>) {
        if self.ins.contains(&h) {
            // Mirror U's composition: reads of tuples created within the
            // window do not surface (documented choice).
            return;
        }
        match self.sel.get_mut(&h) {
            Some(entry) => match (&mut entry.columns, cols) {
                (Some(set), Some(cs)) => set.extend(cs.iter().copied()),
                (slot, None) => *slot = None,
                (None, _) => {}
            },
            None => {
                self.sel.insert(
                    h,
                    SelEntry { table, columns: cols.map(|cs| cs.iter().copied().collect()) },
                );
            }
        }
    }

    /// Project the pure `[I, D, U, S]` effect (Definition 2.1's triple,
    /// plus `S`). Column expansion for `sel` entries with `columns: None`
    /// uses `all_columns(table)`.
    pub fn effect(&self, all_columns: impl Fn(TableId) -> usize) -> TransitionEffect {
        let mut eff = TransitionEffect::new();
        eff.inserted.extend(self.ins.iter().copied());
        eff.deleted.extend(self.del.keys().copied());
        for (h, e) in &self.upd {
            for c in &e.columns {
                eff.updated.insert((*h, *c));
            }
        }
        for (h, e) in &self.sel {
            match &e.columns {
                Some(cols) => {
                    for c in cols {
                        eff.selected.insert((*h, *c));
                    }
                }
                None => {
                    for i in 0..all_columns(e.table) {
                        eff.selected.insert((*h, ColumnId(i as u16)));
                    }
                }
            }
        }
        eff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_storage::tuple;

    fn h(n: u64) -> TupleHandle {
        TupleHandle(n)
    }
    fn c(n: u16) -> ColumnId {
        ColumnId(n)
    }
    const T: TableId = TableId(0);

    fn ins(hs: &[u64]) -> OpEffect {
        OpEffect::Insert { table: T, handles: hs.iter().map(|n| h(*n)).collect() }
    }
    fn del(ts: &[(u64, i64)]) -> OpEffect {
        OpEffect::Delete {
            table: T,
            tuples: ts.iter().map(|(n, v)| (h(*n), tuple![*v])).collect(),
        }
    }
    fn upd(ts: &[(u64, u16, i64)]) -> OpEffect {
        OpEffect::Update {
            table: T,
            tuples: ts.iter().map(|(n, col, v)| (h(*n), vec![c(*col)], tuple![*v])).collect(),
        }
    }

    #[test]
    fn init_from_single_ops() {
        let mut w = TransInfo::new();
        w.absorb(&ins(&[1, 2]), false);
        assert_eq!(w.ins.len(), 2);
        let mut w = TransInfo::new();
        w.absorb(&del(&[(3, 30)]), false);
        assert_eq!(w.del[&h(3)].old, tuple![30]);
        let mut w = TransInfo::new();
        w.absorb(&upd(&[(4, 0, 40)]), false);
        assert_eq!(w.upd[&h(4)].old, tuple![40]);
        assert!(w.upd[&h(4)].columns.contains(&c(0)));
    }

    #[test]
    fn update_then_delete_keeps_window_start_value() {
        let mut w = TransInfo::new();
        // Tuple 1 was 10 at window start; update saw old=10.
        w.absorb(&upd(&[(1, 0, 10)]), false);
        // Later it is deleted; its value just before deletion is 99.
        w.absorb(&del(&[(1, 99)]), false);
        // Fig. 1's get-old-value: the deleted-tuple value shown to rules is
        // the window-start value 10, not 99.
        assert_eq!(w.del[&h(1)].old, tuple![10]);
        assert!(w.upd.is_empty());
    }

    #[test]
    fn insert_then_delete_cancels() {
        let mut w = TransInfo::new();
        w.absorb(&ins(&[1]), false);
        w.absorb(&del(&[(1, 0)]), false);
        assert!(w.is_empty());
    }

    #[test]
    fn insert_then_update_stays_insert() {
        let mut w = TransInfo::new();
        w.absorb(&ins(&[1]), false);
        w.absorb(&upd(&[(1, 0, 5)]), false);
        assert!(w.upd.is_empty());
        assert!(w.ins.contains(&h(1)));
    }

    #[test]
    fn second_update_keeps_first_old_value_and_merges_columns() {
        let mut w = TransInfo::new();
        w.absorb(&upd(&[(1, 0, 10)]), false);
        w.absorb(&upd(&[(1, 1, 11)]), false); // the tuple now shows 11 pre-op, but col 1's window-start value is in `old`
        let e = &w.upd[&h(1)];
        assert_eq!(e.old, tuple![10], "window-start tuple retained");
        assert_eq!(e.columns, BTreeSet::from([c(0), c(1)]));
    }

    #[test]
    fn compose_blocks_equals_op_by_op() {
        let ops = [
            ins(&[1]),
            upd(&[(1, 0, 0), (2, 1, 20)]),
            del(&[(2, 21)]),
            ins(&[3]),
            upd(&[(3, 0, 0)]),
            del(&[(1, 1)]),
        ];
        // Op by op into one window.
        let mut whole = TransInfo::new();
        for op in &ops {
            whole.absorb(op, false);
        }
        // Two sub-windows composed.
        let mut w1 = TransInfo::new();
        for op in &ops[..3] {
            w1.absorb(op, false);
        }
        let mut w2 = TransInfo::new();
        for op in &ops[3..] {
            w2.absorb(op, false);
        }
        w1.compose(&w2);
        assert_eq!(whole, w1);
        // Net effect: tuple 2 deleted (old 20 from its update capture),
        // tuple 3 inserted; tuple 1 came and went.
        assert_eq!(whole.del[&h(2)].old, tuple![20]);
        assert_eq!(whole.ins, BTreeSet::from([h(3)]));
        assert!(whole.upd.is_empty());
    }

    #[test]
    fn select_tracking_toggle() {
        let reads = OpEffect::Select {
            reads: vec![(T, h(1), Some(vec![c(0)]))],
            output: setrules_query::Relation::empty(vec![]),
        };
        let mut w = TransInfo::new();
        w.absorb(&reads, false);
        assert!(w.sel.is_empty());
        w.absorb(&reads, true);
        assert_eq!(w.sel[&h(1)].columns, Some(BTreeSet::from([c(0)])));
    }

    #[test]
    fn select_column_merging_and_wildcard() {
        let read = |cols: Option<Vec<ColumnId>>| OpEffect::Select {
            reads: vec![(T, h(1), cols)],
            output: setrules_query::Relation::empty(vec![]),
        };
        let mut w = TransInfo::new();
        w.absorb(&read(Some(vec![c(0)])), true);
        w.absorb(&read(Some(vec![c(1)])), true);
        assert_eq!(w.sel[&h(1)].columns, Some(BTreeSet::from([c(0), c(1)])));
        w.absorb(&read(None), true);
        assert_eq!(w.sel[&h(1)].columns, None, "wildcard read covers all columns");
        w.absorb(&read(Some(vec![c(2)])), true);
        assert_eq!(w.sel[&h(1)].columns, None, "stays all-columns");
    }

    #[test]
    fn selected_tuple_deleted_in_window_drops_out() {
        let read = OpEffect::Select {
            reads: vec![(T, h(1), None)],
            output: setrules_query::Relation::empty(vec![]),
        };
        let mut w = TransInfo::new();
        w.absorb(&read, true);
        w.absorb(&del(&[(1, 0)]), true);
        assert!(w.sel.is_empty());
    }

    #[test]
    fn effect_projection() {
        let mut w = TransInfo::new();
        w.absorb(&ins(&[1]), false);
        w.absorb(&upd(&[(2, 0, 5), (2, 1, 5)]), false);
        w.absorb(&del(&[(3, 7)]), false);
        let eff = w.effect(|_| 2);
        assert_eq!(eff.inserted, BTreeSet::from([h(1)]));
        assert_eq!(eff.deleted, BTreeSet::from([h(3)]));
        assert_eq!(eff.updated, BTreeSet::from([(h(2), c(0)), (h(2), c(1))]));
        assert!(eff.check_disjoint());
    }
}
