//! Durable operation: write-ahead logging, crash recovery, checkpoints.
//!
//! The engine logs *physical redo*: every DML statement — external or
//! rule-generated — appends records carrying the exact tuple handles the
//! original execution issued, and a transaction's `Commit` record is
//! synced only after the §4 rule-processing loop finishes, so the rule
//! actions it triggered are part of the same all-or-nothing commit unit.
//! Replay applies a transaction only when its `Commit` is present in the
//! durable prefix; everything after the last synced commit is a crash's
//! lost suffix and recovery discards it.
//!
//! Crash model: an injected WAL fault (or a real sink error) marks the
//! log state `crashed`, discards the unsynced suffix — exactly what a
//! kill would have lost — and from then on the dying "process" writes
//! nothing more. A graceful abort (statement error, `rollback` action)
//! on a live process under [`SyncPolicy::EachRecord`] appends an `Abort`
//! marker so the already-durable records are skipped on replay; under
//! group commit the records never left the buffer and are simply
//! dropped. See `docs/durability.md`.

use setrules_json::Json;
use setrules_query::OpEffect;
use setrules_storage::{
    ColumnDef, Database, DataType, FaultKind, StorageError, TableId, TableSchema, Tuple,
    TupleHandle,
};
use setrules_wal::{
    value_from_json, value_to_json, SyncPolicy, WalConfig, WalError, WalRecord, WalWriter,
};

use std::collections::BTreeSet;

use setrules_storage::ColumnId;

use crate::engine::RuleSystem;
use crate::error::RuleError;
use crate::events::{EngineEvent, EventBus};
use crate::snapshot::TableSnapshot;
use crate::stats::EngineStats;
use crate::transinfo::{DelEntry, SelEntry, TransInfo, UpdEntry};

/// Live write-ahead-log state of a durable [`RuleSystem`].
pub(crate) struct WalState {
    /// The buffered writer over the configured sink.
    pub(crate) writer: WalWriter,
    /// Set while recovery replays the log: every logging helper no-ops,
    /// so replayed DDL/DML does not re-log itself.
    pub(crate) replaying: bool,
    /// Set when a WAL fault (injected or real) "killed the process":
    /// the unsynced suffix is discarded and nothing more is written
    /// until the next transaction begins.
    pub(crate) crashed: bool,
    /// Records appended since the current transaction's `Begin`.
    pub(crate) txn_appends: u64,
    /// Commits since the last checkpoint (for `checkpoint_every`).
    pub(crate) commits_since_checkpoint: u64,
}

fn bad_ckpt(what: &str) -> RuleError {
    RuleError::Wal(WalError::Record(format!("malformed checkpoint: bad or missing '{what}'")))
}

fn bad_win(what: &str) -> RuleError {
    RuleError::Wal(WalError::Record(format!(
        "malformed deferred window: bad or missing '{what}'"
    )))
}

// ---------------------------------------------------------------------
// Deferred-window codec (§5.3 durability)
// ---------------------------------------------------------------------
//
// A `TransInfo` window references tables by `TableId`; the log encodes
// table *names* (like the DML records) so the record stays meaningful
// against the replayed catalog, and old-tuple values go through the
// bit-exact WAL value codec so the recovered window compares equal to
// the live one byte for byte.

/// Encode a deferred window for a [`WalRecord::DeferredWindow`] record.
pub(crate) fn window_to_json(db: &Database, w: &TransInfo) -> Json {
    let name = |t: TableId| Json::Str(db.schema(t).name.clone());
    let vals = |t: &Tuple| Json::Array(t.0.iter().map(value_to_json).collect());
    let cols = |cs: &BTreeSet<ColumnId>| {
        Json::Array(cs.iter().map(|c| Json::Int(c.0 as i64)).collect())
    };
    let ins = w.ins.iter().map(|h| Json::Int(h.0 as i64)).collect();
    let del = w
        .del
        .iter()
        .map(|(h, e)| Json::Array(vec![Json::Int(h.0 as i64), name(e.table), vals(&e.old)]))
        .collect();
    let upd = w
        .upd
        .iter()
        .map(|(h, e)| {
            Json::Array(vec![Json::Int(h.0 as i64), name(e.table), cols(&e.columns), vals(&e.old)])
        })
        .collect();
    let sel = w
        .sel
        .iter()
        .map(|(h, e)| {
            let cs = match &e.columns {
                Some(cs) => cols(cs),
                None => Json::Null,
            };
            Json::Array(vec![Json::Int(h.0 as i64), name(e.table), cs])
        })
        .collect();
    Json::obj([
        ("ins", Json::Array(ins)),
        ("del", Json::Array(del)),
        ("upd", Json::Array(upd)),
        ("sel", Json::Array(sel)),
    ])
}

/// Decode a [`WalRecord::DeferredWindow`] record's state against the
/// replayed catalog.
pub(crate) fn window_from_json(db: &Database, j: &Json) -> Result<TransInfo, RuleError> {
    let arr = |k: &str| j.get(k).and_then(Json::as_array).ok_or_else(|| bad_win(k));
    let handle = |v: &Json| -> Result<TupleHandle, RuleError> {
        v.as_i64()
            .and_then(|i| u64::try_from(i).ok())
            .map(TupleHandle)
            .ok_or_else(|| bad_win("handle"))
    };
    let tid = |v: &Json| -> Result<TableId, RuleError> {
        let name = v.as_str().ok_or_else(|| bad_win("table"))?;
        db.table_id(name).map_err(|_| bad_win("table"))
    };
    let tup = |v: &Json| -> Result<Tuple, RuleError> {
        let vals = v
            .as_array()
            .ok_or_else(|| bad_win("old"))?
            .iter()
            .map(value_from_json)
            .collect::<Result<Vec<_>, WalError>>()
            .map_err(RuleError::Wal)?;
        Ok(Tuple(vals))
    };
    let cols = |v: &Json| -> Result<BTreeSet<ColumnId>, RuleError> {
        v.as_array()
            .ok_or_else(|| bad_win("columns"))?
            .iter()
            .map(|c| {
                c.as_i64()
                    .and_then(|i| u16::try_from(i).ok())
                    .map(ColumnId)
                    .ok_or_else(|| bad_win("columns"))
            })
            .collect()
    };
    let mut w = TransInfo::new();
    for h in arr("ins")? {
        w.ins.insert(handle(h)?);
    }
    for e in arr("del")? {
        let [h, t, old] = e.as_array().ok_or_else(|| bad_win("del"))? else {
            return Err(bad_win("del"));
        };
        w.del.insert(handle(h)?, DelEntry { table: tid(t)?, old: tup(old)? });
    }
    for e in arr("upd")? {
        let [h, t, cs, old] = e.as_array().ok_or_else(|| bad_win("upd"))? else {
            return Err(bad_win("upd"));
        };
        w.upd.insert(
            handle(h)?,
            UpdEntry { table: tid(t)?, columns: cols(cs)?, old: tup(old)? },
        );
    }
    for e in arr("sel")? {
        let [h, t, cs] = e.as_array().ok_or_else(|| bad_win("sel"))? else {
            return Err(bad_win("sel"));
        };
        let columns = match cs {
            Json::Null => None,
            other => Some(cols(other)?),
        };
        w.sel.insert(handle(h)?, SelEntry { table: tid(t)?, columns });
    }
    Ok(w)
}

// ---------------------------------------------------------------------
// Free-function logging helpers
// ---------------------------------------------------------------------
//
// These take the engine's fields separately (rather than `&mut self`) so
// the rule-action loop — which holds immutable borrows of `self.rules`,
// `self.txn`, and `self.rule_plans` for its window provider and plan
// cache — can still log each effect as it executes.

/// Append one record: poll the `wal_append` fault site, encode into the
/// group-commit buffer, and (under [`SyncPolicy::EachRecord`]) sync
/// immediately. A fault is a crash: the unsynced suffix is discarded.
pub(crate) fn wal_append(
    db: &mut Database,
    wal: &mut Option<WalState>,
    stats: &mut EngineStats,
    events: &mut EventBus,
    rec: &WalRecord,
) -> Result<(), RuleError> {
    let each = {
        let Some(w) = wal.as_mut() else { return Ok(()) };
        if w.replaying {
            return Ok(());
        }
        if let Err(e) = db.fault_injector_mut().poll(FaultKind::WalAppend) {
            w.crashed = true;
            let _ = w.writer.discard_unsynced();
            return Err(e.into());
        }
        w.writer.append_record(rec);
        w.txn_appends += 1;
        stats.wal_appends += 1;
        w.writer.config().sync == SyncPolicy::EachRecord
    };
    events.emit(EngineEvent::WalAppend { kind: rec.kind().to_string() });
    if each {
        wal_sync(db, wal, stats)?;
    }
    Ok(())
}

/// Cross the fsync boundary: poll the `wal_sync` fault site, flush the
/// buffer, and sync the sink. A fault or sink error is a crash.
pub(crate) fn wal_sync(
    db: &mut Database,
    wal: &mut Option<WalState>,
    stats: &mut EngineStats,
) -> Result<(), RuleError> {
    let Some(w) = wal.as_mut() else { return Ok(()) };
    if w.replaying {
        return Ok(());
    }
    if let Err(e) = db.fault_injector_mut().poll(FaultKind::WalSync) {
        w.crashed = true;
        let _ = w.writer.discard_unsynced();
        return Err(e.into());
    }
    if let Err(e) = w.writer.sync() {
        w.crashed = true;
        let _ = w.writer.discard_unsynced();
        return Err(RuleError::Wal(e));
    }
    stats.wal_syncs += 1;
    Ok(())
}

/// Sync if the policy is group commit (under [`SyncPolicy::EachRecord`]
/// every append already synced, so there is nothing left to make durable).
pub(crate) fn wal_ensure_synced(
    db: &mut Database,
    wal: &mut Option<WalState>,
    stats: &mut EngineStats,
) -> Result<(), RuleError> {
    let group = match wal.as_ref() {
        Some(w) if !w.replaying => w.writer.config().sync == SyncPolicy::GroupCommit,
        _ => return Ok(()),
    };
    if group {
        wal_sync(db, wal, stats)?;
    }
    Ok(())
}

/// Log the redo records for one executed statement's effect. Reads the
/// *stored* (schema-coerced) tuples back out of the database so replay
/// reproduces them bit for bit; `select` effects write nothing.
pub(crate) fn wal_log_effect(
    db: &mut Database,
    wal: &mut Option<WalState>,
    stats: &mut EngineStats,
    events: &mut EventBus,
    eff: &OpEffect,
) -> Result<(), RuleError> {
    match wal.as_ref() {
        Some(w) if !w.replaying => {}
        _ => return Ok(()),
    }
    match eff {
        OpEffect::Insert { table, handles } => {
            let name = db.schema(*table).name.clone();
            for h in handles {
                let values = db.get(*table, *h).expect("inserted tuple is live").0.clone();
                let rec = WalRecord::Insert { table: name.clone(), handle: h.0, values };
                wal_append(db, wal, stats, events, &rec)?;
            }
        }
        OpEffect::Delete { table, tuples } => {
            let name = db.schema(*table).name.clone();
            for (h, _) in tuples {
                let rec = WalRecord::Delete { table: name.clone(), handle: h.0 };
                wal_append(db, wal, stats, events, &rec)?;
            }
        }
        OpEffect::Update { table, tuples } => {
            let name = db.schema(*table).name.clone();
            for (h, _, _) in tuples {
                let values = db.get(*table, *h).expect("updated tuple is live").0.clone();
                let rec = WalRecord::Update { table: name.clone(), handle: h.0, values };
                wal_append(db, wal, stats, events, &rec)?;
            }
        }
        OpEffect::Select { .. } => {}
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Engine methods: transaction lifecycle, DDL, checkpoints, recovery
// ---------------------------------------------------------------------

impl RuleSystem {
    /// Log the `Begin` of a new transaction (resetting the per-txn crash
    /// bookkeeping first).
    pub(crate) fn wal_begin(&mut self) -> Result<(), RuleError> {
        if let Some(w) = self.wal.as_mut() {
            if !w.replaying {
                w.txn_appends = 0;
                w.crashed = false;
            }
        }
        wal_append(&mut self.db, &mut self.wal, &mut self.stats, &mut self.events, &WalRecord::Begin)
    }

    /// Log and sync the `Commit` record — called *before* the in-memory
    /// commit, so the transaction is durable first. The handle high-water
    /// mark rides along so handles burned by rolled-back statements stay
    /// burned across recovery.
    pub(crate) fn wal_commit(&mut self) -> Result<(), RuleError> {
        match self.wal.as_ref() {
            Some(w) if !w.replaying => {}
            _ => return Ok(()),
        }
        let handles = self.db.handles_issued();
        let rec = WalRecord::Commit { handles };
        wal_append(&mut self.db, &mut self.wal, &mut self.stats, &mut self.events, &rec)?;
        wal_ensure_synced(&mut self.db, &mut self.wal, &mut self.stats)?;
        if let Some(w) = self.wal.as_mut() {
            w.txn_appends = 0;
        }
        Ok(())
    }

    /// Log and immediately sync a DDL (or checkpoint) record. DDL takes
    /// effect outside transactions, so each record is its own durability
    /// unit under both sync policies. On failure the crash bookkeeping is
    /// cleared (there is no transaction to abort) and a fault event is
    /// emitted, mirroring the DML statement-failure path.
    pub(crate) fn wal_ddl(&mut self, rec: WalRecord) -> Result<(), RuleError> {
        let result =
            wal_append(&mut self.db, &mut self.wal, &mut self.stats, &mut self.events, &rec)
                .and_then(|()| wal_sync(&mut self.db, &mut self.wal, &mut self.stats));
        if let Err(e) = result {
            if let Some(w) = self.wal.as_mut() {
                w.crashed = false;
                w.txn_appends = 0;
            }
            if let RuleError::Storage(StorageError::FaultInjected { kind, op }) = &e {
                self.stats.faults_injected += 1;
                self.events.emit(EngineEvent::Fault { kind: kind.name().to_string(), n: *op });
            }
            return Err(e);
        }
        Ok(())
    }

    /// Append the deferred window a commit will leave behind (§5.3). Part
    /// of the surrounding transaction's durability unit: replay applies
    /// the last such record at the transaction's `Commit`, so a crash
    /// before the sync keeps the previously-logged window.
    pub(crate) fn wal_log_deferred(&mut self, window: &TransInfo) -> Result<(), RuleError> {
        match self.wal.as_ref() {
            Some(w) if !w.replaying => {}
            _ => return Ok(()),
        }
        let state = window_to_json(&self.db, window);
        let rec = WalRecord::DeferredWindow { state };
        wal_append(&mut self.db, &mut self.wal, &mut self.stats, &mut self.events, &rec)
    }

    /// Durably clear the logged deferred window *outside* any transaction
    /// (the [`RuleSystem::clear_deferred`] path): its own append-and-sync
    /// unit, like DDL.
    pub(crate) fn wal_clear_deferred(&mut self) -> Result<(), RuleError> {
        match self.wal.as_ref() {
            Some(w) if !w.replaying => {}
            _ => return Ok(()),
        }
        let state = window_to_json(&self.db, &TransInfo::new());
        self.wal_ddl(WalRecord::DeferredWindow { state })
    }

    /// Roll the log back at a graceful (non-crash) transaction abort.
    ///
    /// A *crashed* log writes nothing — the dead process cannot append an
    /// abort marker; its durable prefix simply lacks the `Commit`. A live
    /// abort under group commit drops the still-buffered records; under
    /// [`SyncPolicy::EachRecord`] the records already hit the sink, so an
    /// `Abort` marker is appended (best effort) to carry the handle
    /// high-water mark forward.
    pub(crate) fn wal_graceful_abort(&mut self) {
        let handles = self.db.handles_issued();
        let Some(w) = self.wal.as_mut() else { return };
        if w.replaying {
            return;
        }
        if w.crashed {
            w.crashed = false;
            w.txn_appends = 0;
            return;
        }
        let had = std::mem::take(&mut w.txn_appends);
        let _ = w.writer.discard_unsynced();
        if w.writer.config().sync == SyncPolicy::EachRecord && had > 0 {
            w.writer.append_record(&WalRecord::Abort { handles });
            if w.writer.sync().is_ok() {
                self.stats.wal_appends += 1;
                self.stats.wal_syncs += 1;
                self.events.emit(EngineEvent::WalAppend { kind: "abort".to_string() });
            } else {
                let _ = w.writer.discard_unsynced();
            }
        }
    }

    /// After a successful commit: write a checkpoint if one is due.
    ///
    /// Checkpoints are written only at full quiescence (no deferred
    /// window: its pending transitions live outside the database image
    /// and a checkpoint could not carry them). A checkpoint failure is
    /// absorbed — the commit it follows already succeeded, and the next
    /// eligible commit retries.
    pub(crate) fn maybe_checkpoint(&mut self) {
        let due = match self.wal.as_mut() {
            Some(w) if !w.replaying && w.writer.config().checkpoint_every > 0 => {
                w.commits_since_checkpoint += 1;
                w.commits_since_checkpoint >= w.writer.config().checkpoint_every
            }
            _ => false,
        };
        if !due || !self.deferred_window().is_empty() {
            return;
        }
        let state = match self.checkpoint_state() {
            Ok(s) => s,
            // E.g. a rule with a native action snuck in: skip checkpoints,
            // full-log replay still works.
            Err(_) => return,
        };
        let bytes = state.compact().len() as u64;
        match self.wal_ddl(WalRecord::Checkpoint { state }) {
            Ok(()) => {
                self.stats.checkpoints += 1;
                self.events.emit(EngineEvent::Checkpoint { bytes });
                if let Some(w) = self.wal.as_mut() {
                    w.commits_since_checkpoint = 0;
                }
            }
            Err(_) => {
                if let Some(w) = self.wal.as_mut() {
                    w.crashed = false;
                }
            }
        }
    }

    /// Current write-ahead-log status, for introspection (the REPL's
    /// `\wal`): sync policy, sink positions, and the cumulative counters.
    /// `None` when the system is not durable.
    pub fn wal_status(&self) -> Option<Json> {
        let w = self.wal.as_ref()?;
        let cfg = w.writer.config();
        let policy = match cfg.sync {
            SyncPolicy::GroupCommit => "group_commit",
            SyncPolicy::EachRecord => "each_record",
        };
        Some(Json::obj([
            ("sync_policy", Json::Str(policy.to_string())),
            ("checkpoint_every", Json::Int(cfg.checkpoint_every as i64)),
            ("synced_len", Json::Int(w.writer.synced_len() as i64)),
            ("sink_len", Json::Int(w.writer.sink_len() as i64)),
            ("buffered_len", Json::Int(w.writer.buffered_len() as i64)),
            ("wal_appends", Json::Int(self.stats.wal_appends as i64)),
            ("wal_syncs", Json::Int(self.stats.wal_syncs as i64)),
            ("wal_replayed_records", Json::Int(self.stats.wal_replayed_records as i64)),
            ("checkpoints", Json::Int(self.stats.checkpoints as i64)),
        ]))
    }

    // -----------------------------------------------------------------
    // Recovery
    // -----------------------------------------------------------------

    /// Open the log, truncate any torn tail, and replay the committed
    /// image into this (fresh) system. Recovery itself is assumed
    /// reliable — like the undo path — so it never polls fault sites,
    /// and the injector's site counters are reset afterwards to keep
    /// fault numbering independent of replayed history.
    pub(crate) fn recover(&mut self, cfg: WalConfig) -> Result<(), RuleError> {
        let (writer, outcome) = WalWriter::open(cfg).map_err(RuleError::Wal)?;
        self.wal = Some(WalState {
            writer,
            replaying: true,
            crashed: false,
            txn_appends: 0,
            commits_since_checkpoint: 0,
        });
        let result = self.replay(&outcome.records);
        if let Some(w) = self.wal.as_mut() {
            w.replaying = false;
        }
        result?;
        self.stats.wal_replayed_records += outcome.records.len() as u64;
        self.events.emit(EngineEvent::Recovery {
            records: outcome.records.len() as u64,
            truncated_bytes: outcome.truncated_bytes,
        });
        self.db.fault_injector_mut().reset_counts();
        Ok(())
    }

    /// Replay scanned records: restore the last checkpoint (if any), then
    /// apply DDL as it appears and DML transactionally — a transaction's
    /// buffered records apply only when its `Commit` arrives; a dangling
    /// transaction (crash after `Begin`, before `Commit`) is discarded.
    fn replay(&mut self, records: &[WalRecord]) -> Result<(), RuleError> {
        let mut start = 0;
        if let Some(ci) = records.iter().rposition(|r| matches!(r, WalRecord::Checkpoint { .. }))
        {
            let WalRecord::Checkpoint { state } = &records[ci] else { unreachable!() };
            self.restore_checkpoint(state)?;
            start = ci + 1;
        }
        let mut open: Option<Vec<&WalRecord>> = None;
        for rec in &records[start..] {
            match rec {
                WalRecord::Begin => open = Some(Vec::new()),
                WalRecord::Insert { .. } | WalRecord::Delete { .. } | WalRecord::Update { .. } => {
                    // A DML record outside a transaction cannot be written
                    // by this engine; tolerate it (skip) rather than fail
                    // recovery on a foreign log.
                    if let Some(buf) = open.as_mut() {
                        buf.push(rec);
                    }
                }
                WalRecord::Commit { handles } => {
                    let buffered = open.take().unwrap_or_default();
                    for &r in &buffered {
                        self.redo(r)?;
                    }
                    self.db.redo_handle_watermark(*handles, TableId(0));
                    self.db.commit();
                    // The last deferred-window record in the transaction
                    // is the pending state this commit leaves behind.
                    for &r in buffered.iter().rev() {
                        if let WalRecord::DeferredWindow { state } = r {
                            self.deferred = window_from_json(&self.db, state)?;
                            break;
                        }
                    }
                }
                WalRecord::Abort { handles } => {
                    open = None;
                    self.db.redo_handle_watermark(*handles, TableId(0));
                }
                WalRecord::TableDdl { sql }
                | WalRecord::IndexDdl { sql }
                | WalRecord::RuleDdl { sql } => {
                    // Normal execution path; `replaying` suppresses
                    // re-logging.
                    self.execute(sql)?;
                }
                WalRecord::DeferredWindow { state } => match open.as_mut() {
                    // In-transaction: applies only if the `Commit` arrives.
                    Some(buf) => buf.push(rec),
                    // A durable `clear_deferred` logs outside any
                    // transaction and takes effect immediately.
                    None => self.deferred = window_from_json(&self.db, state)?,
                },
                // Only the last checkpoint is restored; earlier ones are
                // superseded by the state they precede.
                WalRecord::Checkpoint { .. } => {}
            }
        }
        Ok(())
    }

    /// Apply one DML record's physical redo.
    fn redo(&mut self, rec: &WalRecord) -> Result<(), RuleError> {
        match rec {
            WalRecord::Insert { table, handle, values } => {
                let t = self.db.table_id(table)?;
                self.db.redo_insert(t, TupleHandle(*handle), Tuple(values.clone()))?;
            }
            WalRecord::Delete { table, handle } => {
                let t = self.db.table_id(table)?;
                self.db.redo_delete(t, TupleHandle(*handle))?;
            }
            WalRecord::Update { table, handle, values } => {
                let t = self.db.table_id(table)?;
                self.db.redo_update(t, TupleHandle(*handle), Tuple(values.clone()))?;
            }
            _ => {}
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Checkpoints
    // -----------------------------------------------------------------

    /// Encode the full current state for a checkpoint record. Unlike the
    /// portable [`crate::Snapshot`] encoding (which restarts the handle
    /// space), a checkpoint must reproduce the image *exactly*: it keeps
    /// per-row tuple handles, dropped `TableId` slots, and the handle
    /// high-water mark, and encodes floats bit-exactly.
    fn checkpoint_state(&self) -> Result<Json, RuleError> {
        // Reuses the snapshot path for rules/priorities (which also
        // rejects unserializable native-action rules).
        let snap = self.snapshot()?;
        let db = self.database();
        let mut slots = Vec::new();
        for tid in db.table_ids() {
            let Some(table) = db.try_table(tid) else {
                // A dropped table's id slot: recorded so later tables
                // keep their ids on restore.
                slots.push(Json::Null);
                continue;
            };
            let schema = &table.schema;
            let columns: Vec<(String, DataType)> =
                schema.columns.iter().map(|c| (c.name.clone(), c.ty)).collect();
            let indexes = (0..schema.arity())
                .map(|i| setrules_storage::ColumnId(i as u16))
                .filter_map(|c| {
                    db.index_kind(tid, c).map(|k| (schema.column_name(c).to_string(), k))
                })
                .collect();
            let ts = TableSnapshot {
                name: schema.name.clone(),
                columns,
                indexes,
                rows: Vec::new(),
            };
            let mut j = ts.to_json();
            let rows_h: Vec<Json> = table
                .scan()
                .map(|(h, t)| {
                    let mut arr = Vec::with_capacity(1 + t.0.len());
                    arr.push(Json::Int(h.0 as i64));
                    arr.extend(t.0.iter().map(value_to_json));
                    Json::Array(arr)
                })
                .collect();
            if let Json::Object(fields) = &mut j {
                fields.push(("rows_h".to_string(), Json::Array(rows_h)));
            }
            slots.push(j);
        }
        let str_array =
            |items: &[String]| Json::Array(items.iter().map(|s| Json::Str(s.clone())).collect());
        Ok(Json::obj([
            ("slots", Json::Array(slots)),
            ("handles", Json::Int(db.handles_issued() as i64)),
            ("rules", str_array(&snap.rules)),
            ("deactivated", str_array(&snap.deactivated)),
            (
                "priorities",
                Json::Array(
                    snap.priorities
                        .iter()
                        .map(|(h, l)| Json::Array(vec![Json::Str(h.clone()), Json::Str(l.clone())]))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Rebuild this (fresh) system from a checkpoint record's state.
    fn restore_checkpoint(&mut self, state: &Json) -> Result<(), RuleError> {
        let slots = state.get("slots").and_then(Json::as_array).ok_or_else(|| bad_ckpt("slots"))?;
        // Rows are collected across all tables and replayed in global
        // handle order: handles interleave between tables, and
        // `redo_insert` (rightly) asserts they arrive monotonically.
        let mut pending_rows: Vec<(u64, TableId, Vec<setrules_storage::Value>)> = Vec::new();
        for (i, slot) in slots.iter().enumerate() {
            if matches!(slot, Json::Null) {
                // Burn the dropped table's id slot so later ids line up.
                let ph = format!("__dropped_{i}");
                self.db.create_table(TableSchema::new(
                    ph.clone(),
                    vec![ColumnDef::new("x", DataType::Int)],
                ))?;
                self.db.drop_table(&ph)?;
                continue;
            }
            let ts = TableSnapshot::from_json(slot)?;
            let cols: Vec<ColumnDef> =
                ts.columns.iter().map(|(n, ty)| ColumnDef::new(n.clone(), *ty)).collect();
            self.db.create_table(TableSchema::new(ts.name.clone(), cols))?;
            let tid = self.db.table_id(&ts.name)?;
            let rows =
                slot.get("rows_h").and_then(Json::as_array).ok_or_else(|| bad_ckpt("rows_h"))?;
            for row in rows {
                let arr = row.as_array().ok_or_else(|| bad_ckpt("rows_h"))?;
                let (h, vals) = arr.split_first().ok_or_else(|| bad_ckpt("rows_h"))?;
                let h = h
                    .as_i64()
                    .and_then(|i| u64::try_from(i).ok())
                    .ok_or_else(|| bad_ckpt("rows_h"))?;
                let values = vals
                    .iter()
                    .map(value_from_json)
                    .collect::<Result<Vec<_>, WalError>>()
                    .map_err(RuleError::Wal)?;
                pending_rows.push((h, tid, values));
            }
            // Indexes populate incrementally as redo inserts the rows.
            for (c, kind) in &ts.indexes {
                let cid = self.db.schema(tid).column_id(c)?;
                self.db.create_index_of(tid, cid, *kind)?;
            }
        }
        pending_rows.sort_by_key(|(h, _, _)| *h);
        for (h, tid, values) in pending_rows {
            self.db.redo_insert(tid, TupleHandle(h), Tuple(values))?;
        }
        let handles = state
            .get("handles")
            .and_then(Json::as_i64)
            .and_then(|i| u64::try_from(i).ok())
            .ok_or_else(|| bad_ckpt("handles"))?;
        self.db.redo_handle_watermark(handles, TableId(0));
        self.db.commit();

        for sql in state.get("rules").and_then(Json::as_array).ok_or_else(|| bad_ckpt("rules"))? {
            let sql = sql.as_str().ok_or_else(|| bad_ckpt("rules"))?;
            self.create_rule_str(sql)?;
        }
        let deactivated =
            state.get("deactivated").and_then(Json::as_array).ok_or_else(|| bad_ckpt("deactivated"))?;
        for name in deactivated {
            let name = name.as_str().ok_or_else(|| bad_ckpt("deactivated"))?;
            self.set_rule_active(name, false)?;
        }
        let priorities =
            state.get("priorities").and_then(Json::as_array).ok_or_else(|| bad_ckpt("priorities"))?;
        for pair in priorities {
            let [h, l] = pair.as_array().ok_or_else(|| bad_ckpt("priorities"))? else {
                return Err(bad_ckpt("priorities"));
            };
            let (h, l) = match (h.as_str(), l.as_str()) {
                (Some(h), Some(l)) => (h, l),
                _ => return Err(bad_ckpt("priorities")),
            };
            self.add_priority(h, l)?;
        }
        Ok(())
    }
}
