//! Rule-system errors.

use std::fmt;

use setrules_query::QueryError;
use setrules_sql::SqlError;
use setrules_storage::StorageError;
use setrules_wal::WalError;

/// Errors raised by the rule system.
#[derive(Debug, Clone, PartialEq)]
pub enum RuleError {
    /// SQL front-end error.
    Sql(SqlError),
    /// Storage error.
    Storage(StorageError),
    /// Query/DML evaluation error. When raised inside a transaction, the
    /// transaction has been rolled back.
    Query(QueryError),
    /// Write-ahead-log error (durable configurations only). When raised
    /// inside a transaction, the transaction has been rolled back and the
    /// log's unsynced suffix discarded.
    Wal(WalError),
    /// A rule with this name already exists.
    DuplicateRule(String),
    /// No rule with this name exists.
    NoSuchRule(String),
    /// A rule references a transition table that does not correspond to
    /// one of its basic transition predicates (the §3 syntactic
    /// restriction).
    IllegalTransitionTable {
        /// The offending rule.
        rule: String,
        /// The transition table reference, rendered.
        reference: String,
    },
    /// `create rule priority a before b` would make the priority relation
    /// cyclic (§4.4 requires an acyclic set of pairings).
    PriorityCycle {
        /// Proposed higher-priority rule.
        higher: String,
        /// Proposed lower-priority rule.
        lower: String,
    },
    /// Rule processing exceeded the configured transition limit — the
    /// run-time divergence guard of the paper's footnote 7. The
    /// transaction has been rolled back.
    LoopLimitExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// An operation that requires an open transaction was invoked without
    /// one (`process rules`, `commit`, ...).
    NoOpenTransaction,
    /// An operation that requires *no* open transaction was invoked inside
    /// one (DDL, `transaction()`).
    TransactionOpen,
    /// A table cannot be dropped because rules still reference it.
    TableReferencedByRules {
        /// The table.
        table: String,
        /// One referencing rule.
        rule: String,
    },
    /// Anything else (message explains).
    Unsupported(String),
}

impl fmt::Display for RuleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuleError::Sql(e) => write!(f, "{e}"),
            RuleError::Storage(e) => write!(f, "{e}"),
            RuleError::Query(e) => write!(f, "{e}"),
            RuleError::Wal(e) => write!(f, "{e}"),
            RuleError::DuplicateRule(r) => write!(f, "rule '{r}' already exists"),
            RuleError::NoSuchRule(r) => write!(f, "no such rule '{r}'"),
            RuleError::IllegalTransitionTable { rule, reference } => write!(
                f,
                "rule '{rule}' references transition table '{reference}' which does not \
                 correspond to any of its transition predicates"
            ),
            RuleError::PriorityCycle { higher, lower } => write!(
                f,
                "priority '{higher} before {lower}' would create a cycle in the rule ordering"
            ),
            RuleError::LoopLimitExceeded { limit } => write!(
                f,
                "rule processing exceeded {limit} transitions (possible infinite loop); \
                 transaction rolled back"
            ),
            RuleError::NoOpenTransaction => write!(f, "no transaction is open"),
            RuleError::TransactionOpen => write!(f, "a transaction is already open"),
            RuleError::TableReferencedByRules { table, rule } => {
                write!(f, "cannot drop table '{table}': rule '{rule}' references it")
            }
            RuleError::Unsupported(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for RuleError {}

impl From<SqlError> for RuleError {
    fn from(e: SqlError) -> Self {
        RuleError::Sql(e)
    }
}

impl From<StorageError> for RuleError {
    fn from(e: StorageError) -> Self {
        RuleError::Storage(e)
    }
}

impl From<QueryError> for RuleError {
    fn from(e: QueryError) -> Self {
        RuleError::Query(e)
    }
}

impl From<WalError> for RuleError {
    fn from(e: WalError) -> Self {
        RuleError::Wal(e)
    }
}
