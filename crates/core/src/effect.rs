//! Transition effects and their composition — the paper's formal core.
//!
//! §2.2: "the *effect* of a transition is a triple `[I, D, U]`: `I` is a set
//! of handles identifying those tuples inserted by the transition, `D` …
//! deleted …, and `U` is a set of handle-column pairs identifying those
//! tuples and columns updated by the transition." A handle appears in at
//! most one of the three sets.
//!
//! Definition 2.1 (composition, `e1 ⊕ e2` where `e2` happened after `e1`):
//!
//! ```text
//! I = (I1 ∪ I2) − D2
//! D = (D1 ∪ D2) − I1
//! U = (U1 ∪ U2) − (D2 ∪ I1)     (pairs whose handle lies in D2 ∪ I1)
//! ```
//!
//! The `S` component extends the triple for the §5.1 data-retrieval
//! extension; the paper leaves its composition open, and we define it to
//! mirror `U` (`S = (S1 ∪ S2) − (D2 ∪ I1)`): a read of a tuple later
//! deleted in the same window, or of a tuple created within the window,
//! does not survive into the net effect. This choice keeps `⊕` associative.

use std::collections::BTreeSet;

use setrules_storage::{ColumnId, TupleHandle};

/// The effect `[I, D, U]` (+ `S`) of a transition.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TransitionEffect {
    /// `I`: handles of tuples inserted by the transition.
    pub inserted: BTreeSet<TupleHandle>,
    /// `D`: handles of tuples deleted by the transition (tuples of a
    /// previous state — handles are never reused).
    pub deleted: BTreeSet<TupleHandle>,
    /// `U`: handle-column pairs updated by the transition (whether or not
    /// the stored value actually changed).
    pub updated: BTreeSet<(TupleHandle, ColumnId)>,
    /// `S` (extension, §5.1): handle-column pairs read by top-level
    /// `select` operations.
    pub selected: BTreeSet<(TupleHandle, ColumnId)>,
}

impl TransitionEffect {
    /// The empty effect.
    pub fn new() -> Self {
        TransitionEffect::default()
    }

    /// Effect of a single insert operation: `[A(op), ∅, ∅]`.
    pub fn of_insert(handles: impl IntoIterator<Item = TupleHandle>) -> Self {
        TransitionEffect { inserted: handles.into_iter().collect(), ..Default::default() }
    }

    /// Effect of a single delete operation: `[∅, A(op), ∅]`.
    pub fn of_delete(handles: impl IntoIterator<Item = TupleHandle>) -> Self {
        TransitionEffect { deleted: handles.into_iter().collect(), ..Default::default() }
    }

    /// Effect of a single update operation: `[∅, ∅, A(op)]`.
    pub fn of_update(pairs: impl IntoIterator<Item = (TupleHandle, ColumnId)>) -> Self {
        TransitionEffect { updated: pairs.into_iter().collect(), ..Default::default() }
    }

    /// Effect of a single select operation (`S` extension).
    pub fn of_select(pairs: impl IntoIterator<Item = (TupleHandle, ColumnId)>) -> Self {
        TransitionEffect { selected: pairs.into_iter().collect(), ..Default::default() }
    }

    /// Whether all components are empty (§4.2: "if all three sets in `E1`
    /// are empty, then no rules can be triggered").
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty()
            && self.deleted.is_empty()
            && self.updated.is_empty()
            && self.selected.is_empty()
    }

    /// Definition 2.1: the effect of executing `self`'s transition followed
    /// by `later`'s, treated as one indivisible unit.
    #[must_use]
    pub fn compose(&self, later: &TransitionEffect) -> TransitionEffect {
        // I = (I1 ∪ I2) − D2. (No need to subtract D1: handles in D1 cannot
        // appear in I1 — disjointness — nor in I2 — handles are not reused.)
        let inserted = self
            .inserted
            .union(&later.inserted)
            .copied()
            .filter(|h| !later.deleted.contains(h))
            .collect();
        // D = (D1 ∪ D2) − I1.
        let deleted = self
            .deleted
            .union(&later.deleted)
            .copied()
            .filter(|h| !self.inserted.contains(h))
            .collect();
        // U = (U1 ∪ U2) − (D2 ∪ I1): the paper's "misuse" of set difference
        // removes every pair whose *handle* appears in D2 ∪ I1.
        let dead = |h: &TupleHandle| later.deleted.contains(h) || self.inserted.contains(h);
        let updated = self
            .updated
            .union(&later.updated)
            .filter(|(h, _)| !dead(h))
            .cloned()
            .collect();
        // S composes like U (documented choice).
        let selected = self
            .selected
            .union(&later.selected)
            .filter(|(h, _)| !dead(h))
            .cloned()
            .collect();
        TransitionEffect { inserted, deleted, updated, selected }
    }

    /// Check the structural invariant that a handle appears in at most one
    /// of `I`/`D`/`U` (§2.2). `S` is exempt: a tuple may be both read and,
    /// say, updated in one window.
    pub fn check_disjoint(&self) -> bool {
        let upd_handles: BTreeSet<_> = self.updated.iter().map(|(h, _)| *h).collect();
        self.inserted.is_disjoint(&self.deleted)
            && self.inserted.iter().all(|h| !upd_handles.contains(h))
            && self.deleted.iter().all(|h| !upd_handles.contains(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(n: u64) -> TupleHandle {
        TupleHandle(n)
    }
    fn c(n: u16) -> ColumnId {
        ColumnId(n)
    }

    #[test]
    fn single_op_constructors() {
        let e = TransitionEffect::of_insert([h(1), h(2)]);
        assert_eq!(e.inserted.len(), 2);
        assert!(e.deleted.is_empty() && e.updated.is_empty());
        assert!(!e.is_empty());
        assert!(TransitionEffect::new().is_empty());
    }

    #[test]
    fn update_then_delete_is_delete() {
        // §2.2: "if a tuple is updated by several operations and then
        // deleted, we consider only the deletion".
        let e1 = TransitionEffect::of_update([(h(1), c(0)), (h(1), c(1))]);
        let e2 = TransitionEffect::of_delete([h(1)]);
        let net = e1.compose(&e2);
        assert!(net.updated.is_empty());
        assert_eq!(net.deleted, BTreeSet::from([h(1)]));
        assert!(net.check_disjoint());
    }

    #[test]
    fn insert_then_update_is_insert() {
        let e1 = TransitionEffect::of_insert([h(1)]);
        let e2 = TransitionEffect::of_update([(h(1), c(0))]);
        let net = e1.compose(&e2);
        assert_eq!(net.inserted, BTreeSet::from([h(1)]));
        assert!(net.updated.is_empty());
        assert!(net.check_disjoint());
    }

    #[test]
    fn insert_then_delete_vanishes() {
        let e1 = TransitionEffect::of_insert([h(1)]);
        let e2 = TransitionEffect::of_delete([h(1)]);
        let net = e1.compose(&e2);
        assert!(net.is_empty());
    }

    #[test]
    fn delete_then_insert_is_not_an_update() {
        // §2.2: "we never consider deletion of a tuple followed by insertion
        // of a new tuple as an update" — the new tuple has a fresh handle.
        let e1 = TransitionEffect::of_delete([h(1)]);
        let e2 = TransitionEffect::of_insert([h(2)]);
        let net = e1.compose(&e2);
        assert_eq!(net.deleted, BTreeSet::from([h(1)]));
        assert_eq!(net.inserted, BTreeSet::from([h(2)]));
        assert!(net.updated.is_empty());
    }

    #[test]
    fn multiple_updates_collapse() {
        let e1 = TransitionEffect::of_update([(h(1), c(0))]);
        let e2 = TransitionEffect::of_update([(h(1), c(0)), (h(1), c(1))]);
        let net = e1.compose(&e2);
        assert_eq!(net.updated.len(), 2);
    }

    #[test]
    fn composition_is_associative_on_a_realistic_sequence() {
        // insert 1; update 1; insert 2; delete 1; update 2 — grouped both ways.
        let ops = [
            TransitionEffect::of_insert([h(1)]),
            TransitionEffect::of_update([(h(1), c(0))]),
            TransitionEffect::of_insert([h(2)]),
            TransitionEffect::of_delete([h(1)]),
            TransitionEffect::of_update([(h(2), c(1))]),
        ];
        let left = ops
            .iter()
            .cloned()
            .reduce(|a, b| a.compose(&b))
            .unwrap();
        let right = ops[0].compose(&ops[1].compose(&ops[2].compose(&ops[3].compose(&ops[4]))));
        assert_eq!(left, right);
        // Net: only tuple 2 exists, inserted (its update folds in).
        assert_eq!(left.inserted, BTreeSet::from([h(2)]));
        assert!(left.deleted.is_empty(), "tuple 1 was created and destroyed within the window");
        assert!(left.updated.is_empty());
    }

    #[test]
    fn selected_component_mirrors_updated() {
        let e1 = TransitionEffect::of_select([(h(1), c(0)), (h(3), c(0))]);
        let e2 = TransitionEffect::of_delete([h(1)]);
        let net = e1.compose(&e2);
        assert_eq!(net.selected, BTreeSet::from([(h(3), c(0))]));
        // Insert-then-select within the window also drops out.
        let e3 = TransitionEffect::of_insert([h(9)]);
        let e4 = TransitionEffect::of_select([(h(9), c(0))]);
        assert!(e3.compose(&e4).selected.is_empty());
    }

    #[test]
    fn disjointness_detects_violations() {
        let bad = TransitionEffect {
            inserted: BTreeSet::from([h(1)]),
            deleted: BTreeSet::from([h(1)]),
            updated: BTreeSet::new(),
            selected: BTreeSet::new(),
        };
        assert!(!bad.check_disjoint());
    }
}
