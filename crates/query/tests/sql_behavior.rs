//! Behavioural test suite for the query engine: null handling in grouping
//! and ordering, nested subqueries, joins with wildcards, and edge cases
//! the unit tests don't reach.

use setrules_query::{execute_op, execute_query, NoTransitionTables, QueryError, Relation};
use setrules_sql::ast::{DmlOp, Statement};
use setrules_sql::parse_statement;
use setrules_storage::{Database, Value};

fn setup() -> Database {
    let mut db = Database::new();
    for ddl in [
        "create table emp (name text, emp_no int, salary float, dept_no int)",
        "create table dept (dept_no int, mgr_no int)",
    ] {
        let Statement::CreateTable(ct) = parse_statement(ddl).unwrap() else { panic!() };
        let cols = ct
            .columns
            .into_iter()
            .map(|(n, ty)| setrules_storage::ColumnDef::new(n, ty))
            .collect();
        db.create_table(setrules_storage::TableSchema::new(ct.name, cols)).unwrap();
    }
    db
}

fn run(db: &mut Database, sql: &str) {
    let Statement::Dml(op) = parse_statement(sql).unwrap() else { panic!("not dml: {sql}") };
    execute_op(db, &NoTransitionTables, &op).unwrap();
}

fn q(db: &Database, sql: &str) -> Relation {
    let Statement::Dml(DmlOp::Select(sel)) = parse_statement(sql).unwrap() else {
        panic!("not select: {sql}")
    };
    execute_query(db, &NoTransitionTables, &sel).unwrap()
}

fn q_err(db: &Database, sql: &str) -> QueryError {
    let Statement::Dml(DmlOp::Select(sel)) = parse_statement(sql).unwrap() else {
        panic!("not select: {sql}")
    };
    execute_query(db, &NoTransitionTables, &sel).unwrap_err()
}

#[test]
fn group_by_null_keys_form_one_group() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, NULL), ('b', 2, 2.0, NULL), ('c', 3, 3.0, 1)");
    let rel = q(&db, "select dept_no, count(*) from emp group by dept_no order by dept_no");
    // NULL sorts first under the storage total order.
    assert_eq!(
        rel.rows,
        vec![
            vec![Value::Null, Value::Int(2)],
            vec![Value::Int(1), Value::Int(1)],
        ]
    );
}

#[test]
fn aggregates_skip_nulls() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, NULL, 1), ('b', 2, 10.0, 1), ('c', 3, 20.0, 1)");
    let rel = q(&db, "select count(*), count(salary), sum(salary), avg(salary), min(salary), max(salary) from emp");
    assert_eq!(
        rel.rows[0],
        vec![
            Value::Int(3),
            Value::Int(2),
            Value::Float(30.0),
            Value::Float(15.0),
            Value::Float(10.0),
            Value::Float(20.0),
        ]
    );
}

#[test]
fn count_distinct() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 1), ('c', 3, 1.0, 2)");
    let rel = q(&db, "select count(distinct dept_no), count(dept_no) from emp");
    assert_eq!(rel.rows[0], vec![Value::Int(2), Value::Int(3)]);
}

#[test]
fn order_by_desc_with_nulls_and_ties() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, NULL, 1), ('b', 2, 5.0, 1), ('c', 3, 5.0, 2)");
    let rel = q(&db, "select name from emp order by salary desc, name");
    // Descending: non-null first (5.0s, tie-broken by name), NULL last.
    assert_eq!(
        rel.rows,
        vec![
            vec![Value::Text("b".into())],
            vec![Value::Text("c".into())],
            vec![Value::Text("a".into())],
        ]
    );
}

#[test]
fn limit_zero_and_large() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1)");
    assert_eq!(q(&db, "select * from emp limit 0").len(), 0);
    assert_eq!(q(&db, "select * from emp limit 100").len(), 1);
}

#[test]
fn distinct_treats_nulls_as_one() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, NULL, 1), ('b', 2, NULL, 1)");
    assert_eq!(q(&db, "select distinct salary from emp").len(), 1);
}

#[test]
fn triple_nested_correlated_subquery() {
    let mut db = setup();
    run(&mut db, "insert into dept values (1, 1), (2, 3)");
    run(
        &mut db,
        "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 50.0, 1), ('c', 3, 200.0, 2)",
    );
    // Employees who manage a department whose average salary is below
    // their own salary: only 'a' (dept 1 avg 75 < 100); 'c' manages
    // dept 2 whose sole member is c itself (avg 200, not < 200).
    let rel = q(
        &db,
        "select name from emp m where exists \
           (select * from dept d where d.mgr_no = m.emp_no and \
             (select avg(salary) from emp e where e.dept_no = d.dept_no) < m.salary) \
         order by name",
    );
    assert_eq!(rel.rows, vec![vec![Value::Text("a".into())]]);
}

#[test]
fn qualified_wildcards_in_join() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1)");
    run(&mut db, "insert into dept values (1, 1)");
    let rel = q(&db, "select d.*, e.name from emp e, dept d where e.dept_no = d.dept_no");
    assert_eq!(rel.columns, vec!["dept_no", "mgr_no", "name"]);
    assert_eq!(rel.rows[0], vec![Value::Int(1), Value::Int(1), Value::Text("a".into())]);
}

#[test]
fn self_join_with_aliases() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 100.0, 1), ('b', 2, 200.0, 1), ('c', 3, 50.0, 2)");
    // Pairs where e1 earns more than e2 within the same department.
    let rel = q(
        &db,
        "select e1.name, e2.name from emp e1, emp e2 \
         where e1.dept_no = e2.dept_no and e1.salary > e2.salary",
    );
    assert_eq!(rel.len(), 1);
    assert_eq!(rel.rows[0], vec![Value::Text("b".into()), Value::Text("a".into())]);
}

#[test]
fn where_null_predicate_drops_rows() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, NULL, 1), ('b', 2, 5.0, 1)");
    // salary > 1 is unknown for the NULL row: dropped, not kept.
    assert_eq!(q(&db, "select name from emp where salary > 1").len(), 1);
    // ... and its negation also drops it (the classic 3VL trap).
    assert_eq!(q(&db, "select name from emp where not (salary > 1)").len(), 0);
    // is null picks it up.
    assert_eq!(q(&db, "select name from emp where salary is null").len(), 1);
}

#[test]
fn in_subquery_with_null_members() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, NULL)");
    run(&mut db, "insert into dept values (1, 1)");
    // dept_no in (select dept_no from dept) — NULL dept_no is unknown, dropped.
    assert_eq!(q(&db, "select name from emp where dept_no in (select dept_no from dept)").len(), 1);
    // not in with NULL on the *right* makes everything unknown.
    run(&mut db, "insert into dept values (NULL, 2)");
    assert_eq!(
        q(&db, "select name from emp where dept_no not in (select dept_no from dept)").len(),
        0
    );
}

#[test]
fn having_without_group_by() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 2.0, 1)");
    assert_eq!(q(&db, "select count(*) from emp having count(*) > 1").len(), 1);
    assert_eq!(q(&db, "select count(*) from emp having count(*) > 5").len(), 0);
}

#[test]
fn expression_projection_names() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 10.0, 1)");
    let rel = q(&db, "select salary * 2 as double_pay, salary from emp");
    assert_eq!(rel.columns[0], "double_pay");
    assert_eq!(rel.columns[1], "salary");
    assert_eq!(rel.rows[0][0], Value::Float(20.0));
}

#[test]
fn ambiguous_column_in_join_is_an_error() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1)");
    run(&mut db, "insert into dept values (1, 1)");
    let err = q_err(&db, "select dept_no from emp, dept");
    assert!(matches!(err, QueryError::AmbiguousColumn(_)), "{err}");
}

#[test]
fn unknown_table_and_column_errors() {
    let mut db = setup();
    assert!(matches!(q_err(&db, "select * from ghost"), QueryError::Storage(_)));
    // Column resolution is per-row: an unknown column only surfaces once a
    // row is evaluated (zero-row scans return an empty result).
    assert_eq!(q(&db, "select ghost from emp").len(), 0);
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1)");
    assert!(matches!(q_err(&db, "select ghost from emp"), QueryError::UnknownColumn(_)));
    // Qualified wildcards are resolved structurally, rows or not.
    assert!(matches!(q_err(&db, "select g.* from emp"), QueryError::UnknownColumn(_)));
}

#[test]
fn scalar_subquery_cardinality_error() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 2.0, 1)");
    let err = q_err(&db, "select name from emp where salary = (select salary from emp)");
    assert!(matches!(err, QueryError::ScalarSubqueryRows(2)));
    let err = q_err(&db, "select name from emp where salary in (select salary, name from emp)");
    assert!(matches!(err, QueryError::SubqueryColumns(2)));
}

#[test]
fn cross_product_cardinality() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 1), ('c', 3, 1.0, 1)");
    run(&mut db, "insert into dept values (1, 1), (2, 2)");
    assert_eq!(q(&db, "select * from emp, dept").len(), 6);
    // Empty factor annihilates.
    run(&mut db, "delete from dept");
    assert_eq!(q(&db, "select * from emp, dept").len(), 0);
}

#[test]
fn like_over_rows() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('Jane', 1, 1.0, 1), ('Jim', 2, 1.0, 1), ('Bill', 3, 1.0, 1)");
    assert_eq!(q(&db, "select name from emp where name like 'J%'").len(), 2);
    assert_eq!(q(&db, "select name from emp where name like '_i%'").len(), 2);
    assert_eq!(q(&db, "select name from emp where name not like 'J%'").len(), 1);
}

#[test]
fn update_with_correlated_subquery_in_set() {
    let mut db = setup();
    run(&mut db, "insert into dept values (1, 77)");
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1), ('b', 2, 1.0, 2)");
    // Set each employee's emp_no to their department's manager (NULL if
    // no department row).
    run(
        &mut db,
        "update emp set emp_no = (select mgr_no from dept where dept.dept_no = emp.dept_no)",
    );
    let rel = q(&db, "select emp_no from emp order by name");
    assert_eq!(rel.rows, vec![vec![Value::Int(77)], vec![Value::Null]]);
}

#[test]
fn delete_with_in_subquery_self_reference() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 10.0, 1), ('b', 2, 99.0, 1), ('c', 3, 10.0, 2)");
    // Delete everyone earning the max salary — the subquery is evaluated
    // against pre-statement state (set-oriented semantics).
    run(&mut db, "delete from emp where salary in (select max(salary) from emp)");
    assert_eq!(q(&db, "select count(*) from emp").rows[0][0], Value::Int(2));
}

#[test]
fn insert_select_self_copy_is_stable() {
    let mut db = setup();
    run(&mut db, "insert into emp values ('a', 1, 1.0, 1)");
    // Self-referential insert-select must snapshot: no infinite feed.
    run(&mut db, "insert into emp (select * from emp)");
    assert_eq!(q(&db, "select count(*) from emp").rows[0][0], Value::Int(2));
}
