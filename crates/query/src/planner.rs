//! Access-path selection: the one optimization the paper's argument needs.
//!
//! §1: set-oriented rules keep relational optimization applicable, and that
//! optimization "is directly applicable to the rules themselves". We
//! implement the representative cases: an equality predicate on an indexed
//! column turns a full scan into an index probe, and range-shaped
//! predicates (`<`, `<=`, `>`, `>=`, `between`) on an *ordered*-indexed
//! column turn into a single BTree range scan — whether the scan comes
//! from a user query or from the body of a rule. Benchmarks B7 and B12
//! measure the effects.

use std::ops::Bound;

use setrules_sql::ast::{BinaryOp, Expr};
use setrules_storage::{ColumnId, DataType, Database, TableId, Value};

use crate::bindings::Bindings;
use crate::compile::{compile, CompiledExpr, Layout};
use crate::ctx::QueryCtx;
use crate::eval::eval_expr;

/// How a base-table `from` item will be scanned.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan every live tuple.
    FullScan,
    /// Probe the hash index on `column` for `value`.
    IndexEq {
        /// The indexed column.
        column: ColumnId,
        /// The probe value (already coerced to the column type).
        value: Value,
    },
    /// Probe the hash index on `column` once per value of an explicit
    /// `col in (...)` list.
    IndexIn {
        /// The indexed column.
        column: ColumnId,
        /// Deduplicated probe values (already coerced to the column type).
        values: Vec<Value>,
    },
    /// Scan the *ordered* index on `column` for keys within `[lo, hi]`
    /// (storage total order; bounds already coerced to the column type and
    /// normalized to exclude `NULL` and NaN buckets).
    IndexRange {
        /// The ordered-indexed column.
        column: ColumnId,
        /// Lower bound of the key interval.
        lo: Bound<Value>,
        /// Upper bound of the key interval.
        hi: Bound<Value>,
    },
    /// The predicate can never be true for any tuple (e.g. `c = NULL`,
    /// an equality with a value outside the column's domain, or a range
    /// with a `NULL`/NaN bound or a provably empty interval).
    Empty,
}

impl Access {
    /// Selectivity rank for comparing candidate paths: lower is better.
    fn rank(&self) -> u8 {
        match self {
            Access::Empty => 0,
            Access::IndexEq { .. } => 1,
            Access::IndexIn { .. } => 2,
            Access::IndexRange { .. } => 3,
            Access::FullScan => 4,
        }
    }
}

/// Choose an access path for scanning `table` bound as `binding`, given the
/// query's `where` predicate.
///
/// Top-level `and`-conjuncts of four shapes are considered: `col = const`
/// (either operand order), `col in (const, ...)`, comparisons `col < / <=
/// / > / >= const` (either operand order), and `col between const and
/// const`. Comparison and `between` conjuncts on the same column are
/// intersected into a single key interval, served by an *ordered* index
/// when one exists. Unqualified column names are only trusted when this is
/// the sole `from` item (`sole_item`) — otherwise the name might belong to
/// a different item. The full predicate is still re-checked per row by the
/// executor, so a missed opportunity costs time, never correctness. When
/// several conjuncts are usable the most selective shape wins (empty >
/// equality probe > multi-probe > range scan > full scan).
pub fn choose_access(
    ctx: QueryCtx<'_>,
    table: TableId,
    binding: &str,
    sole_item: bool,
    predicate: Option<&Expr>,
) -> Access {
    let Some(pred) = predicate else {
        return Access::FullScan;
    };
    let schema = ctx.db.schema(table);
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    let mut best = Access::FullScan;
    // Key intervals accumulated across range-shaped conjuncts, one entry
    // per column in first-seen order (keeps plans deterministic).
    let mut ranges: Vec<(ColumnId, Bound<Value>, Bound<Value>)> = Vec::new();
    for c in conjuncts {
        let candidate = match c {
            Expr::Binary { left, op: BinaryOp::Eq, right } => {
                eq_candidate(ctx, schema, table, binding, sole_item, left, right)
            }
            Expr::Binary { left, op, right }
                if matches!(
                    op,
                    BinaryOp::Lt | BinaryOp::LtEq | BinaryOp::Gt | BinaryOp::GtEq
                ) =>
            {
                note_comparison(ctx, schema, table, binding, sole_item, left, *op, right, &mut ranges)
                    .then_some(Access::Empty)
            }
            Expr::InList { expr, list, negated: false } => {
                in_candidate(ctx, schema, table, binding, sole_item, expr, list)
            }
            Expr::Between { expr, low, high, negated: false } => {
                note_between(ctx, schema, table, binding, sole_item, expr, low, high, &mut ranges)
                    .then_some(Access::Empty)
            }
            _ => None,
        };
        if let Some(cand) = candidate {
            if cand == Access::Empty {
                return Access::Empty; // nothing beats scanning zero rows
            }
            if cand.rank() < best.rank() {
                best = cand;
            }
        }
    }
    for (column, lo, hi) in ranges {
        // An empty interval means the range conjuncts contradict each
        // other — provably empty whether or not an index exists.
        if range_is_empty(&lo, &hi) {
            return Access::Empty;
        }
        if !ctx.db.has_ordered_index(table, column) {
            continue; // hash buckets have no key order to scan
        }
        let (lo, hi) = finalize_range(lo, hi, schema.column_type(column));
        let cand = Access::IndexRange { column, lo, hi };
        if cand.rank() < best.rank() {
            best = cand;
        }
    }
    best
}

/// The indexed column behind `col_side`, if it is a column reference
/// attributable to this `from` item with an index on it.
fn indexed_column(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    col_side: &Expr,
) -> Option<ColumnId> {
    let Expr::Column { qualifier, name } = col_side else {
        return None;
    };
    match qualifier.as_deref() {
        Some(q) if q == binding => {}
        None if sole_item => {}
        _ => return None,
    }
    let column = schema.column_id(name).ok()?;
    ctx.db.has_index(table, column).then_some(column)
}

/// Evaluate a constant expression to its value (`None`: not constant, or
/// evaluation fails — leave the error to per-row evaluation).
fn const_value(ctx: QueryCtx<'_>, e: &Expr) -> Option<Value> {
    if !is_constant(e) {
        return None;
    }
    eval_expr(ctx, &mut Bindings::new(), None, e).ok()
}

fn eq_candidate(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    left: &Expr,
    right: &Expr,
) -> Option<Access> {
    for (col_side, const_side) in [(left, right), (right, left)] {
        let Some(column) = indexed_column(ctx, schema, table, binding, sole_item, col_side) else {
            continue;
        };
        let Some(v) = const_value(ctx, const_side) else {
            continue;
        };
        // Never probe with NaN: the hash index stores NaN by bit pattern,
        // so a probe would *find* stored NaNs even though `= NaN` is
        // UNKNOWN for every row — fall back to the scan, whose per-row
        // predicate check gets the semantics right.
        if matches!(v, Value::Float(f) if f.is_nan()) {
            continue;
        }
        return Some(match probe_value(&v, schema.column_type(column)) {
            // `-0.0` and `0.0` are distinct index keys (bit-pattern
            // storage equality) but SQL-equal, so a zero probe must
            // cover both buckets.
            Some(Value::Float(0.0)) => Access::IndexIn {
                column,
                values: vec![Value::Float(-0.0), Value::Float(0.0)],
            },
            Some(value) => Access::IndexEq { column, value },
            None => Access::Empty,
        });
    }
    None
}

fn in_candidate(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    col_side: &Expr,
    list: &[Expr],
) -> Option<Access> {
    let column = indexed_column(ctx, schema, table, binding, sole_item, col_side)?;
    let ty = schema.column_type(column);
    let mut values: Vec<Value> = Vec::with_capacity(list.len());
    for item in list {
        let v = const_value(ctx, item)?;
        match in_probe_value(&v, ty) {
            // Comparable but unmatchable (NULL, fractional float vs int):
            // skip the probe; the row set is unaffected because `where`
            // only keeps rows where the predicate is *true*.
            Ok(None) => {}
            Ok(Some(p)) => {
                // A zero float expands to both signed-zero buckets (see
                // `eq_candidate`).
                let expanded = match p {
                    // A literal float pattern matches by numeric `==`,
                    // so this covers `-0.0` as well.
                    Value::Float(0.0) => {
                        vec![Value::Float(-0.0), Value::Float(0.0)]
                    }
                    p => vec![p],
                };
                for p in expanded {
                    if !values.contains(&p) {
                        values.push(p);
                    }
                }
            }
            // Cross-domain item: per-row evaluation would raise a type
            // error, so probing would change semantics — full scan.
            Err(()) => return None,
        }
    }
    Some(if values.is_empty() { Access::Empty } else { Access::IndexIn { column, values } })
}

/// Note a comparison conjunct (`<`, `<=`, `>`, `>=`) in the per-column
/// range accumulator. Returns `true` when the conjunct can never be true
/// for any row (NULL/NaN bound), making the whole predicate provably empty.
#[allow(clippy::too_many_arguments)]
fn note_comparison(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
    ranges: &mut Vec<(ColumnId, Bound<Value>, Bound<Value>)>,
) -> bool {
    for (col_side, const_side, flipped) in [(left, right, false), (right, left, true)] {
        let Some(column) = indexed_column(ctx, schema, table, binding, sole_item, col_side) else {
            continue;
        };
        let Some(v) = const_value(ctx, const_side) else {
            continue;
        };
        // Orient the operator so the column sits on the left.
        let (is_lo, inclusive) = match (op, flipped) {
            (BinaryOp::Gt, false) | (BinaryOp::Lt, true) => (true, false), // col > v
            (BinaryOp::GtEq, false) | (BinaryOp::LtEq, true) => (true, true), // col >= v
            (BinaryOp::Lt, false) | (BinaryOp::Gt, true) => (false, false), // col < v
            _ => (false, true),                                            // col <= v
        };
        match coerce_bound(&v, schema.column_type(column), is_lo, inclusive) {
            BoundRes::Use(b) => add_bound(ranges, column, is_lo, b),
            BoundRes::Never => return true,
            BoundRes::Keep => {}
        }
        return false;
    }
    false
}

/// Note a non-negated `between` conjunct in the range accumulator.
/// Returns `true` when the conjunct is provably empty (NULL/NaN bound).
#[allow(clippy::too_many_arguments)]
fn note_between(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    col_side: &Expr,
    low: &Expr,
    high: &Expr,
    ranges: &mut Vec<(ColumnId, Bound<Value>, Bound<Value>)>,
) -> bool {
    let Some(column) = indexed_column(ctx, schema, table, binding, sole_item, col_side) else {
        return false;
    };
    let ty = schema.column_type(column);
    let (Some(lo_v), Some(hi_v)) = (const_value(ctx, low), const_value(ctx, high)) else {
        return false;
    };
    let lo_res = coerce_bound(&lo_v, ty, true, true);
    let hi_res = coerce_bound(&hi_v, ty, false, true);
    // A cross-domain bound disables the whole conjunct — even when the
    // other bound is NULL — so the per-row type error still surfaces.
    if matches!(lo_res, BoundRes::Keep) || matches!(hi_res, BoundRes::Keep) {
        return false;
    }
    match (lo_res, hi_res) {
        (BoundRes::Use(lo), BoundRes::Use(hi)) => {
            add_bound(ranges, column, true, lo);
            add_bound(ranges, column, false, hi);
            false
        }
        // A NULL/NaN bound makes the conjunct unknown-or-false for every
        // row, and `where` only keeps *true* — provably empty.
        _ => true,
    }
}

/// Result of coercing a range-bound constant to a column's stored type.
enum BoundRes {
    /// A usable bound in the storage total order.
    Use(Bound<Value>),
    /// The conjunct can never be true for any row (NULL or NaN bound, or
    /// a bound past the column domain's edge on the shrinking side).
    Never,
    /// Per-row evaluation could raise a type error; leave the conjunct to
    /// the executor and don't prefilter on it.
    Keep,
}

fn coerce_bound(v: &Value, ty: DataType, is_lo: bool, inclusive: bool) -> BoundRes {
    let mk = |v: Value| if inclusive { Bound::Included(v) } else { Bound::Excluded(v) };
    match (v, ty) {
        // Comparisons with NULL or NaN are UNKNOWN for every row, and
        // `where` only keeps *true*.
        (Value::Null, _) => BoundRes::Never,
        (Value::Float(f), _) if f.is_nan() => BoundRes::Never,
        (Value::Int(i), DataType::Int) => BoundRes::Use(mk(Value::Int(*i))),
        (Value::Float(f), DataType::Int) => {
            // Int-vs-float comparison widens to f64, so a bound beyond the
            // i64 range compares the same way against every stored int:
            // always-false on the shrinking side, no-constraint otherwise.
            if *f > i64::MAX as f64 {
                if is_lo {
                    BoundRes::Never
                } else {
                    BoundRes::Use(Bound::Unbounded)
                }
            } else if *f < i64::MIN as f64 {
                if is_lo {
                    BoundRes::Use(Bound::Unbounded)
                } else {
                    BoundRes::Never
                }
            } else if f.fract() == 0.0 {
                BoundRes::Use(mk(Value::Int(*f as i64)))
            } else if is_lo {
                // `col > 4.5` and `col >= 4.5` both mean `col >= 5`.
                BoundRes::Use(Bound::Included(Value::Int(f.ceil() as i64)))
            } else {
                BoundRes::Use(Bound::Included(Value::Int(f.floor() as i64)))
            }
        }
        (Value::Int(i), DataType::Float) => BoundRes::Use(float_bound(*i as f64, is_lo, inclusive)),
        (Value::Float(f), DataType::Float) => BoundRes::Use(float_bound(*f, is_lo, inclusive)),
        (Value::Text(s), DataType::Text) => BoundRes::Use(mk(Value::Text(s.clone()))),
        // Cross-domain bound: per-row comparison raises a type error that
        // a prefilter would swallow.
        _ => BoundRes::Keep,
    }
}

/// Build a float bound, normalizing signed zeros so the storage total
/// order (where `-0.0 < 0.0` as distinct index keys) agrees with SQL
/// comparison (where they are equal): an inclusive bound lands on the far
/// zero bucket, an exclusive bound on the near one, so both buckets end up
/// on the same side of the cut.
fn float_bound(f: f64, is_lo: bool, inclusive: bool) -> Bound<Value> {
    let f = if f == 0.0 {
        match (is_lo, inclusive) {
            (true, true) => -0.0,   // >= 0 keeps the -0.0 bucket
            (true, false) => 0.0,   // > 0 skips both zero buckets
            (false, true) => 0.0,   // <= 0 keeps the 0.0 bucket
            (false, false) => -0.0, // < 0 skips both zero buckets
        }
    } else {
        f
    };
    if inclusive {
        Bound::Included(Value::Float(f))
    } else {
        Bound::Excluded(Value::Float(f))
    }
}

/// Record one side of a column's key interval, keeping the tighter bound
/// when one is already recorded.
fn add_bound(
    ranges: &mut Vec<(ColumnId, Bound<Value>, Bound<Value>)>,
    column: ColumnId,
    is_lo: bool,
    b: Bound<Value>,
) {
    if matches!(b, Bound::Unbounded) {
        return; // no constraint to record
    }
    let entry = match ranges.iter_mut().find(|(c, _, _)| *c == column) {
        Some(e) => e,
        None => {
            ranges.push((column, Bound::Unbounded, Bound::Unbounded));
            ranges.last_mut().expect("just pushed")
        }
    };
    let side = if is_lo { &mut entry.1 } else { &mut entry.2 };
    *side = tighter(std::mem::replace(side, Bound::Unbounded), b, is_lo);
}

/// The tighter of two bounds on the same side of an interval: for lower
/// bounds the larger value wins, for upper bounds the smaller; at equal
/// values exclusion wins.
fn tighter(a: Bound<Value>, b: Bound<Value>, is_lo: bool) -> Bound<Value> {
    let pick_a = match (&a, &b) {
        (Bound::Unbounded, _) => false,
        (_, Bound::Unbounded) => true,
        (Bound::Included(va) | Bound::Excluded(va), Bound::Included(vb) | Bound::Excluded(vb)) => {
            match va.cmp(vb) {
                std::cmp::Ordering::Equal => matches!(a, Bound::Excluded(_)),
                std::cmp::Ordering::Greater => is_lo,
                std::cmp::Ordering::Less => !is_lo,
            }
        }
    };
    if pick_a {
        a
    } else {
        b
    }
}

/// Whether a key interval is provably empty. The coercions in
/// [`coerce_bound`] are exact w.r.t. SQL comparison on the column's
/// domain, so an empty interval means no stored value can satisfy all the
/// range conjuncts that produced it.
fn range_is_empty(lo: &Bound<Value>, hi: &Bound<Value>) -> bool {
    match (lo, hi) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => false,
        (Bound::Included(a), Bound::Included(b)) => a > b,
        (Bound::Included(a), Bound::Excluded(b))
        | (Bound::Excluded(a), Bound::Included(b))
        | (Bound::Excluded(a), Bound::Excluded(b)) => a >= b,
    }
}

/// Normalize the open sides of a key interval for the BTree walk: skip the
/// `NULL` bucket (which sorts first) and, for float columns, the NaN
/// buckets (IEEE total order puts -NaN before -inf and +NaN after +inf).
/// Every skipped bucket is provably rejected by the range conjuncts
/// themselves — NULL and NaN compare UNKNOWN with any bound — so the
/// prefilter stays exact.
fn finalize_range(
    lo: Bound<Value>,
    hi: Bound<Value>,
    ty: DataType,
) -> (Bound<Value>, Bound<Value>) {
    let lo = match lo {
        Bound::Unbounded if ty == DataType::Float => {
            Bound::Included(Value::Float(f64::NEG_INFINITY))
        }
        Bound::Unbounded => Bound::Excluded(Value::Null),
        b => b,
    };
    let hi = match hi {
        Bound::Unbounded if ty == DataType::Float => Bound::Included(Value::Float(f64::INFINITY)),
        b => b,
    };
    (lo, hi)
}

/// Handles matching an access path, in handle order.
///
/// Index probes return handles in index-bucket order, so they are sorted
/// (and, for multi-probe paths, deduplicated) before returning — the
/// executor's determinism guarantee (`select.rs` module docs) requires
/// index-backed and full-scan plans to produce identical row order.
/// Range scans come back already sorted by the storage layer.
pub fn scan_handles(
    db: &Database,
    table: TableId,
    access: &Access,
) -> Vec<setrules_storage::TupleHandle> {
    match access {
        Access::FullScan => db.table(table).handles().collect(),
        Access::IndexEq { column, value } => {
            let mut hs = db
                .index_lookup(table, *column, value)
                .expect("planner only chooses IndexEq when the index exists");
            hs.sort_unstable();
            hs
        }
        Access::IndexIn { column, values } => {
            let mut hs = Vec::new();
            for v in values {
                hs.extend(
                    db.index_lookup(table, *column, v)
                        .expect("planner only chooses IndexIn when the index exists"),
                );
            }
            hs.sort_unstable();
            hs.dedup();
            hs
        }
        Access::IndexRange { column, lo, hi } => db
            .index_range(table, *column, lo.clone(), hi.clone())
            .expect("planner only chooses IndexRange when the ordered index exists"),
        Access::Empty => Vec::new(),
    }
}

// ----------------------------------------------------------------------
// N-way join planning
// ----------------------------------------------------------------------

/// An equi-join connection between two `from` items, written as
/// `(item_a, col_a, item_b, col_b)`: a top-level `and`-conjunct
/// `a.col_a = b.col_b` whose columns share a non-float declared type.
pub type EquiEdge = (usize, usize, usize, usize);

/// One step of a [`JoinPlan`]: attach `item` to the already-joined prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// The `from`-item index being attached.
    pub item: usize,
    /// Equi-join keys connecting `item` to already-placed items, as
    /// `(placed_item, placed_col, new_col)`. Empty = cross (nested-loop)
    /// step; non-empty = hash step on the composite key.
    pub edges: Vec<(usize, usize, usize)>,
}

/// A greedy join order over the `from` items: start from the most
/// selective item (fewest rows after access-path selection and predicate
/// pushdown), then repeatedly attach the smallest item reachable through
/// an equi-join edge, falling back to the smallest remaining item as a
/// cross step only when nothing connects. Hash probes are a sound
/// prefilter — the executor still evaluates the full predicate per
/// assembled combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// The item the join starts from.
    pub first: usize,
    /// The remaining items, in attach order.
    pub steps: Vec<JoinStep>,
}

impl JoinPlan {
    /// Item indices in join order (`first`, then each step's item).
    pub fn order(&self) -> Vec<usize> {
        let mut o = Vec::with_capacity(1 + self.steps.len());
        o.push(self.first);
        o.extend(self.steps.iter().map(|s| s.item));
        o
    }
}

/// Extract the equi-join edges of `predicate` between the items of the
/// innermost `layout` level: conjuncts `col = col` whose two sides resolve
/// to *different* items of this query and share a non-float declared type.
/// Float keys are excluded so that storage-level hash equality provably
/// agrees with SQL equality (`-0.0`/`0.0` and NaN make floats unsafe as
/// hash keys).
pub fn equi_join_edges(
    predicate: Option<&Expr>,
    layout: &Layout,
    types: &[Vec<DataType>],
) -> Vec<EquiEdge> {
    let Some(pred) = predicate else {
        return Vec::new();
    };
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    let mut edges = Vec::new();
    for c in conjuncts {
        let Expr::Binary { left, op: BinaryOp::Eq, right } = c else {
            continue;
        };
        if !matches!(left.as_ref(), Expr::Column { .. })
            || !matches!(right.as_ref(), Expr::Column { .. })
        {
            continue;
        }
        let (
            CompiledExpr::Slot { level_up: 0, frame: fa, col: ca },
            CompiledExpr::Slot { level_up: 0, frame: fb, col: cb },
        ) = (compile(left, layout), compile(right, layout))
        else {
            continue;
        };
        if fa == fb {
            continue;
        }
        let (ta, tb) = (types[fa][ca], types[fb][cb]);
        if ta == tb && ta != DataType::Float && !edges.contains(&(fa, ca, fb, cb)) {
            edges.push((fa, ca, fb, cb));
        }
    }
    edges
}

/// Build a greedy [`JoinPlan`] from per-item cardinalities and equi-join
/// edges. Ties break toward the lower item index, keeping plans
/// deterministic.
pub fn build_join_plan(cards: &[usize], edges: &[EquiEdge]) -> JoinPlan {
    let n = cards.len();
    assert!(n > 0, "join plan requires at least one from item");
    let by_size = |&i: &usize| (cards[i], i);
    let first = (0..n).min_by_key(by_size).expect("n > 0");
    let mut placed = vec![false; n];
    placed[first] = true;
    let mut steps = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let connected = |i: usize| {
            edges
                .iter()
                .any(|&(a, _, b, _)| (placed[a] && b == i) || (placed[b] && a == i))
        };
        let next = (0..n)
            .filter(|&i| !placed[i] && connected(i))
            .min_by_key(by_size)
            .unwrap_or_else(|| {
                (0..n).filter(|&i| !placed[i]).min_by_key(by_size).expect("some item unplaced")
            });
        let mut step_edges: Vec<(usize, usize, usize)> = edges
            .iter()
            .filter_map(|&(a, ca, b, cb)| {
                if placed[a] && b == next {
                    Some((a, ca, cb))
                } else if placed[b] && a == next {
                    Some((b, cb, ca))
                } else {
                    None
                }
            })
            .collect();
        step_edges.sort_unstable();
        step_edges.dedup();
        placed[next] = true;
        steps.push(JoinStep { item: next, edges: step_edges });
    }
    JoinPlan { first, steps }
}

/// Flatten a predicate into its top-level `and`-conjuncts (shared with the
/// hash-join detector).
pub(crate) fn collect_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary { left, op: BinaryOp::And, right } = e {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Whether an expression is evaluable without row bindings, transition
/// tables, or the database (literals and arithmetic over them).
fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Unary { expr, .. } => is_constant(expr),
        Expr::Binary { left, right, .. } => is_constant(left) && is_constant(right),
        _ => false,
    }
}

/// Coerce an `in`-list probe value to the stored column type.
/// `Ok(None)`: the value can never match, but comparing it is well-defined
/// (`NULL`, fractional float vs int) — safe to skip. `Err(())`: per-row
/// comparison would raise a type error, so the probe cannot soundly
/// replace evaluation.
fn in_probe_value(v: &Value, ty: DataType) -> Result<Option<Value>, ()> {
    match (v, ty) {
        (Value::Null, _) => Ok(None),
        // NaN compares UNKNOWN with everything (never Equal), so like NULL
        // it can never make the membership test true — skip the probe
        // rather than hit bit-equal stored NaNs.
        (Value::Float(f), _) if f.is_nan() => Ok(None),
        (Value::Int(i), DataType::Float) => Ok(Some(Value::Float(*i as f64))),
        (Value::Float(f), DataType::Int) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                Ok(Some(Value::Int(*f as i64)))
            } else {
                Ok(None)
            }
        }
        (v, ty) if v.data_type() == Some(ty) => Ok(Some(v.clone())),
        _ => Err(()),
    }
}

/// Coerce an equality probe value to the stored column type. `None` means
/// no stored value can compare equal (`NULL`, or a fractional float probed
/// against an int column, or a cross-domain type).
fn probe_value(v: &Value, ty: DataType) -> Option<Value> {
    match (v, ty) {
        (Value::Null, _) => None, // `c = NULL` is unknown for every row
        (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
        (Value::Float(f), DataType::Int) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                Some(Value::Int(*f as i64))
            } else {
                None
            }
        }
        (v, ty) if v.data_type() == Some(ty) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::{paper_example_schemas, Database, IndexKind};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        db.create_index(t, ColumnId(3)).unwrap(); // dept_no
        (db, t)
    }

    fn access(db: &Database, t: TableId, pred: &str, sole: bool) -> Access {
        let e = parse_expr(pred).unwrap();
        choose_access(QueryCtx::plain(db), t, "emp", sole, Some(&e))
    }

    #[test]
    fn picks_index_for_equality() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // Reversed operands too.
        assert_eq!(
            access(&db, t, "5 = dept_no", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // Constant arithmetic is folded.
        assert_eq!(
            access(&db, t, "dept_no = 2 + 3", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn finds_conjunct_inside_and() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "salary > 100 and dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn falls_back_to_scan() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "salary = 100.0", true), Access::FullScan, "salary not indexed");
        assert_eq!(access(&db, t, "dept_no > 5", true), Access::FullScan, "not equality");
        assert_eq!(
            access(&db, t, "dept_no = 5 or salary > 1", true),
            Access::FullScan,
            "disjunction cannot use the probe"
        );
        assert_eq!(
            access(&db, t, "dept_no = salary", true),
            Access::FullScan,
            "rhs not constant"
        );
    }

    #[test]
    fn unqualified_requires_sole_item() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "dept_no = 5", false), Access::FullScan);
        assert_eq!(
            access(&db, t, "emp.dept_no = 5", false),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn impossible_probes_yield_empty() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "dept_no = NULL", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no = 2.5", true), Access::Empty);
    }

    #[test]
    fn cross_type_probe_coerces() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no = 5.0", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn scan_handles_respects_access() {
        let (mut db, t) = setup();
        use setrules_storage::tuple;
        let h1 = db.insert(t, tuple!["a", 1, 1.0, 5]).unwrap();
        let _h2 = db.insert(t, tuple!["b", 2, 1.0, 6]).unwrap();
        let acc = access(&db, t, "dept_no = 5", true);
        assert_eq!(scan_handles(&db, t, &acc), vec![h1]);
        assert_eq!(scan_handles(&db, t, &Access::Empty), vec![]);
        assert_eq!(scan_handles(&db, t, &Access::FullScan).len(), 2);
    }

    #[test]
    fn picks_index_for_in_list() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no in (5, 7)", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5), Value::Int(7)] }
        );
        // Inside a conjunction, with duplicate and folded values.
        assert_eq!(
            access(&db, t, "salary > 100 and dept_no in (5, 2 + 3, 7)", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5), Value::Int(7)] }
        );
        // NULL and fractional items can never match: skipped, not probed.
        assert_eq!(
            access(&db, t, "dept_no in (5, NULL, 2.5)", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5)] }
        );
        // Entirely unmatchable list: provably empty.
        assert_eq!(access(&db, t, "dept_no in (NULL, 2.5)", true), Access::Empty);
    }

    #[test]
    fn in_list_fallbacks() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "salary in (1.0, 2.0)", true), Access::FullScan, "not indexed");
        assert_eq!(
            access(&db, t, "dept_no not in (5, 7)", true),
            Access::FullScan,
            "negation cannot probe"
        );
        assert_eq!(
            access(&db, t, "dept_no in (5, emp_no)", true),
            Access::FullScan,
            "non-constant item"
        );
        // A cross-domain item would raise a per-row type error; probing
        // would swallow it.
        assert_eq!(access(&db, t, "dept_no in (5, 'x')", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no in (5)", false), Access::FullScan, "not sole item");
    }

    /// `setup()` plus an *ordered* index on `dept_no` (replacing the hash
    /// one) and on `salary`.
    fn setup_ordered() -> (Database, TableId) {
        let (mut db, t) = setup();
        db.drop_index(t, ColumnId(3));
        db.create_index_of(t, ColumnId(3), IndexKind::Ordered).unwrap(); // dept_no
        db.create_index_of(t, ColumnId(2), IndexKind::Ordered).unwrap(); // salary
        (db, t)
    }

    fn int_range(column: ColumnId, lo: Bound<i64>, hi: Bound<i64>) -> Access {
        Access::IndexRange {
            column,
            lo: lo.map(Value::Int),
            hi: hi.map(Value::Int),
        }
    }

    #[test]
    fn picks_range_for_between() {
        let (db, t) = setup_ordered();
        assert_eq!(
            access(&db, t, "dept_no between 5 and 7", true),
            int_range(ColumnId(3), Bound::Included(5), Bound::Included(7))
        );
        // An arbitrarily wide range is one BTree walk — no enumeration cap.
        assert_eq!(
            access(&db, t, "dept_no between 0 and 100000", true),
            int_range(ColumnId(3), Bound::Included(0), Bound::Included(100000))
        );
        // Fractional bounds tighten inward for int columns.
        assert_eq!(
            access(&db, t, "dept_no between 4.5 and 6.5", true),
            int_range(ColumnId(3), Bound::Included(5), Bound::Included(6))
        );
        // Inverted or NULL-bounded ranges are provably empty.
        assert_eq!(access(&db, t, "dept_no between 7 and 5", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no between NULL and 5", true), Access::Empty);
    }

    #[test]
    fn picks_range_for_comparisons() {
        let (db, t) = setup_ordered();
        // One-sided bounds leave the other side open; the int-column open
        // lower side starts just past the NULL bucket.
        assert_eq!(
            access(&db, t, "dept_no > 5", true),
            int_range(ColumnId(3), Bound::Excluded(5), Bound::Unbounded)
        );
        assert_eq!(
            access(&db, t, "5 < dept_no", true),
            int_range(ColumnId(3), Bound::Excluded(5), Bound::Unbounded),
            "flipped operand order"
        );
        assert_eq!(
            access(&db, t, "dept_no <= 7", true),
            Access::IndexRange {
                column: ColumnId(3),
                lo: Bound::Excluded(Value::Null),
                hi: Bound::Included(Value::Int(7)),
            }
        );
        // Conjuncts on the same column intersect to the tightest interval.
        assert_eq!(
            access(&db, t, "dept_no > 2 and dept_no <= 7 and dept_no >= 4", true),
            int_range(ColumnId(3), Bound::Included(4), Bound::Included(7))
        );
        // Contradictory conjuncts are provably empty.
        assert_eq!(access(&db, t, "dept_no > 5 and dept_no < 3", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no > 5 and dept_no <= 5", true), Access::Empty);
    }

    #[test]
    fn float_ranges_normalize_zeros_infinities_and_nan() {
        let (db, t) = setup_ordered();
        // `>= 0.0` must keep the -0.0 bucket (a distinct BTree key that is
        // SQL-equal to 0.0); the open upper side stops at +inf so stored
        // NaNs — which compare UNKNOWN with any bound — stay out.
        assert_eq!(
            access(&db, t, "salary >= 0.0", true),
            Access::IndexRange {
                column: ColumnId(2),
                lo: Bound::Included(Value::Float(-0.0)),
                hi: Bound::Included(Value::Float(f64::INFINITY)),
            }
        );
        assert_eq!(
            access(&db, t, "salary < 0.0", true),
            Access::IndexRange {
                column: ColumnId(2),
                lo: Bound::Included(Value::Float(f64::NEG_INFINITY)),
                hi: Bound::Excluded(Value::Float(-0.0)),
            },
            "< 0 skips both zero buckets; -inf itself is a legal stored value"
        );
        assert_eq!(
            access(&db, t, "salary > 0.0", true),
            Access::IndexRange {
                column: ColumnId(2),
                lo: Bound::Excluded(Value::Float(0.0)),
                hi: Bound::Included(Value::Float(f64::INFINITY)),
            },
            "> 0 starts past the 0.0 bucket (and the -0.0 bucket below it)"
        );
        // NaN bounds make the predicate provably empty.
        assert_eq!(access(&db, t, "salary > 0.0 / 0.0", true), Access::Empty);
        assert_eq!(access(&db, t, "salary between 1.0 and 0.0 / 0.0", true), Access::Empty);
    }

    #[test]
    fn zero_equality_probes_cover_both_signed_zero_buckets() {
        let (db, t) = setup_ordered();
        // `= 0.0` is true for stored `-0.0` too, but the index keys the
        // two zeros separately — the probe must cover both buckets.
        let both = Access::IndexIn {
            column: ColumnId(2),
            values: vec![Value::Float(-0.0), Value::Float(0.0)],
        };
        assert_eq!(access(&db, t, "salary = 0.0", true), both);
        assert_eq!(access(&db, t, "salary = -0.0", true), both);
        assert_eq!(
            access(&db, t, "salary in (0.0, 1.5)", true),
            Access::IndexIn {
                column: ColumnId(2),
                values: vec![Value::Float(-0.0), Value::Float(0.0), Value::Float(1.5)],
            }
        );
    }

    #[test]
    fn int_ranges_with_out_of_domain_float_bounds() {
        let (db, t) = setup_ordered();
        // Every int is below 1e300, so `>` can never hold and `<` always
        // does (the latter constrains nothing — scan, not a full-index walk).
        assert_eq!(access(&db, t, "dept_no > 1e300", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no < 1e300", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no < -1e300", true), Access::Empty);
        // Int-column comparisons widen to f64: +inf behaves like 1e300.
        assert_eq!(access(&db, t, "dept_no >= 1e400", true), Access::Empty);
    }

    #[test]
    fn text_ranges_use_the_ordered_index() {
        let (mut db, t) = setup_ordered();
        db.create_index_of(t, ColumnId(0), IndexKind::Ordered).unwrap(); // name
        assert_eq!(
            access(&db, t, "name >= 'e' and name < 'f'", true),
            Access::IndexRange {
                column: ColumnId(0),
                lo: Bound::Included(Value::Text("e".into())),
                hi: Bound::Excluded(Value::Text("f".into())),
            }
        );
    }

    #[test]
    fn between_fallbacks() {
        let (db, t) = setup();
        // `setup()` has only a *hash* index on dept_no: no key order to
        // scan, so range-shaped predicates stay full scans...
        assert_eq!(access(&db, t, "dept_no between 5 and 7", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no > 5 and dept_no < 7", true), Access::FullScan);
        // ...but provable emptiness doesn't need an index at all.
        assert_eq!(access(&db, t, "dept_no between 7 and 5", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no between NULL and 5", true), Access::Empty);
        let (db, t) = setup_ordered();
        assert_eq!(
            access(&db, t, "dept_no not between 5 and 7", true),
            Access::FullScan,
            "negation cannot use the range"
        );
        // Cross-domain bound: per-row evaluation must keep its type error.
        assert_eq!(access(&db, t, "dept_no between 'a' and 'b'", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no between 'a' and NULL", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no < 'a'", true), Access::FullScan);
        // Non-constant bound is left to the executor.
        assert_eq!(access(&db, t, "dept_no < emp_no", true), Access::FullScan);
    }

    #[test]
    fn equality_beats_range() {
        let (db, t) = setup_ordered();
        assert_eq!(
            access(&db, t, "dept_no > 1 and dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // ...but a range beats a full scan even when another conjunct is
        // unusable.
        assert_eq!(
            access(&db, t, "name like 'e%' and dept_no > 1", true),
            int_range(ColumnId(3), Bound::Excluded(1), Bound::Unbounded)
        );
    }

    #[test]
    fn range_scan_handles_are_sorted_and_exclude_null() {
        let (mut db, t) = setup_ordered();
        use setrules_storage::tuple;
        // Insert out of key order so bucket order differs from handle order.
        let h7 = db.insert(t, tuple!["a", 1, 1.0, 7]).unwrap();
        let h5a = db.insert(t, tuple!["b", 2, 1.0, 5]).unwrap();
        let _h9 = db.insert(t, tuple!["c", 3, 1.0, 9]).unwrap();
        let h5b = db.insert(t, tuple!["d", 4, 1.0, 5]).unwrap();
        let hnull = db.insert(t, tuple!["e", 5, 1.0, Value::Null]).unwrap();
        let acc = access(&db, t, "dept_no between 5 and 7", true);
        assert!(matches!(acc, Access::IndexRange { .. }));
        let mut expect = vec![h7, h5a, h5b];
        expect.sort_unstable();
        assert_eq!(scan_handles(&db, t, &acc), expect, "handle order, not key order");
        // An open-ended range skips the NULL bucket.
        let acc = access(&db, t, "dept_no <= 100", true);
        let hs = scan_handles(&db, t, &acc);
        assert_eq!(hs.len(), 4);
        assert!(!hs.contains(&hnull));
    }

    #[test]
    fn nan_probes_fall_back_to_scan_or_skip() {
        let (mut db, t) = setup();
        db.create_index(t, ColumnId(2)).unwrap(); // salary (float)
        assert_eq!(
            access(&db, t, "salary = 0.0 / 0.0", true),
            Access::FullScan,
            "NaN equi-probe must scan: the hash index would match stored NaNs bitwise"
        );
        assert_eq!(
            access(&db, t, "salary in (1.0, 0.0 / 0.0)", true),
            Access::IndexIn { column: ColumnId(2), values: vec![Value::Float(1.0)] },
            "NaN in-list item can never match: skipped like NULL"
        );
        assert_eq!(access(&db, t, "salary in (0.0 / 0.0)", true), Access::Empty);
    }

    #[test]
    fn equality_beats_multi_probe() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no in (5, 7) and dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn multi_probe_handles_are_sorted_and_deduped() {
        let (mut db, t) = setup();
        use setrules_storage::tuple;
        // Insert in an order that makes bucket order differ from handle
        // order for a naive concat (7 before 5, interleaved).
        let h7a = db.insert(t, tuple!["a", 1, 1.0, 7]).unwrap();
        let h5a = db.insert(t, tuple!["b", 2, 1.0, 5]).unwrap();
        let h7b = db.insert(t, tuple!["c", 3, 1.0, 7]).unwrap();
        let h5b = db.insert(t, tuple!["d", 4, 1.0, 5]).unwrap();
        let acc = access(&db, t, "dept_no in (5, 7)", true);
        let mut expect = vec![h7a, h5a, h7b, h5b];
        expect.sort_unstable();
        assert_eq!(scan_handles(&db, t, &acc), expect, "handle order, not probe order");
    }

    #[test]
    fn greedy_join_plan_orders_by_cardinality() {
        // Items: 0 (100 rows), 1 (5 rows), 2 (50 rows); edges 0-1 and 0-2.
        let edges: Vec<EquiEdge> = vec![(0, 0, 1, 0), (2, 1, 0, 1)];
        let plan = build_join_plan(&[100, 5, 50], &edges);
        assert_eq!(plan.first, 1, "fewest rows starts");
        assert_eq!(plan.order(), vec![1, 0, 2]);
        // Step 1 attaches item 0 through the 0-1 edge (placed item first).
        assert_eq!(plan.steps[0], JoinStep { item: 0, edges: vec![(1, 0, 0)] });
        // Step 2 attaches item 2 through the 2-0 edge, reoriented.
        assert_eq!(plan.steps[1], JoinStep { item: 2, edges: vec![(0, 1, 1)] });
    }

    #[test]
    fn disconnected_items_become_cross_steps() {
        let plan = build_join_plan(&[10, 3, 7], &[]);
        assert_eq!(plan.order(), vec![1, 2, 0], "smallest-first cross order");
        assert!(plan.steps.iter().all(|s| s.edges.is_empty()));
    }

    #[test]
    fn equi_edges_require_distinct_items_and_joinable_types() {
        use crate::compile::LayoutFrame;
        use setrules_sql::parse_expr;
        use std::sync::Arc;
        let mut layout = Layout::new();
        layout.push_level(vec![
            LayoutFrame {
                name: "emp".into(),
                columns: Arc::new(vec!["dept_no".into(), "salary".into()]),
            },
            LayoutFrame { name: "dept".into(), columns: Arc::new(vec!["dept_no".into()]) },
        ]);
        let types =
            vec![vec![DataType::Int, DataType::Float], vec![DataType::Int]];
        let edge_for = |src: &str| {
            let e = parse_expr(src).unwrap();
            equi_join_edges(Some(&e), &layout, &types)
        };
        assert_eq!(edge_for("emp.dept_no = dept.dept_no"), vec![(0, 0, 1, 0)]);
        assert_eq!(
            edge_for("salary > 10 and emp.dept_no = dept.dept_no"),
            vec![(0, 0, 1, 0)],
            "found inside a conjunction"
        );
        assert!(edge_for("emp.dept_no = emp.dept_no").is_empty(), "same item");
        assert!(edge_for("emp.salary = dept.dept_no").is_empty(), "type mismatch");
        assert!(edge_for("emp.dept_no = dept.dept_no or salary > 1").is_empty(), "disjunction");
        assert!(edge_for("dept_no = 5").is_empty(), "ambiguous unqualified name");
    }
}
