//! Access-path selection: the one optimization the paper's argument needs.
//!
//! §1: set-oriented rules keep relational optimization applicable, and that
//! optimization "is directly applicable to the rules themselves". We
//! implement the representative case: an equality predicate on an indexed
//! column turns a full scan into an index probe, whether the scan comes
//! from a user query or from the body of a rule. Benchmark B7 measures the
//! effect.

use setrules_sql::ast::{BinaryOp, Expr};
use setrules_storage::{ColumnId, DataType, Database, TableId, Value};

use crate::bindings::Bindings;
use crate::ctx::QueryCtx;
use crate::eval::eval_expr;

/// How a base-table `from` item will be scanned.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan every live tuple.
    FullScan,
    /// Probe the hash index on `column` for `value`.
    IndexEq {
        /// The indexed column.
        column: ColumnId,
        /// The probe value (already coerced to the column type).
        value: Value,
    },
    /// The predicate can never be true for any tuple (e.g. `c = NULL`,
    /// or an equality with a value outside the column's domain).
    Empty,
}

/// Choose an access path for scanning `table` bound as `binding`, given the
/// query's `where` predicate.
///
/// Only top-level `and`-conjuncts of the shape `col = const` (either
/// operand order) are considered, and unqualified column names are only
/// trusted when this is the sole `from` item (`sole_item`) — otherwise the
/// name might belong to a different item. The full predicate is still
/// re-checked per row by the executor, so a missed opportunity costs time,
/// never correctness.
pub fn choose_access(
    ctx: QueryCtx<'_>,
    table: TableId,
    binding: &str,
    sole_item: bool,
    predicate: Option<&Expr>,
) -> Access {
    let Some(pred) = predicate else {
        return Access::FullScan;
    };
    let schema = ctx.db.schema(table);
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    for c in conjuncts {
        let Expr::Binary { left, op: BinaryOp::Eq, right } = c else {
            continue;
        };
        for (col_side, const_side) in [(left, right), (right, left)] {
            let Expr::Column { qualifier, name } = col_side.as_ref() else {
                continue;
            };
            match qualifier.as_deref() {
                Some(q) if q == binding => {}
                None if sole_item => {}
                _ => continue,
            }
            let Ok(column) = schema.column_id(name) else {
                continue;
            };
            if !ctx.db.has_index(table, column) {
                continue;
            }
            if !is_constant(const_side) {
                continue;
            }
            let Ok(v) = eval_expr(ctx, &mut Bindings::new(), None, const_side) else {
                continue;
            };
            return match probe_value(&v, schema.column_type(column)) {
                Some(value) => Access::IndexEq { column, value },
                None => Access::Empty,
            };
        }
    }
    Access::FullScan
}

/// Handles matching an access path, in handle order.
pub fn scan_handles(
    db: &Database,
    table: TableId,
    access: &Access,
) -> Vec<setrules_storage::TupleHandle> {
    match access {
        Access::FullScan => db.table(table).handles().collect(),
        Access::IndexEq { column, value } => db
            .index_lookup(table, *column, value)
            .expect("planner only chooses IndexEq when the index exists"),
        Access::Empty => Vec::new(),
    }
}

/// Flatten a predicate into its top-level `and`-conjuncts (shared with the
/// hash-join detector).
pub(crate) fn collect_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary { left, op: BinaryOp::And, right } = e {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Whether an expression is evaluable without row bindings, transition
/// tables, or the database (literals and arithmetic over them).
fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Unary { expr, .. } => is_constant(expr),
        Expr::Binary { left, right, .. } => is_constant(left) && is_constant(right),
        _ => false,
    }
}

/// Coerce an equality probe value to the stored column type. `None` means
/// no stored value can compare equal (`NULL`, or a fractional float probed
/// against an int column, or a cross-domain type).
fn probe_value(v: &Value, ty: DataType) -> Option<Value> {
    match (v, ty) {
        (Value::Null, _) => None, // `c = NULL` is unknown for every row
        (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
        (Value::Float(f), DataType::Int) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                Some(Value::Int(*f as i64))
            } else {
                None
            }
        }
        (v, ty) if v.data_type() == Some(ty) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::{paper_example_schemas, Database};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        db.create_index(t, ColumnId(3)).unwrap(); // dept_no
        (db, t)
    }

    fn access(db: &Database, t: TableId, pred: &str, sole: bool) -> Access {
        let e = parse_expr(pred).unwrap();
        choose_access(QueryCtx::plain(db), t, "emp", sole, Some(&e))
    }

    #[test]
    fn picks_index_for_equality() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // Reversed operands too.
        assert_eq!(
            access(&db, t, "5 = dept_no", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // Constant arithmetic is folded.
        assert_eq!(
            access(&db, t, "dept_no = 2 + 3", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn finds_conjunct_inside_and() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "salary > 100 and dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn falls_back_to_scan() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "salary = 100.0", true), Access::FullScan, "salary not indexed");
        assert_eq!(access(&db, t, "dept_no > 5", true), Access::FullScan, "not equality");
        assert_eq!(
            access(&db, t, "dept_no = 5 or salary > 1", true),
            Access::FullScan,
            "disjunction cannot use the probe"
        );
        assert_eq!(
            access(&db, t, "dept_no = salary", true),
            Access::FullScan,
            "rhs not constant"
        );
    }

    #[test]
    fn unqualified_requires_sole_item() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "dept_no = 5", false), Access::FullScan);
        assert_eq!(
            access(&db, t, "emp.dept_no = 5", false),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn impossible_probes_yield_empty() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "dept_no = NULL", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no = 2.5", true), Access::Empty);
    }

    #[test]
    fn cross_type_probe_coerces() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no = 5.0", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn scan_handles_respects_access() {
        let (mut db, t) = setup();
        use setrules_storage::tuple;
        let h1 = db.insert(t, tuple!["a", 1, 1.0, 5]).unwrap();
        let _h2 = db.insert(t, tuple!["b", 2, 1.0, 6]).unwrap();
        let acc = access(&db, t, "dept_no = 5", true);
        assert_eq!(scan_handles(&db, t, &acc), vec![h1]);
        assert_eq!(scan_handles(&db, t, &Access::Empty), vec![]);
        assert_eq!(scan_handles(&db, t, &Access::FullScan).len(), 2);
    }
}
