//! Access-path selection: the one optimization the paper's argument needs.
//!
//! §1: set-oriented rules keep relational optimization applicable, and that
//! optimization "is directly applicable to the rules themselves". We
//! implement the representative case: an equality predicate on an indexed
//! column turns a full scan into an index probe, whether the scan comes
//! from a user query or from the body of a rule. Benchmark B7 measures the
//! effect.

use setrules_sql::ast::{BinaryOp, Expr};
use setrules_storage::{ColumnId, DataType, Database, TableId, Value};

use crate::bindings::Bindings;
use crate::compile::{compile, CompiledExpr, Layout};
use crate::ctx::QueryCtx;
use crate::eval::eval_expr;

/// How a base-table `from` item will be scanned.
#[derive(Debug, Clone, PartialEq)]
pub enum Access {
    /// Scan every live tuple.
    FullScan,
    /// Probe the hash index on `column` for `value`.
    IndexEq {
        /// The indexed column.
        column: ColumnId,
        /// The probe value (already coerced to the column type).
        value: Value,
    },
    /// Probe the hash index on `column` once per value (`col in (...)`,
    /// or `col between lo and hi` over an enumerable integer range).
    IndexIn {
        /// The indexed column.
        column: ColumnId,
        /// Deduplicated probe values (already coerced to the column type).
        values: Vec<Value>,
    },
    /// The predicate can never be true for any tuple (e.g. `c = NULL`,
    /// or an equality with a value outside the column's domain).
    Empty,
}

impl Access {
    /// Selectivity rank for comparing candidate paths: lower is better.
    fn rank(&self) -> u8 {
        match self {
            Access::Empty => 0,
            Access::IndexEq { .. } => 1,
            Access::IndexIn { .. } => 2,
            Access::FullScan => 3,
        }
    }
}

/// `between` ranges wider than this stay full scans: enumerating the range
/// would out-probe a scan's sequential pass.
const MAX_BETWEEN_PROBES: i64 = 256;

/// Choose an access path for scanning `table` bound as `binding`, given the
/// query's `where` predicate.
///
/// Top-level `and`-conjuncts of three shapes are considered: `col = const`
/// (either operand order), `col in (const, ...)`, and `col between const
/// and const` over an integer column with an enumerable range. Unqualified
/// column names are only trusted when this is the sole `from` item
/// (`sole_item`) — otherwise the name might belong to a different item.
/// The full predicate is still re-checked per row by the executor, so a
/// missed opportunity costs time, never correctness. When several
/// conjuncts are usable the most selective shape wins (empty > equality
/// probe > multi-probe > scan).
pub fn choose_access(
    ctx: QueryCtx<'_>,
    table: TableId,
    binding: &str,
    sole_item: bool,
    predicate: Option<&Expr>,
) -> Access {
    let Some(pred) = predicate else {
        return Access::FullScan;
    };
    let schema = ctx.db.schema(table);
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    let mut best = Access::FullScan;
    for c in conjuncts {
        let candidate = match c {
            Expr::Binary { left, op: BinaryOp::Eq, right } => {
                eq_candidate(ctx, schema, table, binding, sole_item, left, right)
            }
            Expr::InList { expr, list, negated: false } => {
                in_candidate(ctx, schema, table, binding, sole_item, expr, list)
            }
            Expr::Between { expr, low, high, negated: false } => {
                between_candidate(ctx, schema, table, binding, sole_item, expr, low, high)
            }
            _ => None,
        };
        if let Some(cand) = candidate {
            if cand == Access::Empty {
                return Access::Empty; // nothing beats scanning zero rows
            }
            if cand.rank() < best.rank() {
                best = cand;
            }
        }
    }
    best
}

/// The indexed column behind `col_side`, if it is a column reference
/// attributable to this `from` item with an index on it.
fn indexed_column(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    col_side: &Expr,
) -> Option<ColumnId> {
    let Expr::Column { qualifier, name } = col_side else {
        return None;
    };
    match qualifier.as_deref() {
        Some(q) if q == binding => {}
        None if sole_item => {}
        _ => return None,
    }
    let column = schema.column_id(name).ok()?;
    ctx.db.has_index(table, column).then_some(column)
}

/// Evaluate a constant expression to its value (`None`: not constant, or
/// evaluation fails — leave the error to per-row evaluation).
fn const_value(ctx: QueryCtx<'_>, e: &Expr) -> Option<Value> {
    if !is_constant(e) {
        return None;
    }
    eval_expr(ctx, &mut Bindings::new(), None, e).ok()
}

fn eq_candidate(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    left: &Expr,
    right: &Expr,
) -> Option<Access> {
    for (col_side, const_side) in [(left, right), (right, left)] {
        let Some(column) = indexed_column(ctx, schema, table, binding, sole_item, col_side) else {
            continue;
        };
        let Some(v) = const_value(ctx, const_side) else {
            continue;
        };
        // Never probe with NaN: the hash index stores NaN by bit pattern,
        // so a probe would *find* stored NaNs even though `= NaN` is
        // UNKNOWN for every row — fall back to the scan, whose per-row
        // predicate check gets the semantics right.
        if matches!(v, Value::Float(f) if f.is_nan()) {
            continue;
        }
        return Some(match probe_value(&v, schema.column_type(column)) {
            Some(value) => Access::IndexEq { column, value },
            None => Access::Empty,
        });
    }
    None
}

fn in_candidate(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    col_side: &Expr,
    list: &[Expr],
) -> Option<Access> {
    let column = indexed_column(ctx, schema, table, binding, sole_item, col_side)?;
    let ty = schema.column_type(column);
    let mut values: Vec<Value> = Vec::with_capacity(list.len());
    for item in list {
        let v = const_value(ctx, item)?;
        match in_probe_value(&v, ty) {
            // Comparable but unmatchable (NULL, fractional float vs int):
            // skip the probe; the row set is unaffected because `where`
            // only keeps rows where the predicate is *true*.
            Ok(None) => {}
            Ok(Some(p)) => {
                if !values.contains(&p) {
                    values.push(p);
                }
            }
            // Cross-domain item: per-row evaluation would raise a type
            // error, so probing would change semantics — full scan.
            Err(()) => return None,
        }
    }
    Some(if values.is_empty() { Access::Empty } else { Access::IndexIn { column, values } })
}

#[allow(clippy::too_many_arguments)]
fn between_candidate(
    ctx: QueryCtx<'_>,
    schema: &setrules_storage::TableSchema,
    table: TableId,
    binding: &str,
    sole_item: bool,
    col_side: &Expr,
    low: &Expr,
    high: &Expr,
) -> Option<Access> {
    let column = indexed_column(ctx, schema, table, binding, sole_item, col_side)?;
    if schema.column_type(column) != DataType::Int {
        return None; // only integer ranges are enumerable
    }
    let lo_v = const_value(ctx, low)?;
    let hi_v = const_value(ctx, high)?;
    // Integer bounds of the range; fractional bounds tighten inward.
    // `None` = NULL bound (comparison is unknown, never an error);
    // bailing out keeps per-row type errors from non-numeric bounds.
    let int_bound = |v: &Value, toward_hi: bool| -> Result<Option<i64>, ()> {
        match v {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i)),
            Value::Float(f) if f.is_finite() && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
                Ok(Some(if toward_hi { f.floor() } else { f.ceil() } as i64))
            }
            _ => Err(()),
        }
    };
    let (lo, hi) = match (int_bound(&lo_v, false), int_bound(&hi_v, true)) {
        (Ok(Some(lo)), Ok(Some(hi))) => (lo, hi),
        // A NULL bound makes the conjunct unknown-or-false for every row,
        // and `where` only keeps *true* — provably empty.
        (Ok(None), Ok(_)) | (Ok(_), Ok(None)) => return Some(Access::Empty),
        _ => return None,
    };
    if lo > hi {
        return Some(Access::Empty);
    }
    let span = (hi as i128) - (lo as i128) + 1;
    if span > MAX_BETWEEN_PROBES as i128 {
        return None;
    }
    Some(Access::IndexIn { column, values: (lo..=hi).map(Value::Int).collect() })
}

/// Handles matching an access path, in handle order.
///
/// Index probes return handles in index-bucket order, so they are sorted
/// (and, for multi-probe paths, deduplicated) before returning — the
/// executor's determinism guarantee (`select.rs` module docs) requires
/// index-backed and full-scan plans to produce identical row order.
pub fn scan_handles(
    db: &Database,
    table: TableId,
    access: &Access,
) -> Vec<setrules_storage::TupleHandle> {
    match access {
        Access::FullScan => db.table(table).handles().collect(),
        Access::IndexEq { column, value } => {
            let mut hs = db
                .index_lookup(table, *column, value)
                .expect("planner only chooses IndexEq when the index exists");
            hs.sort_unstable();
            hs
        }
        Access::IndexIn { column, values } => {
            let mut hs = Vec::new();
            for v in values {
                hs.extend(
                    db.index_lookup(table, *column, v)
                        .expect("planner only chooses IndexIn when the index exists"),
                );
            }
            hs.sort_unstable();
            hs.dedup();
            hs
        }
        Access::Empty => Vec::new(),
    }
}

// ----------------------------------------------------------------------
// N-way join planning
// ----------------------------------------------------------------------

/// An equi-join connection between two `from` items, written as
/// `(item_a, col_a, item_b, col_b)`: a top-level `and`-conjunct
/// `a.col_a = b.col_b` whose columns share a non-float declared type.
pub type EquiEdge = (usize, usize, usize, usize);

/// One step of a [`JoinPlan`]: attach `item` to the already-joined prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinStep {
    /// The `from`-item index being attached.
    pub item: usize,
    /// Equi-join keys connecting `item` to already-placed items, as
    /// `(placed_item, placed_col, new_col)`. Empty = cross (nested-loop)
    /// step; non-empty = hash step on the composite key.
    pub edges: Vec<(usize, usize, usize)>,
}

/// A greedy join order over the `from` items: start from the most
/// selective item (fewest rows after access-path selection and predicate
/// pushdown), then repeatedly attach the smallest item reachable through
/// an equi-join edge, falling back to the smallest remaining item as a
/// cross step only when nothing connects. Hash probes are a sound
/// prefilter — the executor still evaluates the full predicate per
/// assembled combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinPlan {
    /// The item the join starts from.
    pub first: usize,
    /// The remaining items, in attach order.
    pub steps: Vec<JoinStep>,
}

impl JoinPlan {
    /// Item indices in join order (`first`, then each step's item).
    pub fn order(&self) -> Vec<usize> {
        let mut o = Vec::with_capacity(1 + self.steps.len());
        o.push(self.first);
        o.extend(self.steps.iter().map(|s| s.item));
        o
    }
}

/// Extract the equi-join edges of `predicate` between the items of the
/// innermost `layout` level: conjuncts `col = col` whose two sides resolve
/// to *different* items of this query and share a non-float declared type.
/// Float keys are excluded so that storage-level hash equality provably
/// agrees with SQL equality (`-0.0`/`0.0` and NaN make floats unsafe as
/// hash keys).
pub fn equi_join_edges(
    predicate: Option<&Expr>,
    layout: &Layout,
    types: &[Vec<DataType>],
) -> Vec<EquiEdge> {
    let Some(pred) = predicate else {
        return Vec::new();
    };
    let mut conjuncts = Vec::new();
    collect_conjuncts(pred, &mut conjuncts);
    let mut edges = Vec::new();
    for c in conjuncts {
        let Expr::Binary { left, op: BinaryOp::Eq, right } = c else {
            continue;
        };
        if !matches!(left.as_ref(), Expr::Column { .. })
            || !matches!(right.as_ref(), Expr::Column { .. })
        {
            continue;
        }
        let (
            CompiledExpr::Slot { level_up: 0, frame: fa, col: ca },
            CompiledExpr::Slot { level_up: 0, frame: fb, col: cb },
        ) = (compile(left, layout), compile(right, layout))
        else {
            continue;
        };
        if fa == fb {
            continue;
        }
        let (ta, tb) = (types[fa][ca], types[fb][cb]);
        if ta == tb && ta != DataType::Float && !edges.contains(&(fa, ca, fb, cb)) {
            edges.push((fa, ca, fb, cb));
        }
    }
    edges
}

/// Build a greedy [`JoinPlan`] from per-item cardinalities and equi-join
/// edges. Ties break toward the lower item index, keeping plans
/// deterministic.
pub fn build_join_plan(cards: &[usize], edges: &[EquiEdge]) -> JoinPlan {
    let n = cards.len();
    assert!(n > 0, "join plan requires at least one from item");
    let by_size = |&i: &usize| (cards[i], i);
    let first = (0..n).min_by_key(by_size).expect("n > 0");
    let mut placed = vec![false; n];
    placed[first] = true;
    let mut steps = Vec::with_capacity(n - 1);
    for _ in 1..n {
        let connected = |i: usize| {
            edges
                .iter()
                .any(|&(a, _, b, _)| (placed[a] && b == i) || (placed[b] && a == i))
        };
        let next = (0..n)
            .filter(|&i| !placed[i] && connected(i))
            .min_by_key(by_size)
            .unwrap_or_else(|| {
                (0..n).filter(|&i| !placed[i]).min_by_key(by_size).expect("some item unplaced")
            });
        let mut step_edges: Vec<(usize, usize, usize)> = edges
            .iter()
            .filter_map(|&(a, ca, b, cb)| {
                if placed[a] && b == next {
                    Some((a, ca, cb))
                } else if placed[b] && a == next {
                    Some((b, cb, ca))
                } else {
                    None
                }
            })
            .collect();
        step_edges.sort_unstable();
        step_edges.dedup();
        placed[next] = true;
        steps.push(JoinStep { item: next, edges: step_edges });
    }
    JoinPlan { first, steps }
}

/// Flatten a predicate into its top-level `and`-conjuncts (shared with the
/// hash-join detector).
pub(crate) fn collect_conjuncts<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
    if let Expr::Binary { left, op: BinaryOp::And, right } = e {
        collect_conjuncts(left, out);
        collect_conjuncts(right, out);
    } else {
        out.push(e);
    }
}

/// Whether an expression is evaluable without row bindings, transition
/// tables, or the database (literals and arithmetic over them).
fn is_constant(e: &Expr) -> bool {
    match e {
        Expr::Literal(_) => true,
        Expr::Unary { expr, .. } => is_constant(expr),
        Expr::Binary { left, right, .. } => is_constant(left) && is_constant(right),
        _ => false,
    }
}

/// Coerce an `in`-list probe value to the stored column type.
/// `Ok(None)`: the value can never match, but comparing it is well-defined
/// (`NULL`, fractional float vs int) — safe to skip. `Err(())`: per-row
/// comparison would raise a type error, so the probe cannot soundly
/// replace evaluation.
fn in_probe_value(v: &Value, ty: DataType) -> Result<Option<Value>, ()> {
    match (v, ty) {
        (Value::Null, _) => Ok(None),
        // NaN compares UNKNOWN with everything (never Equal), so like NULL
        // it can never make the membership test true — skip the probe
        // rather than hit bit-equal stored NaNs.
        (Value::Float(f), _) if f.is_nan() => Ok(None),
        (Value::Int(i), DataType::Float) => Ok(Some(Value::Float(*i as f64))),
        (Value::Float(f), DataType::Int) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                Ok(Some(Value::Int(*f as i64)))
            } else {
                Ok(None)
            }
        }
        (v, ty) if v.data_type() == Some(ty) => Ok(Some(v.clone())),
        _ => Err(()),
    }
}

/// Coerce an equality probe value to the stored column type. `None` means
/// no stored value can compare equal (`NULL`, or a fractional float probed
/// against an int column, or a cross-domain type).
fn probe_value(v: &Value, ty: DataType) -> Option<Value> {
    match (v, ty) {
        (Value::Null, _) => None, // `c = NULL` is unknown for every row
        (Value::Int(i), DataType::Float) => Some(Value::Float(*i as f64)),
        (Value::Float(f), DataType::Int) => {
            if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 {
                Some(Value::Int(*f as i64))
            } else {
                None
            }
        }
        (v, ty) if v.data_type() == Some(ty) => Some(v.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::{paper_example_schemas, Database};

    fn setup() -> (Database, TableId) {
        let mut db = Database::new();
        let (emp, _) = paper_example_schemas();
        let t = db.create_table(emp).unwrap();
        db.create_index(t, ColumnId(3)).unwrap(); // dept_no
        (db, t)
    }

    fn access(db: &Database, t: TableId, pred: &str, sole: bool) -> Access {
        let e = parse_expr(pred).unwrap();
        choose_access(QueryCtx::plain(db), t, "emp", sole, Some(&e))
    }

    #[test]
    fn picks_index_for_equality() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // Reversed operands too.
        assert_eq!(
            access(&db, t, "5 = dept_no", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
        // Constant arithmetic is folded.
        assert_eq!(
            access(&db, t, "dept_no = 2 + 3", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn finds_conjunct_inside_and() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "salary > 100 and dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn falls_back_to_scan() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "salary = 100.0", true), Access::FullScan, "salary not indexed");
        assert_eq!(access(&db, t, "dept_no > 5", true), Access::FullScan, "not equality");
        assert_eq!(
            access(&db, t, "dept_no = 5 or salary > 1", true),
            Access::FullScan,
            "disjunction cannot use the probe"
        );
        assert_eq!(
            access(&db, t, "dept_no = salary", true),
            Access::FullScan,
            "rhs not constant"
        );
    }

    #[test]
    fn unqualified_requires_sole_item() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "dept_no = 5", false), Access::FullScan);
        assert_eq!(
            access(&db, t, "emp.dept_no = 5", false),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn impossible_probes_yield_empty() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "dept_no = NULL", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no = 2.5", true), Access::Empty);
    }

    #[test]
    fn cross_type_probe_coerces() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no = 5.0", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn scan_handles_respects_access() {
        let (mut db, t) = setup();
        use setrules_storage::tuple;
        let h1 = db.insert(t, tuple!["a", 1, 1.0, 5]).unwrap();
        let _h2 = db.insert(t, tuple!["b", 2, 1.0, 6]).unwrap();
        let acc = access(&db, t, "dept_no = 5", true);
        assert_eq!(scan_handles(&db, t, &acc), vec![h1]);
        assert_eq!(scan_handles(&db, t, &Access::Empty), vec![]);
        assert_eq!(scan_handles(&db, t, &Access::FullScan).len(), 2);
    }

    #[test]
    fn picks_index_for_in_list() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no in (5, 7)", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5), Value::Int(7)] }
        );
        // Inside a conjunction, with duplicate and folded values.
        assert_eq!(
            access(&db, t, "salary > 100 and dept_no in (5, 2 + 3, 7)", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5), Value::Int(7)] }
        );
        // NULL and fractional items can never match: skipped, not probed.
        assert_eq!(
            access(&db, t, "dept_no in (5, NULL, 2.5)", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5)] }
        );
        // Entirely unmatchable list: provably empty.
        assert_eq!(access(&db, t, "dept_no in (NULL, 2.5)", true), Access::Empty);
    }

    #[test]
    fn in_list_fallbacks() {
        let (db, t) = setup();
        assert_eq!(access(&db, t, "salary in (1.0, 2.0)", true), Access::FullScan, "not indexed");
        assert_eq!(
            access(&db, t, "dept_no not in (5, 7)", true),
            Access::FullScan,
            "negation cannot probe"
        );
        assert_eq!(
            access(&db, t, "dept_no in (5, emp_no)", true),
            Access::FullScan,
            "non-constant item"
        );
        // A cross-domain item would raise a per-row type error; probing
        // would swallow it.
        assert_eq!(access(&db, t, "dept_no in (5, 'x')", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no in (5)", false), Access::FullScan, "not sole item");
    }

    #[test]
    fn picks_index_for_between() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no between 5 and 7", true),
            Access::IndexIn {
                column: ColumnId(3),
                values: vec![Value::Int(5), Value::Int(6), Value::Int(7)],
            }
        );
        // Fractional bounds tighten inward.
        assert_eq!(
            access(&db, t, "dept_no between 4.5 and 6.5", true),
            Access::IndexIn { column: ColumnId(3), values: vec![Value::Int(5), Value::Int(6)] }
        );
        // Inverted or NULL-bounded ranges are provably empty.
        assert_eq!(access(&db, t, "dept_no between 7 and 5", true), Access::Empty);
        assert_eq!(access(&db, t, "dept_no between NULL and 5", true), Access::Empty);
    }

    #[test]
    fn between_fallbacks() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no between 0 and 100000", true),
            Access::FullScan,
            "range too wide to enumerate"
        );
        assert_eq!(
            access(&db, t, "salary between 1.0 and 2.0", true),
            Access::FullScan,
            "float column ranges are not enumerable"
        );
        assert_eq!(
            access(&db, t, "dept_no not between 5 and 7", true),
            Access::FullScan,
            "negation cannot probe"
        );
        // Non-numeric bound: per-row evaluation must keep its type error.
        assert_eq!(access(&db, t, "dept_no between 'a' and 'b'", true), Access::FullScan);
        assert_eq!(access(&db, t, "dept_no between 'a' and NULL", true), Access::FullScan);
    }

    #[test]
    fn nan_probes_fall_back_to_scan_or_skip() {
        let (mut db, t) = setup();
        db.create_index(t, ColumnId(2)).unwrap(); // salary (float)
        assert_eq!(
            access(&db, t, "salary = 0.0 / 0.0", true),
            Access::FullScan,
            "NaN equi-probe must scan: the hash index would match stored NaNs bitwise"
        );
        assert_eq!(
            access(&db, t, "salary in (1.0, 0.0 / 0.0)", true),
            Access::IndexIn { column: ColumnId(2), values: vec![Value::Float(1.0)] },
            "NaN in-list item can never match: skipped like NULL"
        );
        assert_eq!(access(&db, t, "salary in (0.0 / 0.0)", true), Access::Empty);
    }

    #[test]
    fn equality_beats_multi_probe() {
        let (db, t) = setup();
        assert_eq!(
            access(&db, t, "dept_no in (5, 7) and dept_no = 5", true),
            Access::IndexEq { column: ColumnId(3), value: Value::Int(5) }
        );
    }

    #[test]
    fn multi_probe_handles_are_sorted_and_deduped() {
        let (mut db, t) = setup();
        use setrules_storage::tuple;
        // Insert in an order that makes bucket order differ from handle
        // order for a naive concat (7 before 5, interleaved).
        let h7a = db.insert(t, tuple!["a", 1, 1.0, 7]).unwrap();
        let h5a = db.insert(t, tuple!["b", 2, 1.0, 5]).unwrap();
        let h7b = db.insert(t, tuple!["c", 3, 1.0, 7]).unwrap();
        let h5b = db.insert(t, tuple!["d", 4, 1.0, 5]).unwrap();
        let acc = access(&db, t, "dept_no in (5, 7)", true);
        let mut expect = vec![h7a, h5a, h7b, h5b];
        expect.sort_unstable();
        assert_eq!(scan_handles(&db, t, &acc), expect, "handle order, not probe order");
        // Overlapping between-range: each handle exactly once.
        let acc = access(&db, t, "dept_no between 5 and 7", true);
        assert_eq!(scan_handles(&db, t, &acc), expect);
    }

    #[test]
    fn greedy_join_plan_orders_by_cardinality() {
        // Items: 0 (100 rows), 1 (5 rows), 2 (50 rows); edges 0-1 and 0-2.
        let edges: Vec<EquiEdge> = vec![(0, 0, 1, 0), (2, 1, 0, 1)];
        let plan = build_join_plan(&[100, 5, 50], &edges);
        assert_eq!(plan.first, 1, "fewest rows starts");
        assert_eq!(plan.order(), vec![1, 0, 2]);
        // Step 1 attaches item 0 through the 0-1 edge (placed item first).
        assert_eq!(plan.steps[0], JoinStep { item: 0, edges: vec![(1, 0, 0)] });
        // Step 2 attaches item 2 through the 2-0 edge, reoriented.
        assert_eq!(plan.steps[1], JoinStep { item: 2, edges: vec![(0, 1, 1)] });
    }

    #[test]
    fn disconnected_items_become_cross_steps() {
        let plan = build_join_plan(&[10, 3, 7], &[]);
        assert_eq!(plan.order(), vec![1, 2, 0], "smallest-first cross order");
        assert!(plan.steps.iter().all(|s| s.edges.is_empty()));
    }

    #[test]
    fn equi_edges_require_distinct_items_and_joinable_types() {
        use crate::compile::LayoutFrame;
        use setrules_sql::parse_expr;
        use std::sync::Arc;
        let mut layout = Layout::new();
        layout.push_level(vec![
            LayoutFrame {
                name: "emp".into(),
                columns: Arc::new(vec!["dept_no".into(), "salary".into()]),
            },
            LayoutFrame { name: "dept".into(), columns: Arc::new(vec!["dept_no".into()]) },
        ]);
        let types =
            vec![vec![DataType::Int, DataType::Float], vec![DataType::Int]];
        let edge_for = |src: &str| {
            let e = parse_expr(src).unwrap();
            equi_join_edges(Some(&e), &layout, &types)
        };
        assert_eq!(edge_for("emp.dept_no = dept.dept_no"), vec![(0, 0, 1, 0)]);
        assert_eq!(
            edge_for("salary > 10 and emp.dept_no = dept.dept_no"),
            vec![(0, 0, 1, 0)],
            "found inside a conjunction"
        );
        assert!(edge_for("emp.dept_no = emp.dept_no").is_empty(), "same item");
        assert!(edge_for("emp.salary = dept.dept_no").is_empty(), "type mismatch");
        assert!(edge_for("emp.dept_no = dept.dept_no or salary > 1").is_empty(), "disjunction");
        assert!(edge_for("dept_no = 5").is_empty(), "ambiguous unqualified name");
    }
}
