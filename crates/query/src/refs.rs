//! Column-reference collection over `select` statements.
//!
//! Used to attribute *which columns* of a stored table a top-level `select`
//! operation read, for the `S` component of transition effects (the §5.1
//! extension). The attribution is syntactic and conservative: qualified
//! references go to the matching top-level binding; unqualified references
//! go to every top-level item whose schema contains the column; a wildcard
//! marks every column of every item it covers. References arising inside
//! subqueries are included (they did read the data).

use std::collections::BTreeSet;

use setrules_sql::ast::{Expr, SelectItem, SelectStmt, TableSource};
use setrules_storage::{ColumnId, Database};

/// The columns of each top-level stored-table `from` item that the
/// statement references. Entry `i` corresponds to `stmt.from[i]`; `None`
/// means "all columns" (wildcard).
pub fn referenced_columns(db: &Database, stmt: &SelectStmt) -> Vec<Option<BTreeSet<ColumnId>>> {
    let mut out: Vec<Option<BTreeSet<ColumnId>>> =
        stmt.from.iter().map(|_| Some(BTreeSet::new())).collect();

    // Gather raw (qualifier, name) references and wildcard coverage.
    let mut refs: BTreeSet<(Option<String>, String)> = BTreeSet::new();
    let mut saw_wildcard = false;
    let mut qualified_wildcards: BTreeSet<String> = BTreeSet::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => saw_wildcard = true,
            SelectItem::QualifiedWildcard(q) => {
                qualified_wildcards.insert(q.clone());
            }
            SelectItem::Expr { expr, .. } => collect_expr(expr, &mut refs),
        }
    }
    for e in stmt
        .predicate
        .iter()
        .chain(stmt.group_by.iter())
        .chain(stmt.having.iter())
        .chain(stmt.order_by.iter().map(|(e, _)| e))
    {
        collect_expr(e, &mut refs);
    }

    for (i, tref) in stmt.from.iter().enumerate() {
        let TableSource::Named(table) = &tref.source else {
            out[i] = Some(BTreeSet::new()); // transition tables carry no S entries
            continue;
        };
        let Ok(tid) = db.table_id(table) else {
            continue;
        };
        let schema = db.schema(tid);
        let binding = tref.binding_name();
        if saw_wildcard || qualified_wildcards.contains(binding) {
            out[i] = None;
            continue;
        }
        let cols = out[i].as_mut().expect("initialized Some above");
        for (q, name) in &refs {
            let applies = match q {
                Some(q) => q == binding,
                None => true,
            };
            if applies {
                if let Ok(c) = schema.column_id(name) {
                    cols.insert(c);
                }
            }
        }
    }
    out
}

fn collect_expr(e: &Expr, out: &mut BTreeSet<(Option<String>, String)>) {
    match e {
        Expr::Literal(_) => {}
        Expr::Column { qualifier, name } => {
            out.insert((qualifier.clone(), name.clone()));
        }
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } => collect_expr(expr, out),
        Expr::Binary { left, right, .. } => {
            collect_expr(left, out);
            collect_expr(right, out);
        }
        Expr::InList { expr, list, .. } => {
            collect_expr(expr, out);
            for i in list {
                collect_expr(i, out);
            }
        }
        Expr::InSubquery { expr, subquery, .. } => {
            collect_expr(expr, out);
            collect_select(subquery, out);
        }
        Expr::Exists { subquery, .. } => collect_select(subquery, out),
        Expr::ScalarSubquery(s) => collect_select(s, out),
        Expr::Between { expr, low, high, .. } => {
            collect_expr(expr, out);
            collect_expr(low, out);
            collect_expr(high, out);
        }
        Expr::Like { expr, pattern, escape, .. } => {
            collect_expr(expr, out);
            collect_expr(pattern, out);
            if let Some(e) = escape {
                collect_expr(e, out);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                collect_expr(a, out);
            }
        }
    }
}

fn collect_select(s: &SelectStmt, out: &mut BTreeSet<(Option<String>, String)>) {
    for item in &s.projection {
        if let SelectItem::Expr { expr, .. } = item {
            collect_expr(expr, out);
        }
    }
    for e in s
        .predicate
        .iter()
        .chain(s.group_by.iter())
        .chain(s.having.iter())
        .chain(s.order_by.iter().map(|(e, _)| e))
    {
        collect_expr(e, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::{ast::DmlOp, ast::Statement, parse_statement};
    use setrules_storage::paper_example_schemas;

    fn emp_db() -> Database {
        let mut db = Database::new();
        let (emp, dept) = paper_example_schemas();
        db.create_table(emp).unwrap();
        db.create_table(dept).unwrap();
        db
    }

    fn refs_of(db: &Database, sql: &str) -> Vec<Option<BTreeSet<ColumnId>>> {
        let Statement::Dml(DmlOp::Select(sel)) = parse_statement(sql).unwrap() else { panic!() };
        referenced_columns(db, &sel)
    }

    #[test]
    fn explicit_columns() {
        let db = emp_db();
        let r = refs_of(&db, "select name from emp where salary > 100");
        let cols = r[0].as_ref().unwrap();
        // name = col 0, salary = col 2
        assert!(cols.contains(&ColumnId(0)));
        assert!(cols.contains(&ColumnId(2)));
        assert!(!cols.contains(&ColumnId(1)));
    }

    #[test]
    fn wildcard_means_all() {
        let db = emp_db();
        let r = refs_of(&db, "select * from emp");
        assert!(r[0].is_none());
    }

    #[test]
    fn qualified_refs_attributed_to_binding() {
        let db = emp_db();
        let r = refs_of(&db, "select e.name from emp e, dept d where d.mgr_no = e.emp_no");
        let emp_cols = r[0].as_ref().unwrap();
        assert!(emp_cols.contains(&ColumnId(0)), "e.name");
        assert!(emp_cols.contains(&ColumnId(1)), "e.emp_no");
        let dept_cols = r[1].as_ref().unwrap();
        assert!(dept_cols.contains(&ColumnId(1)), "d.mgr_no");
        assert!(!dept_cols.contains(&ColumnId(0)));
    }

    #[test]
    fn unqualified_shared_name_goes_to_all_candidates() {
        let db = emp_db();
        let r = refs_of(&db, "select name from emp, dept where dept_no > 0");
        // dept_no exists in both tables; attributed to both (conservative).
        assert!(r[0].as_ref().unwrap().contains(&ColumnId(3)));
        assert!(r[1].as_ref().unwrap().contains(&ColumnId(0)));
    }

    #[test]
    fn subquery_references_included() {
        let db = emp_db();
        let r = refs_of(&db, "select name from emp where dept_no in (select dept_no from dept)");
        assert!(r[0].as_ref().unwrap().contains(&ColumnId(3)));
    }
}
