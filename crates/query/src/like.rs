//! SQL `LIKE` pattern matching: `%` matches any sequence (including empty),
//! `_` matches exactly one character. No escape character (the dialect does
//! not need one for the paper's workloads).

/// Match `text` against `pattern` with SQL `LIKE` semantics.
///
/// Implemented with the classic two-pointer backtracking algorithm, which
/// is linear in practice and never pathological (no nested `%` blow-up).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after %, text pos)
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_match() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn underscore() {
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("ac", "a_c"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abc", "____"));
    }

    #[test]
    fn percent() {
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "%d%"));
        assert!(like_match("abc", "a%c"));
        assert!(!like_match("abc", "a%d"));
    }

    #[test]
    fn multiple_percents_backtrack() {
        assert!(like_match("aXbXc", "a%b%c"));
        assert!(like_match("abbbc", "a%b%c"));
        assert!(!like_match("ac", "a%b%c"));
        assert!(like_match("mississippi", "m%iss%ppi"));
        assert!(!like_match("mississippi", "m%iss%ppix"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("Jane", "J_n%"));
        assert!(like_match("Jones", "J%s"));
        assert!(!like_match("Jane", "J_n"));
    }

    #[test]
    fn unicode_chars_count_once() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語", "__語"));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        assert!(!like_match("", "a"));
        assert!(like_match("", "%%"));
    }
}
