//! SQL `LIKE` pattern matching: `%` matches any sequence (including empty),
//! `_` matches exactly one character. An optional `ESCAPE 'c'` character
//! makes the following `%`, `_`, or `c` literal, so `%`/`_` themselves are
//! matchable (e.g. `'100%' like '100\%' escape '\'`).

/// One element of a tokenized `LIKE` pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LikeTok {
    /// `%`: any sequence of characters, including empty.
    AnySeq,
    /// `_`: exactly one character.
    AnyOne,
    /// A literal character (including escaped `%`/`_`/escape-char).
    Lit(char),
}

/// Tokenize a pattern, resolving the escape character. The escape must be
/// followed by `%`, `_`, or the escape character itself; anything else
/// (including a trailing escape) is a malformed pattern.
pub fn like_tokens(pattern: &str, escape: Option<char>) -> Result<Vec<LikeTok>, String> {
    let mut toks = Vec::with_capacity(pattern.len());
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        if Some(c) == escape {
            match chars.next() {
                Some(n) if n == '%' || n == '_' || Some(n) == escape => toks.push(LikeTok::Lit(n)),
                Some(n) => {
                    return Err(format!("escape character '{c}' must precede %, _, or '{c}', found '{n}'"))
                }
                None => return Err(format!("pattern ends with escape character '{c}'")),
            }
        } else {
            toks.push(match c {
                '%' => LikeTok::AnySeq,
                '_' => LikeTok::AnyOne,
                other => LikeTok::Lit(other),
            });
        }
    }
    Ok(toks)
}

/// Match `text` against a tokenized pattern.
///
/// Implemented with the classic two-pointer backtracking algorithm, which
/// is linear in practice and never pathological (no nested `%` blow-up).
pub fn like_match_tokens(text: &str, p: &[LikeTok]) -> bool {
    let t: Vec<char> = text.chars().collect();
    let (mut ti, mut pi) = (0usize, 0usize);
    let mut star: Option<(usize, usize)> = None; // (pattern pos after %, text pos)
    let tok_hits = |tok: LikeTok, c: char| match tok {
        LikeTok::AnyOne => true,
        LikeTok::Lit(l) => l == c,
        LikeTok::AnySeq => false,
    };
    while ti < t.len() {
        if pi < p.len() && tok_hits(p[pi], t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == LikeTok::AnySeq {
            star = Some((pi + 1, ti));
            pi += 1;
        } else if let Some((sp, st)) = star {
            // Backtrack: let the last % absorb one more character.
            pi = sp;
            ti = st + 1;
            star = Some((sp, st + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == LikeTok::AnySeq {
        pi += 1;
    }
    pi == p.len()
}

/// Match `text` against `pattern` with SQL `LIKE` semantics and no escape
/// character (tokenization cannot fail without one).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let toks = like_tokens(pattern, None).expect("escape-free patterns always tokenize");
    like_match_tokens(text, &toks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn esc_match(text: &str, pattern: &str, escape: char) -> bool {
        like_match_tokens(text, &like_tokens(pattern, Some(escape)).unwrap())
    }

    #[test]
    fn literal_match() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn underscore() {
        assert!(like_match("abc", "a_c"));
        assert!(!like_match("ac", "a_c"));
        assert!(like_match("abc", "___"));
        assert!(!like_match("abc", "____"));
    }

    #[test]
    fn percent() {
        assert!(like_match("abc", "%"));
        assert!(like_match("", "%"));
        assert!(like_match("abc", "a%"));
        assert!(like_match("abc", "%c"));
        assert!(like_match("abc", "%b%"));
        assert!(!like_match("abc", "%d%"));
        assert!(like_match("abc", "a%c"));
        assert!(!like_match("abc", "a%d"));
    }

    #[test]
    fn multiple_percents_backtrack() {
        assert!(like_match("aXbXc", "a%b%c"));
        assert!(like_match("abbbc", "a%b%c"));
        assert!(!like_match("ac", "a%b%c"));
        assert!(like_match("mississippi", "m%iss%ppi"));
        assert!(!like_match("mississippi", "m%iss%ppix"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("Jane", "J_n%"));
        assert!(like_match("Jones", "J%s"));
        assert!(!like_match("Jane", "J_n"));
    }

    #[test]
    fn unicode_chars_count_once() {
        assert!(like_match("héllo", "h_llo"));
        assert!(like_match("日本語", "__語"));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        assert!(!like_match("", "a"));
        assert!(like_match("", "%%"));
    }

    #[test]
    fn escaped_wildcards_are_literal() {
        assert!(esc_match("100%", "100\\%", '\\'));
        assert!(!esc_match("100x", "100\\%", '\\'));
        assert!(esc_match("a_b", "a\\_b", '\\'));
        assert!(!esc_match("axb", "a\\_b", '\\'));
        // The escape character escapes itself.
        assert!(esc_match("a\\b", "a\\\\b", '\\'));
        // Unescaped wildcards still work alongside escaped ones.
        assert!(esc_match("50% off", "%\\%%", '\\'));
        assert!(!esc_match("half off", "%\\%%", '\\'));
        // Any character can serve as the escape.
        assert!(esc_match("100%", "100x%", 'x'));
    }

    #[test]
    fn malformed_escapes_are_errors() {
        assert!(like_tokens("ab\\", Some('\\')).is_err(), "trailing escape");
        assert!(like_tokens("a\\bc", Some('\\')).is_err(), "escape before ordinary char");
        assert!(like_tokens("a\\bc", None).is_ok(), "no escape declared: backslash literal");
    }

    #[test]
    fn escape_free_tokenization_matches_legacy() {
        for (t, p) in [("abc", "a%c"), ("", "%"), ("Jane", "J_n%"), ("a%b", "a%b")] {
            assert_eq!(
                like_match(t, p),
                like_match_tokens(t, &like_tokens(p, None).unwrap()),
            );
        }
    }
}
