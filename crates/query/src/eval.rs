//! Scalar and predicate evaluation under SQL three-valued logic.
//!
//! `NULL` propagates through arithmetic and comparisons; `and`/`or` use
//! Kleene logic; `where` keeps a row only when the predicate is *true*
//! (not unknown). Aggregates are evaluated over the current group, supplied
//! by the `select` executor.

use std::cmp::Ordering;
use std::collections::HashSet;

use setrules_sql::ast::{AggFunc, BinaryOp, Expr, SelectStmt, UnaryOp};
use setrules_storage::Value;

use crate::bindings::{Bindings, Level};
use crate::ctx::QueryCtx;
use crate::error::QueryError;
use crate::like::{like_match_tokens, like_tokens};
use crate::relation::Relation;
use crate::select::run_select;

/// Evaluate `e` to a value.
///
/// `group` carries the rows of the current aggregation group (one
/// [`Level`] per row); aggregate expressions are only legal when it is
/// `Some`.
pub fn eval_expr(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    group: Option<&[Level]>,
    e: &Expr,
) -> Result<Value, QueryError> {
    match e {
        Expr::Literal(v) => Ok(v.clone()),
        Expr::Column { qualifier, name } => bindings.resolve(qualifier.as_deref(), name),
        Expr::Unary { op, expr } => {
            let v = eval_expr(ctx, bindings, group, expr)?;
            apply_unary(*op, &v)
        }
        Expr::Binary { left, op, right } => eval_binary(ctx, bindings, group, left, *op, right),
        Expr::IsNull { expr, negated } => {
            let v = eval_expr(ctx, bindings, group, expr)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        Expr::InList { expr, list, negated } => {
            let needle = eval_expr(ctx, bindings, group, expr)?;
            let mut vals = Vec::with_capacity(list.len());
            for item in list {
                vals.push(eval_expr(ctx, bindings, group, item)?);
            }
            in_semantics(&needle, vals.iter(), *negated)
        }
        Expr::InSubquery { expr, subquery, negated } => {
            let needle = eval_expr(ctx, bindings, group, expr)?;
            let rel = eval_subquery(ctx, bindings, subquery)?;
            if rel.columns.len() != 1 {
                return Err(QueryError::SubqueryColumns(rel.columns.len()));
            }
            in_semantics(&needle, rel.column0(), *negated)
        }
        Expr::Exists { subquery, negated } => {
            let rel = eval_subquery(ctx, bindings, subquery)?;
            Ok(Value::Bool(rel.is_empty() == *negated))
        }
        Expr::ScalarSubquery(subquery) => {
            let rel = eval_subquery(ctx, bindings, subquery)?;
            if rel.columns.len() != 1 {
                return Err(QueryError::SubqueryColumns(rel.columns.len()));
            }
            match rel.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rel.rows[0][0].clone()),
                n => Err(QueryError::ScalarSubqueryRows(n)),
            }
        }
        Expr::Between { expr, low, high, negated } => {
            let v = eval_expr(ctx, bindings, group, expr)?;
            let lo = eval_expr(ctx, bindings, group, low)?;
            let hi = eval_expr(ctx, bindings, group, high)?;
            between_semantics(&v, &lo, &hi, *negated)
        }
        Expr::Like { expr, pattern, escape, negated } => {
            let v = eval_expr(ctx, bindings, group, expr)?;
            let p = eval_expr(ctx, bindings, group, pattern)?;
            let e = match escape {
                Some(ex) => Some(eval_expr(ctx, bindings, group, ex)?),
                None => None,
            };
            like_semantics(&v, &p, e.as_ref(), *negated)
        }
        Expr::Aggregate { func, arg, distinct } => {
            let Some(rows) = group else {
                return Err(QueryError::Type(format!(
                    "aggregate {}() not allowed in this context",
                    func.name()
                )));
            };
            eval_aggregate(ctx, bindings, rows, *func, arg.as_deref(), *distinct)
        }
    }
}

/// Evaluate a subquery, hoisting it out of the per-row loop when it is
/// uncorrelated and a per-statement cache is attached to the context.
///
/// Correlation is detected operationally: the subquery is first tried in
/// an *empty* outer scope; success means its result cannot depend on outer
/// bindings (memoized), while an unknown-column error means it references
/// the outer row (memoized as correlated, then evaluated normally).
pub(crate) fn eval_subquery(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    sub: &SelectStmt,
) -> Result<Relation, QueryError> {
    let Some(cache) = ctx.cache else {
        return run_select(ctx, sub, bindings);
    };
    let key = sub as *const SelectStmt as usize;
    match cache.get(key) {
        Some(Some(rel)) => {
            crate::stats::bump(ctx.stats, |s| s.subquery_cache_hits += 1);
            return Ok(rel);
        }
        Some(None) => {
            // Known correlated: the memo still saves the probe evaluation.
            crate::stats::bump(ctx.stats, |s| s.subquery_cache_hits += 1);
            return run_select(ctx, sub, bindings);
        }
        None => crate::stats::bump(ctx.stats, |s| s.subquery_cache_misses += 1),
    }
    match run_select(ctx, sub, &mut Bindings::new()) {
        Ok(rel) => {
            cache.put(key, Some(rel.clone()));
            Ok(rel)
        }
        Err(QueryError::UnknownColumn(_)) => {
            cache.put(key, None);
            run_select(ctx, sub, bindings)
        }
        Err(e) => Err(e),
    }
}

/// Truth value of a predicate result: `Some(bool)` or `None` (unknown).
/// Non-boolean, non-null values are a type error.
pub fn truth(v: &Value) -> Result<Option<bool>, QueryError> {
    match v {
        Value::Bool(b) => Ok(Some(*b)),
        Value::Null => Ok(None),
        other => Err(QueryError::Type(format!("expected boolean predicate, got {other}"))),
    }
}

/// Evaluate a predicate; a row qualifies only when the result is *true*.
pub fn eval_predicate(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    group: Option<&[Level]>,
    e: &Expr,
) -> Result<bool, QueryError> {
    let v = eval_expr(ctx, bindings, group, e)?;
    Ok(truth(&v)? == Some(true))
}

pub(crate) fn kleene_and(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(false), _) | (_, Some(false)) => Some(false),
        (Some(true), Some(true)) => Some(true),
        _ => None,
    }
}

pub(crate) fn kleene_or(a: Option<bool>, b: Option<bool>) -> Option<bool> {
    match (a, b) {
        (Some(true), _) | (_, Some(true)) => Some(true),
        (Some(false), Some(false)) => Some(false),
        _ => None,
    }
}

/// SQL comparison distinguishing *unknown* (`Ok(None)`, a `NULL` operand)
/// from incomparable types (`Err`).
pub(crate) fn compare(a: &Value, b: &Value) -> Result<Option<Ordering>, QueryError> {
    if a.is_null() || b.is_null() {
        return Ok(None);
    }
    match a.sql_cmp(b) {
        Some(o) => Ok(Some(o)),
        // Two numeric operands that won't order means a NaN is involved.
        // Every predicate comparison against NaN is UNKNOWN — not a type
        // error — even though ORDER BY's total order can still sort it.
        None if a.as_f64().is_some() && b.as_f64().is_some() => Ok(None),
        None => Err(QueryError::Type(format!("cannot compare {a} with {b}"))),
    }
}

/// `v [not] like p [escape e]` over already-evaluated operands — the
/// kernel shared by the interpreter and the compiled evaluator, so both
/// modes agree on escape validation and error wording.
pub(crate) fn like_semantics(
    v: &Value,
    p: &Value,
    esc: Option<&Value>,
    negated: bool,
) -> Result<Value, QueryError> {
    if v.is_null() || p.is_null() || esc.is_some_and(Value::is_null) {
        return Ok(Value::Null);
    }
    let escape = match esc {
        None => None,
        Some(Value::Text(s)) => {
            let mut cs = s.chars();
            match (cs.next(), cs.next()) {
                (Some(c), None) => Some(c),
                _ => {
                    return Err(QueryError::Type(format!(
                        "escape must be a single character, got '{s}'"
                    )))
                }
            }
        }
        Some(other) => {
            return Err(QueryError::Type(format!("escape must be text, got {other}")))
        }
    };
    match (v, p) {
        (Value::Text(t), Value::Text(pat)) => {
            let toks = like_tokens(pat, escape).map_err(QueryError::Type)?;
            Ok(Value::Bool(like_match_tokens(t, &toks) != negated))
        }
        (a, b) => Err(QueryError::Type(format!("like requires text operands, got {a} and {b}"))),
    }
}

pub(crate) fn in_semantics<'v>(
    needle: &Value,
    haystack: impl Iterator<Item = &'v Value>,
    negated: bool,
) -> Result<Value, QueryError> {
    let mut saw_unknown = false;
    for v in haystack {
        match compare(needle, v)? {
            Some(Ordering::Equal) => return Ok(Value::Bool(!negated)),
            Some(_) => {}
            None => saw_unknown = true,
        }
    }
    if saw_unknown {
        Ok(Value::Null)
    } else {
        Ok(Value::Bool(negated))
    }
}

fn eval_binary(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    group: Option<&[Level]>,
    left: &Expr,
    op: BinaryOp,
    right: &Expr,
) -> Result<Value, QueryError> {
    // Logical operators get Kleene short-circuit behaviour.
    if matches!(op, BinaryOp::And | BinaryOp::Or) {
        let l = truth(&eval_expr(ctx, bindings, group, left)?)?;
        // Short-circuit when the left operand decides the result.
        match (op, l) {
            (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
            (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
            _ => {}
        }
        let r = truth(&eval_expr(ctx, bindings, group, right)?)?;
        let out = match op {
            BinaryOp::And => kleene_and(l, r),
            _ => kleene_or(l, r),
        };
        return Ok(out.map_or(Value::Null, Value::Bool));
    }

    let l = eval_expr(ctx, bindings, group, left)?;
    let r = eval_expr(ctx, bindings, group, right)?;
    apply_binary(&l, op, &r)
}

/// Apply a unary operator to an already-evaluated operand — the scalar
/// kernel shared by the interpreter and the compiled evaluator.
pub(crate) fn apply_unary(op: UnaryOp, v: &Value) -> Result<Value, QueryError> {
    match op {
        UnaryOp::Not => match truth(v)? {
            Some(b) => Ok(Value::Bool(!b)),
            None => Ok(Value::Null),
        },
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| QueryError::Type("integer overflow in negation".into())),
            Value::Float(f) => Ok(Value::Float(-f)),
            other => Err(QueryError::Type(format!("cannot negate {other}"))),
        },
    }
}

/// `v [not] between lo and hi` over already-evaluated operands (shared
/// kernel; Kleene conjunction of the two bound comparisons).
pub(crate) fn between_semantics(
    v: &Value,
    lo: &Value,
    hi: &Value,
    negated: bool,
) -> Result<Value, QueryError> {
    let ge = compare(v, lo).map(|o| o.map(|o| o != Ordering::Less))?;
    let le = compare(v, hi).map(|o| o.map(|o| o != Ordering::Greater))?;
    Ok(match kleene_and(ge, le) {
        Some(b) => Value::Bool(b != negated),
        None => Value::Null,
    })
}

/// Apply a non-logical binary operator (comparison or arithmetic) to
/// already-evaluated operands — the scalar kernel shared by the
/// interpreter and the compiled evaluator. `and`/`or` never reach here:
/// both callers short-circuit them before operand evaluation.
pub(crate) fn apply_binary(l: &Value, op: BinaryOp, r: &Value) -> Result<Value, QueryError> {
    debug_assert!(!matches!(op, BinaryOp::And | BinaryOp::Or));
    if op.is_comparison() {
        let cmp = compare(l, r)?;
        let out = cmp.map(|o| match op {
            BinaryOp::Eq => o == Ordering::Equal,
            BinaryOp::NotEq => o != Ordering::Equal,
            BinaryOp::Lt => o == Ordering::Less,
            BinaryOp::LtEq => o != Ordering::Greater,
            BinaryOp::Gt => o == Ordering::Greater,
            BinaryOp::GtEq => o != Ordering::Less,
            _ => unreachable!(),
        });
        return Ok(out.map_or(Value::Null, Value::Bool));
    }

    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l, r) {
        (Value::Int(a), Value::Int(b)) => {
            let a = *a;
            let b = *b;
            let out = match op {
                BinaryOp::Add => a.checked_add(b),
                BinaryOp::Sub => a.checked_sub(b),
                BinaryOp::Mul => a.checked_mul(b),
                BinaryOp::Div => {
                    if b == 0 {
                        return Err(QueryError::DivisionByZero);
                    }
                    a.checked_div(b)
                }
                BinaryOp::Mod => {
                    if b == 0 {
                        return Err(QueryError::DivisionByZero);
                    }
                    a.checked_rem(b)
                }
                _ => unreachable!(),
            };
            out.map(Value::Int)
                .ok_or_else(|| QueryError::Type("integer overflow".into()))
        }
        _ => {
            let (Some(a), Some(b)) = (l.as_f64(), r.as_f64()) else {
                return Err(QueryError::Type(format!("cannot apply {op} to {l} and {r}")));
            };
            // Float arithmetic follows IEEE-754 (division by zero yields
            // ±inf, 0/0 yields NaN), matching common SQL engines' float
            // behaviour.
            let out = match op {
                BinaryOp::Add => a + b,
                BinaryOp::Sub => a - b,
                BinaryOp::Mul => a * b,
                BinaryOp::Div => a / b,
                BinaryOp::Mod => a % b,
                _ => unreachable!(),
            };
            Ok(Value::Float(out))
        }
    }
}

fn eval_aggregate(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    rows: &[Level],
    func: AggFunc,
    arg: Option<&Expr>,
    distinct: bool,
) -> Result<Value, QueryError> {
    // count(*) counts rows, including those where other columns are NULL.
    let Some(arg) = arg else {
        debug_assert_eq!(func, AggFunc::Count);
        return Ok(Value::Int(rows.len() as i64));
    };

    // Evaluate the argument once per group row; NULLs are discarded
    // (SQL aggregate semantics).
    let mut vals = Vec::with_capacity(rows.len());
    for level in rows {
        bindings.push_level(level.clone());
        // Aggregates do not nest: the argument is evaluated without a group.
        let v = eval_expr(ctx, bindings, None, arg);
        bindings.pop_level();
        let v = v?;
        if !v.is_null() {
            vals.push(v);
        }
    }
    fold_aggregate(func, distinct, vals)
}

/// Fold the collected (non-NULL) argument values of one aggregate call —
/// the kernel shared by the interpreter above and the two-phase parallel
/// aggregation in [`crate::exec::aggregate`]. The per-partition partial
/// accumulators merge *value vectors* in partition order before calling
/// this, so fold order (and therefore float rounding, overflow sites, and
/// error selection) is exactly the serial encounter order.
pub(crate) fn fold_aggregate(
    func: AggFunc,
    distinct: bool,
    mut vals: Vec<Value>,
) -> Result<Value, QueryError> {
    if distinct {
        // Dedup without cloning values: a borrowing seen-set marks first
        // occurrences (keeping first-seen order — float sums fold in
        // encounter order), then the mask drives `retain`.
        let mut seen: HashSet<&Value> = HashSet::with_capacity(vals.len());
        let keep: Vec<bool> = vals.iter().map(|v| seen.insert(v)).collect();
        drop(seen);
        let mut mask = keep.iter();
        vals.retain(|_| *mask.next().expect("one mask bit per value"));
    }

    match func {
        AggFunc::Count => Ok(Value::Int(vals.len() as i64)),
        AggFunc::Sum => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                let mut acc: i64 = 0;
                for v in &vals {
                    acc = acc
                        .checked_add(v.as_i64().expect("all ints"))
                        .ok_or_else(|| QueryError::Type("integer overflow in sum".into()))?;
                }
                Ok(Value::Int(acc))
            } else {
                let mut acc = 0.0;
                for v in &vals {
                    acc += v
                        .as_f64()
                        .ok_or_else(|| QueryError::Type(format!("sum of non-numeric value {v}")))?;
                }
                Ok(Value::Float(acc))
            }
        }
        AggFunc::Avg => {
            if vals.is_empty() {
                return Ok(Value::Null);
            }
            if vals.iter().all(|v| matches!(v, Value::Int(_))) {
                // Exact integer sum, one division: the result cannot
                // depend on encounter order (an order-sensitive f64
                // running sum would make incremental accumulator repair
                // unsound — see `crate::incremental`).
                let sum: i128 = vals.iter().map(|v| v.as_i64().expect("all ints") as i128).sum();
                return Ok(Value::Float(sum as f64 / vals.len() as f64));
            }
            let mut acc = 0.0;
            for v in &vals {
                acc += v
                    .as_f64()
                    .ok_or_else(|| QueryError::Type(format!("avg of non-numeric value {v}")))?;
            }
            Ok(Value::Float(acc / vals.len() as f64))
        }
        AggFunc::Min | AggFunc::Max => {
            let mut best: Option<Value> = None;
            for v in vals {
                best = Some(match best {
                    None => v,
                    Some(b) => {
                        let ord = b
                            .sql_cmp(&v)
                            .ok_or_else(|| QueryError::Type(format!("cannot compare {b} with {v}")))?;
                        let keep_b = match func {
                            AggFunc::Min => ord != Ordering::Greater,
                            _ => ord != Ordering::Less,
                        };
                        if keep_b {
                            b
                        } else {
                            v
                        }
                    }
                });
            }
            Ok(best.unwrap_or(Value::Null))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::Database;

    fn eval(src: &str) -> Result<Value, QueryError> {
        let db = Database::new();
        let ctx = QueryCtx::plain(&db);
        let e = parse_expr(src).unwrap();
        eval_expr(ctx, &mut Bindings::new(), None, &e)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(eval("1 + 2 * 3").unwrap(), Value::Int(7));
        assert_eq!(eval("7 / 2").unwrap(), Value::Int(3));
        assert_eq!(eval("7.0 / 2").unwrap(), Value::Float(3.5));
        assert_eq!(eval("7 % 3").unwrap(), Value::Int(1));
        assert_eq!(eval("-(3) + 1").unwrap(), Value::Int(-2));
        assert_eq!(eval("0.95 * 100").unwrap(), Value::Float(95.0));
    }

    #[test]
    fn division_by_zero() {
        assert_eq!(eval("1 / 0"), Err(QueryError::DivisionByZero));
        assert_eq!(eval("1 % 0"), Err(QueryError::DivisionByZero));
        // Float division by zero is IEEE.
        assert_eq!(eval("1.0 / 0").unwrap(), Value::Float(f64::INFINITY));
    }

    #[test]
    fn integer_overflow_detected() {
        assert!(matches!(eval("9223372036854775807 + 1"), Err(QueryError::Type(_))));
    }

    #[test]
    fn null_propagation() {
        assert_eq!(eval("1 + NULL").unwrap(), Value::Null);
        assert_eq!(eval("NULL = NULL").unwrap(), Value::Null);
        assert_eq!(eval("NULL is null").unwrap(), Value::Bool(true));
        assert_eq!(eval("1 is not null").unwrap(), Value::Bool(true));
    }

    #[test]
    fn kleene_logic() {
        assert_eq!(eval("false and NULL").unwrap(), Value::Bool(false));
        assert_eq!(eval("true and NULL").unwrap(), Value::Null);
        assert_eq!(eval("true or NULL").unwrap(), Value::Bool(true));
        assert_eq!(eval("false or NULL").unwrap(), Value::Null);
        assert_eq!(eval("not NULL").unwrap(), Value::Null);
        assert_eq!(eval("not false").unwrap(), Value::Bool(true));
    }

    #[test]
    fn and_short_circuits_errors_on_right() {
        // `false and (1/0 = 1)` must not raise: left decides.
        assert_eq!(eval("false and 1 / 0 = 1").unwrap(), Value::Bool(false));
        assert_eq!(eval("true or 1 / 0 = 1").unwrap(), Value::Bool(true));
    }

    #[test]
    fn comparisons() {
        assert_eq!(eval("2 < 3").unwrap(), Value::Bool(true));
        assert_eq!(eval("2 >= 2.0").unwrap(), Value::Bool(true));
        assert_eq!(eval("'a' < 'b'").unwrap(), Value::Bool(true));
        assert_eq!(eval("2 <> 3").unwrap(), Value::Bool(true));
        assert!(matches!(eval("1 < 'a'"), Err(QueryError::Type(_))));
    }

    #[test]
    fn in_list_three_valued() {
        assert_eq!(eval("2 in (1, 2, 3)").unwrap(), Value::Bool(true));
        assert_eq!(eval("5 in (1, 2, 3)").unwrap(), Value::Bool(false));
        assert_eq!(eval("5 in (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval("1 in (1, NULL)").unwrap(), Value::Bool(true));
        assert_eq!(eval("5 not in (1, NULL)").unwrap(), Value::Null);
        assert_eq!(eval("5 not in (1, 2)").unwrap(), Value::Bool(true));
    }

    #[test]
    fn between() {
        assert_eq!(eval("2 between 1 and 3").unwrap(), Value::Bool(true));
        assert_eq!(eval("0 between 1 and 3").unwrap(), Value::Bool(false));
        assert_eq!(eval("2 not between 1 and 3").unwrap(), Value::Bool(false));
        assert_eq!(eval("2 between NULL and 3").unwrap(), Value::Null);
        assert_eq!(eval("0 between 1 and NULL").unwrap(), Value::Bool(false), "0 >= 1 is false, so unknown upper bound cannot matter");
    }

    #[test]
    fn like() {
        assert_eq!(eval("'Jane' like 'J%'").unwrap(), Value::Bool(true));
        assert_eq!(eval("'Jane' not like '%z%'").unwrap(), Value::Bool(true));
        assert_eq!(eval("NULL like 'J%'").unwrap(), Value::Null);
        assert!(matches!(eval("1 like 'J%'"), Err(QueryError::Type(_))));
    }

    #[test]
    fn like_escape() {
        assert_eq!(eval("'100%' like '100!%' escape '!'").unwrap(), Value::Bool(true));
        assert_eq!(eval("'100x' like '100!%' escape '!'").unwrap(), Value::Bool(false));
        assert_eq!(eval("'a_b' not like 'a!_b' escape '!'").unwrap(), Value::Bool(false));
        assert_eq!(eval("'50% off' like '%!%%' escape '!'").unwrap(), Value::Bool(true));
        assert_eq!(eval("'x' like 'x' escape NULL").unwrap(), Value::Null);
        assert!(matches!(eval("'x' like 'x' escape 'ab'"), Err(QueryError::Type(_))));
        assert!(matches!(eval("'x' like 'x' escape 1"), Err(QueryError::Type(_))));
        assert!(matches!(eval("'x' like 'a!b' escape '!'"), Err(QueryError::Type(_))), "malformed pattern");
    }

    #[test]
    fn nan_comparisons_are_unknown_not_errors() {
        // 0.0/0.0 is IEEE NaN; every comparison with it is UNKNOWN.
        assert_eq!(eval("0.0 / 0.0 = 0.0 / 0.0").unwrap(), Value::Null);
        assert_eq!(eval("1.0 < 0.0 / 0.0").unwrap(), Value::Null);
        assert_eq!(eval("0.0 / 0.0 <> 1").unwrap(), Value::Null);
        assert_eq!(eval("1 in (2, 0.0 / 0.0)").unwrap(), Value::Null);
        assert_eq!(eval("0.0 / 0.0 between 0.0 and 1.0").unwrap(), Value::Null);
        // Mixed non-numeric operands are still type errors.
        assert!(matches!(eval("0.0 / 0.0 = 'x'"), Err(QueryError::Type(_))));
    }

    #[test]
    fn aggregates_require_group_context() {
        assert!(matches!(eval("sum(1)"), Err(QueryError::Type(_))));
    }

    #[test]
    fn truth_rejects_non_boolean() {
        assert!(matches!(eval("not 5"), Err(QueryError::Type(_))));
    }
}
