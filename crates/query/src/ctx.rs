//! Evaluation context: the database, the transition-table provider, and
//! the per-statement subquery cache.

use std::cell::RefCell;
use std::collections::HashMap;

use setrules_storage::Database;

use crate::provider::TransitionTableProvider;
use crate::relation::Relation;
use crate::stats::StatsCell;

/// Per-statement memo for uncorrelated subqueries, keyed by AST node
/// address. `None` records that the subquery was found to be correlated
/// (it references outer columns), so re-evaluation per row is required.
///
/// This is the representative optimization behind the paper's §1 claim
/// that set-oriented rules keep relational optimization applicable: a
/// rule-action predicate like `fk in (select pk from deleted parent)`
/// evaluates its subquery once per statement, not once per scanned row.
#[derive(Debug, Default)]
pub struct SubqueryCache {
    entries: RefCell<HashMap<usize, Option<Relation>>>,
}

impl SubqueryCache {
    /// A fresh, empty cache (one per executed statement).
    pub fn new() -> Self {
        SubqueryCache::default()
    }

    pub(crate) fn get(&self, key: usize) -> Option<Option<Relation>> {
        self.entries.borrow().get(&key).cloned()
    }

    pub(crate) fn put(&self, key: usize, value: Option<Relation>) {
        self.entries.borrow_mut().insert(key, value);
    }
}

/// Everything expression evaluation may consult: the current database state
/// and the transition tables of the rule being processed (if any).
///
/// The paper's rule conditions "may refer to the current state of the
/// database \[and\] to the logical transition tables" (§4.1) — `db` is the
/// current state, `virt` supplies the transition tables.
#[derive(Clone, Copy)]
pub struct QueryCtx<'a> {
    /// The current database state.
    pub db: &'a Database,
    /// Transition tables visible in this context.
    pub virt: &'a dyn TransitionTableProvider,
    /// Uncorrelated-subquery memo for the statement being evaluated;
    /// `None` disables hoisting (every subquery re-evaluates).
    pub cache: Option<&'a SubqueryCache>,
    /// Execution-work accumulator; `None` (the default) disables
    /// instrumentation.
    pub stats: Option<&'a StatsCell>,
}

impl<'a> QueryCtx<'a> {
    /// Context for plain user queries: no transition tables, no cache.
    pub fn plain(db: &'a Database) -> Self {
        QueryCtx { db, virt: &crate::provider::NoTransitionTables, cache: None, stats: None }
    }

    /// Context with an explicit transition-table provider (no cache).
    pub fn with_provider(db: &'a Database, virt: &'a dyn TransitionTableProvider) -> Self {
        QueryCtx { db, virt, cache: None, stats: None }
    }

    /// Attach a per-statement subquery cache.
    pub fn with_cache(self, cache: &'a SubqueryCache) -> Self {
        QueryCtx { cache: Some(cache), ..self }
    }

    /// Attach an execution-stats accumulator (pass `None` to detach).
    pub fn with_stats(self, stats: Option<&'a StatsCell>) -> Self {
        QueryCtx { stats, ..self }
    }
}
