//! Evaluation context: the database, the transition-table provider, and
//! the per-statement subquery cache.

use std::cell::RefCell;
use std::collections::HashMap;

use setrules_storage::Database;

use crate::compile::PlanCache;
use crate::provider::TransitionTableProvider;
use crate::relation::Relation;
use crate::stats::{OpStatsCell, StatsCell};

/// Which executor evaluates expressions and plans joins.
///
/// `Compiled` (the default) lowers expressions to slot-addressed
/// [`CompiledExpr`](crate::compile::CompiledExpr) form and runs the N-way
/// join planner; `Interpreted` keeps the original string-resolving
/// walk-the-AST path. The two must produce identical relations — the
/// interpreted path remains as the differential-testing reference and as
/// the bench baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Compile-once pipeline: slot-resolved expressions, planned joins.
    #[default]
    Compiled,
    /// Reference interpreter: per-row string resolution, odometer joins
    /// with the historical 2-way hash special case.
    Interpreted,
}

/// Per-statement memo for uncorrelated subqueries, keyed by AST node
/// address. `None` records that the subquery was found to be correlated
/// (it references outer columns), so re-evaluation per row is required.
///
/// This is the representative optimization behind the paper's §1 claim
/// that set-oriented rules keep relational optimization applicable: a
/// rule-action predicate like `fk in (select pk from deleted parent)`
/// evaluates its subquery once per statement, not once per scanned row.
#[derive(Debug, Default)]
pub struct SubqueryCache {
    entries: RefCell<HashMap<usize, Option<Relation>>>,
}

impl SubqueryCache {
    /// A fresh, empty cache (one per executed statement).
    pub fn new() -> Self {
        SubqueryCache::default()
    }

    pub(crate) fn get(&self, key: usize) -> Option<Option<Relation>> {
        self.entries.borrow().get(&key).cloned()
    }

    pub(crate) fn put(&self, key: usize, value: Option<Relation>) {
        self.entries.borrow_mut().insert(key, value);
    }
}

/// Everything expression evaluation may consult: the current database state
/// and the transition tables of the rule being processed (if any).
///
/// The paper's rule conditions "may refer to the current state of the
/// database \[and\] to the logical transition tables" (§4.1) — `db` is the
/// current state, `virt` supplies the transition tables.
#[derive(Clone, Copy)]
pub struct QueryCtx<'a> {
    /// The current database state.
    pub db: &'a Database,
    /// Transition tables visible in this context.
    pub virt: &'a dyn TransitionTableProvider,
    /// Uncorrelated-subquery memo for the statement being evaluated;
    /// `None` disables hoisting (every subquery re-evaluates).
    pub cache: Option<&'a SubqueryCache>,
    /// Execution-work accumulator; `None` (the default) disables
    /// instrumentation.
    pub stats: Option<&'a StatsCell>,
    /// Per-operator work counters for the physical operator tree
    /// ([`crate::exec`]); `None` (the default) disables them. This is a
    /// side channel: the aggregate [`crate::ExecStats`] counters are
    /// unaffected by whether it is attached.
    pub op_stats: Option<&'a OpStatsCell>,
    /// Which executor to run (compiled pipeline vs reference interpreter).
    pub mode: ExecMode,
    /// Compiled-expression memo shared across statements (the rule engine
    /// attaches one per rule); `None` compiles fresh per statement.
    pub plans: Option<&'a PlanCache>,
    /// Worker-thread budget for the read-only parallel phases (scan +
    /// pushdown filtering, hash-join build/probe, WHERE pass). `1` (the
    /// default) keeps execution fully serial; see
    /// [`crate::parallel`] for the determinism argument.
    pub threads: usize,
}

impl<'a> QueryCtx<'a> {
    /// Context for plain user queries: no transition tables, no cache.
    pub fn plain(db: &'a Database) -> Self {
        QueryCtx {
            db,
            virt: &crate::provider::NoTransitionTables,
            cache: None,
            stats: None,
            op_stats: None,
            mode: ExecMode::default(),
            plans: None,
            threads: 1,
        }
    }

    /// Context with an explicit transition-table provider (no cache).
    pub fn with_provider(db: &'a Database, virt: &'a dyn TransitionTableProvider) -> Self {
        QueryCtx { db, virt, ..QueryCtx::plain(db) }
    }

    /// Attach a per-statement subquery cache.
    pub fn with_cache(self, cache: &'a SubqueryCache) -> Self {
        QueryCtx { cache: Some(cache), ..self }
    }

    /// Attach an execution-stats accumulator (pass `None` to detach).
    pub fn with_stats(self, stats: Option<&'a StatsCell>) -> Self {
        QueryCtx { stats, ..self }
    }

    /// Attach a per-operator counter map (pass `None` to detach).
    pub fn with_op_stats(self, op_stats: Option<&'a OpStatsCell>) -> Self {
        QueryCtx { op_stats, ..self }
    }

    /// Select the execution mode (compiled pipeline vs interpreter).
    pub fn with_mode(self, mode: ExecMode) -> Self {
        QueryCtx { mode, ..self }
    }

    /// Attach a compiled-expression plan cache (pass `None` to detach).
    pub fn with_plans(self, plans: Option<&'a PlanCache>) -> Self {
        QueryCtx { plans, ..self }
    }

    /// Set the worker-thread budget for parallel query phases (clamped to
    /// at least 1; `1` means fully serial).
    pub fn with_threads(self, threads: usize) -> Self {
        QueryCtx { threads: threads.max(1), ..self }
    }
}
