//! TREAT-style incremental rule-condition analysis (ISSUE 7 tentpole).
//!
//! A rule condition is re-evaluated at every consideration, but between
//! two considerations the engine already knows *exactly* what changed:
//! the `[I, D, U]` transition effect composed per Definition 2.1. This
//! module decides, once per rule (cached in the rule's [`PlanCache`]),
//! whether the condition can be evaluated *incrementally* — by keeping a
//! materialized match set per condition term and repairing it from the
//! delta — instead of re-scanning the transition tables.
//!
//! # Incrementalizable shape
//!
//! The analyzer accepts boolean combinations (`and` / `or` / `not`) of
//! two term forms over a **single transition-table** `from` item:
//!
//! * `[not] exists (select <simple projection> from <transition t> [where P])`
//! * `(select count(*) from <transition t> [where P]) <cmp> <numeric literal>`
//!   (either operand order)
//!
//! where `P` compiles to *row-local* form against the transition table's
//! single frame: slots-only, innermost-scope references, no subqueries,
//! no interpreter fallback — the same analysis the parallel executor uses
//! to prove a predicate safe to evaluate from one row alone. Row-local
//! `P` is what makes delta repair sound: a tuple's membership in the term
//! depends only on that tuple's own (old or current) value, so only
//! tuples named by the delta can change membership.
//!
//! Everything else — stored-table subqueries, joins, correlated or
//! interpreted predicates, grouped/ordered/limited subqueries, `selected`
//! windows, unlicensed references — falls back to full evaluation with a
//! [`FallbackReason`] naming why (surfaced as `incr_fallbacks` and in the
//! REPL's `\incr` listing). Fallback **is** the semantics: the
//! incremental path must be observably identical to re-scan, so anything
//! it cannot reproduce bit-for-bit (including errors) is simply not
//! incrementalized.
//!
//! # Term truth
//!
//! Term truth values are always two-valued (`exists` never yields NULL;
//! `count(*)` is never NULL and numeric comparison against a non-NULL
//! numeric literal cannot yield NULL), so the boolean combination tree is
//! classical — Kleene three-valued logic degenerates to it — and the
//! memoized truth equals the full evaluator's truth exactly.
//!
//! The *repair rules* that maintain the match sets live with the engine
//! (`setrules-core`), which owns the windows and deltas; this module owns
//! the shape analysis, the memo representation, the per-row probe, and
//! the truth evaluation. See `docs/incremental-evaluation.md` for the
//! full repair/invalidation matrix.

use std::fmt;
use std::sync::Arc;

use setrules_sql::ast::{
    AggFunc, BinaryOp, Expr, SelectItem, SelectStmt, TableSource, TransitionKind, UnaryOp,
};
use setrules_storage::{Database, TupleHandle, Value};

use crate::compile::{compile, CompiledExpr, Layout, LayoutFrame};
use crate::error::QueryError;
use crate::eval;
use crate::parallel;
use crate::provider::describe;

/// Why a condition (or one of its terms) is not incrementalizable.
///
/// The taxonomy is part of the observable surface: `explain`-style output
/// and the differential tests assert on it, and
/// `docs/incremental-evaluation.md` documents each arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// A leaf of the boolean structure is not an `exists` / `count(*)`
    /// comparison over a transition table.
    Shape,
    /// A subquery scans a stored table (its rows are not delta-addressed
    /// by the rule's window).
    StoredTable(String),
    /// A subquery joins multiple `from` items.
    MultiItemFrom,
    /// A `selected t[.c]` window (§5.1): membership depends on read
    /// tracking, not the `[I, D, U]` delta.
    SelectedWindow,
    /// The subquery uses `distinct`, `group by`, `having`, `order by`, or
    /// `limit` — shapes whose truth is not a pure match-set property.
    SubqueryShape,
    /// The `exists` projection is not simple (aggregates or subqueries
    /// could change row count or raise their own errors).
    Projection,
    /// The `where` predicate is not row-local (correlated/outer
    /// references, nested subqueries, or interpreter fallback).
    Predicate,
    /// The `count(*)` comparison is not against a numeric literal.
    CountComparison,
    /// The transition-table reference is not licensed by the rule's
    /// triggering predicates (§3) — full evaluation raises the error.
    Unlicensed(String),
    /// The referenced table or column does not exist — full evaluation
    /// raises the error.
    UnknownReference(String),
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::Shape => write!(f, "condition shape is not exists/count over terms"),
            FallbackReason::StoredTable(t) => write!(f, "subquery scans stored table '{t}'"),
            FallbackReason::MultiItemFrom => write!(f, "subquery joins multiple from items"),
            FallbackReason::SelectedWindow => write!(f, "selected windows are not delta-addressed"),
            FallbackReason::SubqueryShape => {
                write!(f, "distinct/group by/having/order by/limit in subquery")
            }
            FallbackReason::Projection => write!(f, "exists projection is not simple"),
            FallbackReason::Predicate => write!(f, "where predicate is not row-local"),
            FallbackReason::CountComparison => {
                write!(f, "count(*) is not compared to a numeric literal")
            }
            FallbackReason::Unlicensed(r) => write!(f, "unlicensed reference to {r}"),
            FallbackReason::UnknownReference(r) => write!(f, "unknown reference {r}"),
        }
    }
}

/// How a term's match set becomes a truth value.
#[derive(Debug, Clone)]
pub enum TermTruth {
    /// `[not] exists (...)`: true iff the match set is (non-)empty.
    Exists {
        /// `not exists`?
        negated: bool,
    },
    /// `count(*) <cmp> literal`: compare the match-set cardinality.
    Count {
        /// The comparison operator (already mirrored if the literal was
        /// on the left).
        op: BinaryOp,
        /// The literal operand (Int or Float).
        literal: Value,
    },
}

/// One incrementalizable condition term: a match set over one transition
/// table, filtered by an optional row-local predicate.
#[derive(Debug, Clone)]
pub struct IncTerm {
    /// Which transition table the term scans.
    pub kind: TransitionKind,
    /// The underlying stored table.
    pub table: String,
    /// Column restriction (`old/new updated t.c`).
    pub column: Option<String>,
    /// The row-local `where` predicate, compiled against the single
    /// transition frame; `None` = every row matches.
    pred: Option<CompiledExpr>,
    /// How the match set becomes a truth value.
    pub truth: TermTruth,
}

impl IncTerm {
    /// Whether `row` (with the stored table's schema) satisfies the
    /// term's predicate — SQL `where` truth: only *true* matches.
    /// Evaluation errors propagate exactly as the full evaluator's would.
    pub fn matches(&self, row: &[Value]) -> Result<bool, QueryError> {
        match &self.pred {
            None => Ok(true),
            Some(p) => parallel::eval_rowlocal_predicate(p, &[row]),
        }
    }

    /// The term's truth given its current match-set cardinality.
    fn truth(&self, cardinality: usize) -> Result<bool, QueryError> {
        match &self.truth {
            TermTruth::Exists { negated } => Ok((cardinality > 0) != *negated),
            TermTruth::Count { op, literal } => {
                // The same comparison kernel the full evaluator applies to
                // `(select count(*) ...) <cmp> literal`.
                let v = eval::apply_binary(&Value::Int(cardinality as i64), *op, literal)?;
                Ok(eval::truth(&v)? == Some(true))
            }
        }
    }
}

/// A node of the condition's boolean structure over term indices.
#[derive(Debug, Clone)]
pub enum IncNode {
    /// A leaf term (index into [`IncrementalPlan::terms`]).
    Term(usize),
    /// Logical conjunction.
    And(Box<IncNode>, Box<IncNode>),
    /// Logical disjunction.
    Or(Box<IncNode>, Box<IncNode>),
    /// Logical negation.
    Not(Box<IncNode>),
}

/// Per-rule materialized condition state: one matched-handle set per
/// term. Lives in the rule's [`PlanCache`] next to the compiled plans and
/// dies with it on DDL.
///
/// [`PlanCache`]: crate::compile::PlanCache
#[derive(Debug, Clone, Default)]
pub struct IncMemo {
    /// `terms[i]` = handles currently matching term `i`'s predicate.
    pub terms: Vec<std::collections::BTreeSet<TupleHandle>>,
}

impl IncMemo {
    /// An all-empty memo shaped for `plan`.
    pub fn for_plan(plan: &IncrementalPlan) -> IncMemo {
        IncMemo { terms: vec![Default::default(); plan.terms.len()] }
    }
}

/// Per-rule incremental-evaluation state, stored in the rule's
/// [`PlanCache`](crate::compile::PlanCache) so DDL invalidation frees it
/// together with the compiled plans.
#[derive(Debug)]
pub struct IncrState {
    /// The one-time shape analysis: the incremental plan, or why the rule
    /// permanently falls back (until the next DDL re-analysis).
    pub plan: Result<Arc<IncrementalPlan>, FallbackReason>,
    /// The materialized per-term match sets; `None` until the first
    /// consideration rebuilds them from the rule's full window.
    pub memo: Option<IncMemo>,
}

/// The incremental evaluation plan for one rule condition.
#[derive(Debug, Clone)]
pub struct IncrementalPlan {
    root: IncNode,
    /// The condition's terms, in analysis order.
    pub terms: Vec<IncTerm>,
}

impl IncrementalPlan {
    /// The condition's truth under the memoized match sets.
    pub fn truth(&self, memo: &IncMemo) -> Result<bool, QueryError> {
        self.node_truth(&self.root, memo)
    }

    fn node_truth(&self, node: &IncNode, memo: &IncMemo) -> Result<bool, QueryError> {
        match node {
            IncNode::Term(i) => self.terms[*i].truth(memo.terms[*i].len()),
            IncNode::And(l, r) => Ok(self.node_truth(l, memo)? && self.node_truth(r, memo)?),
            IncNode::Or(l, r) => Ok(self.node_truth(l, memo)? || self.node_truth(r, memo)?),
            IncNode::Not(e) => Ok(!self.node_truth(e, memo)?),
        }
    }

    /// One line per term: the transition view scanned and the truth form,
    /// for `explain` output and the REPL.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.terms.iter().enumerate() {
            let view = describe(t.kind, &t.table, t.column.as_deref());
            let filter = if t.pred.is_some() { " where <row-local>" } else { "" };
            let truth = match &t.truth {
                TermTruth::Exists { negated: false } => "exists".to_string(),
                TermTruth::Exists { negated: true } => "not exists".to_string(),
                TermTruth::Count { op, literal } => format!("count {} {literal}", op_text(*op)),
            };
            out.push_str(&format!("term {i}: {truth} [{view}{filter}]\n"));
        }
        out
    }
}

fn op_text(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        _ => "?",
    }
}

/// Analyze a rule condition for incremental evaluation.
///
/// `licensed` mirrors the §3 restriction check the window provider
/// applies at evaluation time: a reference it rejects falls back, so full
/// evaluation raises the identical error the re-scan path always raised.
pub fn analyze(
    db: &Database,
    cond: &Expr,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
) -> Result<IncrementalPlan, FallbackReason> {
    let mut terms = Vec::new();
    let root = analyze_node(db, cond, licensed, &mut terms)?;
    Ok(IncrementalPlan { root, terms })
}

fn analyze_node(
    db: &Database,
    e: &Expr,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
    terms: &mut Vec<IncTerm>,
) -> Result<IncNode, FallbackReason> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => Ok(IncNode::And(
            Box::new(analyze_node(db, left, licensed, terms)?),
            Box::new(analyze_node(db, right, licensed, terms)?),
        )),
        Expr::Binary { left, op: BinaryOp::Or, right } => Ok(IncNode::Or(
            Box::new(analyze_node(db, left, licensed, terms)?),
            Box::new(analyze_node(db, right, licensed, terms)?),
        )),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            Ok(IncNode::Not(Box::new(analyze_node(db, expr, licensed, terms)?)))
        }
        Expr::Exists { subquery, negated } => {
            let term =
                analyze_term(db, subquery, licensed, TermTruth::Exists { negated: *negated })?;
            terms.push(term);
            Ok(IncNode::Term(terms.len() - 1))
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            // count(*) comparison, literal on either side.
            let (sub, lit, op) = match (&**left, &**right) {
                (Expr::ScalarSubquery(s), Expr::Literal(v)) => (s, v, *op),
                (Expr::Literal(v), Expr::ScalarSubquery(s)) => (s, v, mirror(*op)),
                _ => return Err(FallbackReason::Shape),
            };
            if !matches!(lit, Value::Int(_) | Value::Float(_)) {
                return Err(FallbackReason::CountComparison);
            }
            if !is_count_star(sub) {
                return Err(FallbackReason::CountComparison);
            }
            let term = analyze_term(
                db,
                sub,
                licensed,
                TermTruth::Count { op, literal: lit.clone() },
            )?;
            terms.push(term);
            Ok(IncNode::Term(terms.len() - 1))
        }
        _ => Err(FallbackReason::Shape),
    }
}

/// `a <cmp> b` ⇔ `b <mirror cmp> a`.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other, // Eq / NotEq are symmetric
    }
}

/// Is `sub`'s projection exactly `count(*)`?
fn is_count_star(sub: &SelectStmt) -> bool {
    matches!(
        sub.projection.as_slice(),
        [SelectItem::Expr {
            expr: Expr::Aggregate { func: AggFunc::Count, arg: None, distinct: false },
            ..
        }]
    )
}

/// Is an `exists` projection item free of anything that could change the
/// subquery's row count or raise its own evaluation error?
fn simple_projection(item: &SelectItem) -> bool {
    match item {
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => true,
        SelectItem::Expr { expr, .. } => {
            matches!(expr, Expr::Column { .. } | Expr::Literal(_))
        }
    }
}

fn analyze_term(
    db: &Database,
    sub: &SelectStmt,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
    truth: TermTruth,
) -> Result<IncTerm, FallbackReason> {
    if sub.from.len() != 1 {
        return Err(FallbackReason::MultiItemFrom);
    }
    if sub.distinct
        || !sub.group_by.is_empty()
        || sub.having.is_some()
        || !sub.order_by.is_empty()
        || sub.limit.is_some()
    {
        return Err(FallbackReason::SubqueryShape);
    }
    if matches!(truth, TermTruth::Exists { .. }) && !sub.projection.iter().all(simple_projection) {
        return Err(FallbackReason::Projection);
    }
    let tref = &sub.from[0];
    let (kind, table, column) = match &tref.source {
        TableSource::Named(n) => return Err(FallbackReason::StoredTable(n.clone())),
        TableSource::Transition { kind, table, column } => (*kind, table, column),
    };
    if kind == TransitionKind::Selected {
        return Err(FallbackReason::SelectedWindow);
    }
    let view = describe(kind, table, column.as_deref());
    let Ok(tid) = db.table_id(table) else {
        return Err(FallbackReason::UnknownReference(view));
    };
    if let Some(c) = column {
        if db.schema(tid).column_id(c).is_err() {
            return Err(FallbackReason::UnknownReference(view));
        }
    }
    if !licensed(kind, table, column.as_deref()) {
        return Err(FallbackReason::Unlicensed(view));
    }
    let pred = match &sub.predicate {
        None => None,
        Some(p) => {
            // Compile against the subquery's single frame exactly as the
            // executor would lay it out: the transition table's binding
            // name over the stored table's columns. Anything that is not
            // row-local after compilation — outer references (a rule
            // condition has no outer scope, so they lower to the
            // interpreter), nested subqueries, unresolved names — falls
            // back.
            let mut layout = Layout::new();
            layout.push_level(vec![LayoutFrame {
                name: tref.binding_name().to_string(),
                columns: Arc::new(
                    db.schema(tid).columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
                ),
            }]);
            let compiled = compile(p, &layout);
            if !parallel::is_rowlocal(&compiled) {
                return Err(FallbackReason::Predicate);
            }
            Some(compiled)
        }
    };
    Ok(IncTerm { kind, table: table.clone(), column: column.clone(), pred, truth })
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "emp",
            vec![
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("emp_no", DataType::Int),
                ColumnDef::new("salary", DataType::Float),
            ],
        ))
        .unwrap();
        db
    }

    fn allow_all(_: TransitionKind, _: &str, _: Option<&str>) -> bool {
        true
    }

    fn plan(src: &str) -> Result<IncrementalPlan, FallbackReason> {
        analyze(&db(), &parse_expr(src).unwrap(), &allow_all)
    }

    #[test]
    fn accepts_exists_and_count_combinations() {
        let p = plan(
            "exists (select * from inserted emp where salary > 100.0) \
             and not (select count(*) from deleted emp) > 3",
        )
        .unwrap();
        assert_eq!(p.terms.len(), 2);
        assert!(matches!(p.terms[0].truth, TermTruth::Exists { negated: false }));
        assert!(matches!(p.terms[0].kind, TransitionKind::Inserted));
        assert!(matches!(
            p.terms[1].truth,
            TermTruth::Count { op: BinaryOp::Gt, .. }
        ));
    }

    #[test]
    fn mirrors_reversed_count_comparison() {
        let p = plan("3 < (select count(*) from inserted emp)").unwrap();
        // `3 < count` ⇔ `count > 3`.
        assert!(matches!(p.terms[0].truth, TermTruth::Count { op: BinaryOp::Gt, .. }));
    }

    #[test]
    fn fallback_taxonomy() {
        let reason = |src: &str| plan(src).unwrap_err();
        assert_eq!(reason("salary > 10.0"), FallbackReason::Shape);
        assert_eq!(
            reason("exists (select * from emp)"),
            FallbackReason::StoredTable("emp".into())
        );
        assert_eq!(
            reason("exists (select * from inserted emp, deleted emp)"),
            FallbackReason::MultiItemFrom
        );
        assert_eq!(
            reason("exists (select * from inserted emp order by emp_no)"),
            FallbackReason::SubqueryShape
        );
        assert_eq!(
            reason("exists (select count(*) from inserted emp)"),
            FallbackReason::Projection
        );
        assert_eq!(
            reason(
                "exists (select * from inserted emp \
                 where emp_no in (select emp_no from deleted emp))"
            ),
            FallbackReason::Predicate
        );
        assert_eq!(
            reason("(select count(*) from inserted emp) = 'three'"),
            FallbackReason::CountComparison
        );
        assert_eq!(
            reason("exists (select * from inserted nosuch)"),
            FallbackReason::UnknownReference("inserted nosuch".into())
        );
        let deny = |_: TransitionKind, _: &str, _: Option<&str>| false;
        assert_eq!(
            analyze(&db(), &parse_expr("exists (select * from inserted emp)").unwrap(), &deny)
                .unwrap_err(),
            FallbackReason::Unlicensed("inserted emp".into())
        );
    }

    #[test]
    fn truth_over_memo() {
        let p = plan(
            "exists (select * from inserted emp) \
             or (select count(*) from deleted emp) >= 2",
        )
        .unwrap();
        let mut memo = IncMemo::for_plan(&p);
        assert!(!p.truth(&memo).unwrap());
        memo.terms[1].insert(TupleHandle(1));
        assert!(!p.truth(&memo).unwrap(), "count 1 < 2 and no inserts");
        memo.terms[1].insert(TupleHandle(2));
        assert!(p.truth(&memo).unwrap(), "count reached 2");
        memo.terms[1].clear();
        memo.terms[0].insert(TupleHandle(3));
        assert!(p.truth(&memo).unwrap(), "exists arm");
    }

    #[test]
    fn float_count_comparison_matches_executor_semantics() {
        let p = plan("(select count(*) from inserted emp) > 1.5").unwrap();
        let mut memo = IncMemo::for_plan(&p);
        memo.terms[0].insert(TupleHandle(1));
        assert!(!p.truth(&memo).unwrap());
        memo.terms[0].insert(TupleHandle(2));
        assert!(p.truth(&memo).unwrap());
    }

    #[test]
    fn row_probe_applies_where_truth() {
        let p = plan("exists (select * from inserted emp where salary > 100.0)").unwrap();
        let t = &p.terms[0];
        let row_hi = vec![Value::Text("a".into()), Value::Int(1), Value::Float(150.0)];
        let row_lo = vec![Value::Text("b".into()), Value::Int(2), Value::Float(50.0)];
        let row_null = vec![Value::Text("c".into()), Value::Int(3), Value::Null];
        assert!(t.matches(&row_hi).unwrap());
        assert!(!t.matches(&row_lo).unwrap());
        assert!(!t.matches(&row_null).unwrap(), "NULL comparison is not true");
    }

    #[test]
    fn describe_names_views_and_truth_forms() {
        let p = plan(
            "not exists (select * from new updated emp.salary where salary > 0.0) \
             and (select count(*) from deleted emp) = 0",
        )
        .unwrap();
        let d = p.describe();
        assert!(d.contains("not exists [new updated emp.salary where <row-local>]"), "{d}");
        assert!(d.contains("count = 0 [deleted emp]"), "{d}");
    }
}
