//! TREAT-style incremental rule-condition analysis (ISSUE 7 tentpole,
//! widened by ISSUE 10).
//!
//! A rule condition is re-evaluated at every consideration, but between
//! two considerations the engine already knows *exactly* what changed:
//! the `[I, D, U]` transition effect composed per Definition 2.1. This
//! module decides, once per rule (cached in the rule's [`PlanCache`]),
//! whether the condition can be evaluated *incrementally* — by keeping
//! materialized per-term state and repairing it from the delta — instead
//! of re-scanning the transition tables.
//!
//! # Incrementalizable shapes
//!
//! The analyzer accepts boolean combinations (`and` / `or` / `not`) of
//! three term families:
//!
//! * **Match sets** — `[not] exists (select <simple projection> from
//!   <transition t> [where P])` and `(select count(*) from <transition t>
//!   [where P]) <cmp> <numeric literal>` (either operand order), memoized
//!   as the set of window handles whose row satisfies `P`.
//! * **Join memories** (Rete-beta style) — the same two truth forms over
//!   a subquery joining *two* licensed transition views on exactly one
//!   typed non-float equality key (`a.k = b.k`), memoized as per-side
//!   keyed row memos plus the set of predicate-satisfying pairs. Each
//!   side is repaired from the delta and new candidate pairs are probed
//!   against the *opposite* memo — never a rescan of either window.
//! * **Aggregate accumulators** — `(select sum|avg|min|max(c) from
//!   <transition t> [where P]) <cmp> <numeric literal>` over an *integer*
//!   column: `sum`/`avg` as a running `(Σ, count)` pair (plus positive /
//!   negative partial sums guarding `sum`'s overflow semantics),
//!   `min`/`max` as an ordered multiset so deleting the extremum repairs
//!   without a rescan. Float columns are excluded (float addition is
//!   non-associative, so a patched sum could differ bit-for-bit from the
//!   executor's fold) under [`FallbackReason::FloatAccumulator`].
//!
//! `P` must compile to *row-local* form against the subquery's frames:
//! slots-only, innermost-scope references, no subqueries, no interpreter
//! fallback — the same analysis the parallel executor uses to prove a
//! predicate safe to evaluate from one row alone. Row-local `P` is what
//! makes delta repair sound: membership depends only on the named row(s),
//! so only tuples named by the delta can change term state.
//!
//! Everything else — stored-table subqueries, non-equi or 3+-way joins
//! ([`FallbackReason::JoinShape`]), correlated or interpreted predicates,
//! grouped/ordered/limited subqueries, `selected` windows, unlicensed
//! references — falls back to full evaluation with a [`FallbackReason`]
//! naming why (surfaced per-reason in `\incr` and `incr_fallback_reasons`
//! stats). Fallback **is** the semantics: the incremental path must be
//! observably identical to re-scan, so anything it cannot reproduce
//! bit-for-bit (including errors and their order) is simply not
//! incrementalized.
//!
//! # Mirroring the executor exactly
//!
//! Three executor behaviours are reproduced structurally, not assumed:
//!
//! * **Pushdown prefilters** ([`ViewScan::admits`]): the compiled scan
//!   drops a row when any pushed single-item conjunct is definitely
//!   false, and *keeps it on error* (errors defer to the full
//!   predicate). A membership probe therefore first runs the mirrored
//!   conjuncts — returning non-member without error on a definite false —
//!   and only then evaluates the full predicate, whose errors propagate.
//! * **Hash-join NULL keys**: the compiled hash step skips NULL key
//!   components entirely, so a NULL-keyed row joins nothing; join memos
//!   keep such rows out of the key index the same way.
//! * **Kleene short-circuit**: the compiled condition evaluator skips the
//!   right operand of `false and …` / `true or …`, so a term whose probe
//!   would error may never be evaluated at all. [`IncrementalPlan::
//!   evaluate`] refreshes terms *lazily in evaluation order* with the
//!   identical short-circuit, and term truths are three-valued (an empty
//!   aggregate compares as NULL).
//!
//! The *repair rules* that maintain term state live with the engine
//! (`setrules-core`), which owns the windows and deltas; this module owns
//! the shape analysis, the memo representation, the per-row probes, and
//! the truth evaluation. See `docs/incremental-evaluation.md` for the
//! full repair/invalidation matrix and the shared-delta-cursor soundness
//! argument.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use setrules_sql::ast::{
    AggFunc, BinaryOp, Expr, SelectItem, SelectStmt, TableRef, TableSource, TransitionKind,
    UnaryOp,
};
use setrules_storage::{DataType, Database, TableId, TupleHandle, Value};

use crate::compile::{compile, CompiledExpr, Layout, LayoutFrame};
use crate::error::QueryError;
use crate::eval;
use crate::parallel;
use crate::planner::collect_conjuncts;
use crate::provider::describe;

/// Dynamic-degrade label: an integer `sum` accumulator whose positive or
/// negative partial sums escape `i64` while the total does not. Whether
/// the executor's sequential fold overflows then depends on encounter
/// order, so the consideration falls back to the full evaluator (which
/// decides exactly). Counted under this label in the fallback breakdown.
pub const SUM_OVERFLOW_GUARD: &str = "sum-overflow-guard";

/// Why a condition (or one of its terms) is not incrementalizable.
///
/// The taxonomy is part of the observable surface: `explain`-style output
/// and the differential tests assert on it, and
/// `docs/incremental-evaluation.md` documents each arm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FallbackReason {
    /// A leaf of the boolean structure is not an `exists` / aggregate
    /// comparison over a transition subquery.
    Shape,
    /// A subquery scans a stored table (its rows are not delta-addressed
    /// by the rule's window).
    StoredTable(String),
    /// The subquery's `from` is not a single view or a two-view join on
    /// exactly one typed non-float equality key.
    JoinShape,
    /// A `selected t[.c]` window (§5.1): membership depends on read
    /// tracking, not the `[I, D, U]` delta.
    SelectedWindow,
    /// The subquery uses `distinct`, `group by`, `having`, `order by`, or
    /// `limit` — shapes whose truth is not a pure term-state property.
    SubqueryShape,
    /// The `exists` projection is not simple (aggregates or subqueries
    /// could change row count or raise their own errors).
    Projection,
    /// The `where` predicate is not row-local (correlated/outer
    /// references, nested subqueries, or interpreter fallback).
    Predicate,
    /// The aggregate is not compared to a numeric literal.
    AggComparison,
    /// A `sum`/`avg`/`min`/`max` over a float column: float folds are
    /// order-sensitive, so a patched accumulator is not bit-identical to
    /// the executor's.
    FloatAccumulator,
    /// The aggregate's argument is not a plain integer column (distinct
    /// aggregates, expressions, text/bool columns, `count(c)`).
    AggArgument,
    /// The transition-table reference is not licensed by the rule's
    /// triggering predicates (§3) — full evaluation raises the error.
    Unlicensed(String),
    /// The referenced table or column does not exist — full evaluation
    /// raises the error.
    UnknownReference(String),
}

impl FallbackReason {
    /// Stable short key for the per-reason fallback breakdown
    /// (`EngineStats::incr_fallback_reasons`, `\incr`).
    pub fn label(&self) -> &'static str {
        match self {
            FallbackReason::Shape => "shape",
            FallbackReason::StoredTable(_) => "stored-table",
            FallbackReason::JoinShape => "join-shape",
            FallbackReason::SelectedWindow => "selected-window",
            FallbackReason::SubqueryShape => "subquery-shape",
            FallbackReason::Projection => "projection",
            FallbackReason::Predicate => "predicate",
            FallbackReason::AggComparison => "agg-comparison",
            FallbackReason::FloatAccumulator => "float-accumulator",
            FallbackReason::AggArgument => "agg-argument",
            FallbackReason::Unlicensed(_) => "unlicensed",
            FallbackReason::UnknownReference(_) => "unknown-reference",
        }
    }
}

impl fmt::Display for FallbackReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FallbackReason::Shape => write!(f, "condition shape is not exists/count over terms"),
            FallbackReason::StoredTable(t) => write!(f, "subquery scans stored table '{t}'"),
            FallbackReason::JoinShape => {
                write!(f, "join is not two views on one typed equality key")
            }
            FallbackReason::SelectedWindow => write!(f, "selected windows are not delta-addressed"),
            FallbackReason::SubqueryShape => {
                write!(f, "distinct/group by/having/order by/limit in subquery")
            }
            FallbackReason::Projection => write!(f, "exists projection is not simple"),
            FallbackReason::Predicate => write!(f, "where predicate is not row-local"),
            FallbackReason::AggComparison => {
                write!(f, "aggregate is not compared to a numeric literal")
            }
            FallbackReason::FloatAccumulator => {
                write!(f, "float aggregates are order-sensitive")
            }
            FallbackReason::AggArgument => {
                write!(f, "aggregate argument is not a plain integer column")
            }
            FallbackReason::Unlicensed(r) => write!(f, "unlicensed reference to {r}"),
            FallbackReason::UnknownReference(r) => write!(f, "unknown reference {r}"),
        }
    }
}

/// How a term's memoized state becomes a truth value.
#[derive(Debug, Clone)]
pub enum TermTruth {
    /// `[not] exists (...)`: true iff the match/pair set is (non-)empty.
    Exists {
        /// `not exists`?
        negated: bool,
    },
    /// `count(*) <cmp> literal`: compare the match/pair cardinality.
    Count {
        /// The comparison operator (already mirrored if the literal was
        /// on the left).
        op: BinaryOp,
        /// The literal operand (Int or Float).
        literal: Value,
    },
    /// `sum|avg|min|max(c) <cmp> literal`: compare the accumulator's
    /// aggregate value (NULL over an empty window, like the executor).
    Agg {
        /// The comparison operator (mirrored if needed).
        op: BinaryOp,
        /// The literal operand (Int or Float).
        literal: Value,
    },
}

/// Which accumulator an aggregate term maintains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccFunc {
    /// `sum(c)`: running Σ with overflow guards.
    Sum,
    /// `avg(c)`: exact integer Σ divided once at truth time.
    Avg,
    /// `min(c)`: ordered multiset, first key.
    Min,
    /// `max(c)`: ordered multiset, last key.
    Max,
}

impl AccFunc {
    fn name(self) -> &'static str {
        match self {
            AccFunc::Sum => "sum",
            AccFunc::Avg => "avg",
            AccFunc::Min => "min",
            AccFunc::Max => "max",
        }
    }
}

/// One transition view a term scans, with the mirrored pushdown
/// prefilter: the single-item conjuncts the compiled scan would evaluate,
/// compiled against this view's own single frame.
#[derive(Debug, Clone)]
pub struct ViewScan {
    /// Which transition table.
    pub kind: TransitionKind,
    /// The underlying stored table.
    pub table: String,
    /// Column restriction (`old/new updated t.c`).
    pub column: Option<String>,
    /// The binding name the subquery sees (alias or table name).
    pub binding: String,
    /// Pushdown mirror: single-frame conjuncts the scan prefilters with.
    conjs: Vec<CompiledExpr>,
}

impl ViewScan {
    /// Does the compiled scan keep `row`? Mirrors the scan prefilter
    /// exactly: drop only on a definite `Ok(false)`; errors keep the row
    /// (they defer to the full predicate). Never errors.
    pub fn admits(&self, row: &[Value]) -> bool {
        self.conjs.iter().all(|cc| {
            !matches!(parallel::eval_rowlocal_predicate(cc, &[row]), Ok(false))
        })
    }

    fn describe(&self) -> String {
        describe(self.kind, &self.table, self.column.as_deref())
    }
}

/// The shape of one incrementalizable condition term.
#[derive(Debug, Clone)]
pub enum TermKind {
    /// A match set over one transition view.
    Set {
        /// The scanned view.
        view: ViewScan,
        /// The full row-local `where` predicate (single frame); `None` =
        /// every admitted row matches.
        pred: Option<CompiledExpr>,
    },
    /// A Rete-beta join memory over two transition views.
    Join {
        /// Left `from` item (frame 0 of `pred`).
        left: ViewScan,
        /// Right `from` item (frame 1 of `pred`).
        right: ViewScan,
        /// Column index of the equality key in the left row.
        left_key: usize,
        /// Column index of the equality key in the right row.
        right_key: usize,
        /// Key column names, for `describe`.
        key_names: (String, String),
        /// The key's declared type (non-float, identical on both sides).
        key_ty: DataType,
        /// The full row-local predicate over both frames (includes the
        /// key equality and any residual cross conjuncts).
        pred: CompiledExpr,
    },
    /// A running aggregate accumulator over one transition view.
    Acc {
        /// The scanned view.
        view: ViewScan,
        /// Column index of the aggregated integer column.
        arg: usize,
        /// Its name, for `describe`.
        arg_name: String,
        /// Which accumulator.
        func: AccFunc,
        /// The full row-local `where` predicate (single frame).
        pred: Option<CompiledExpr>,
    },
}

/// One incrementalizable condition term: its shape plus how memoized
/// state becomes a truth value.
#[derive(Debug, Clone)]
pub struct IncTerm {
    /// The term's shape (which memo it keeps and how it is probed).
    pub kind: TermKind,
    /// How the memo becomes a truth value.
    pub truth: TermTruth,
}

impl IncTerm {
    /// Membership probe for `Set` terms: scan prefilter first (definite
    /// false drops without error), then the full predicate (errors
    /// propagate exactly as the executor's filter would).
    pub fn probe_set(&self, row: &[Value]) -> Result<bool, QueryError> {
        let TermKind::Set { view, pred } = &self.kind else {
            return Err(QueryError::Type(format!("internal: {}", "probe_set on non-set term")));
        };
        if !view.admits(row) {
            return Ok(false);
        }
        match pred {
            None => Ok(true),
            Some(p) => parallel::eval_rowlocal_predicate(p, &[row]),
        }
    }

    /// Membership probe for `Acc` terms: prefilter, full predicate
    /// (errors propagate), then the argument value — `None` = not a
    /// contributor (filtered out, or NULL argument, exactly the rows the
    /// executor's aggregate skips).
    pub fn probe_acc(&self, row: &[Value]) -> Result<Option<i64>, QueryError> {
        let TermKind::Acc { view, arg, pred, .. } = &self.kind else {
            return Err(QueryError::Type(format!("internal: {}", "probe_acc on non-acc term")));
        };
        if !view.admits(row) {
            return Ok(None);
        }
        if let Some(p) = pred {
            if !parallel::eval_rowlocal_predicate(p, &[row])? {
                return Ok(None);
            }
        }
        match &row[*arg] {
            Value::Int(v) => Ok(Some(*v)),
            Value::Null => Ok(None),
            other => Err(QueryError::Type(format!(
                "aggregate over non-integer value {other}"
            ))),
        }
    }

    /// Side probe for `Join` terms: does `row` enter `side`'s memo, and
    /// with which key? `None` = dropped by the prefilter or NULL-keyed
    /// (the hash step skips NULL key components). Never errors — side
    /// membership mirrors scan + hash, both of which defer errors to the
    /// pair predicate.
    pub fn probe_join_side(&self, left_side: bool, row: &[Value]) -> Option<Value> {
        let TermKind::Join { left, right, left_key, right_key, .. } = &self.kind else {
            return None;
        };
        let (view, key) =
            if left_side { (left, *left_key) } else { (right, *right_key) };
        if !view.admits(row) {
            return None;
        }
        match &row[key] {
            Value::Null => None,
            v => Some(v.clone()),
        }
    }

    /// Pair probe for `Join` terms: the full two-frame predicate, exactly
    /// the filter's per-combination evaluation (errors propagate).
    pub fn probe_join_pair(
        &self,
        lrow: &[Value],
        rrow: &[Value],
    ) -> Result<bool, QueryError> {
        let TermKind::Join { pred, .. } = &self.kind else {
            return Err(QueryError::Type(format!("internal: {}", "probe_join_pair on non-join term")));
        };
        parallel::eval_rowlocal_predicate(pred, &[lrow, rrow])
    }

    /// The term's three-valued truth over its memo, or a dynamic degrade.
    fn truth(&self, memo: &TermMemo) -> Result<Term3, QueryError> {
        let agg_value = match (&self.kind, memo) {
            (TermKind::Set { .. }, TermMemo::Set(s)) => return self.cardinality_truth(s.len()),
            (TermKind::Join { .. }, TermMemo::Join(j)) => {
                return self.cardinality_truth(j.pairs.len())
            }
            (TermKind::Acc { func, .. }, TermMemo::Acc(a)) => match func {
                AccFunc::Sum => {
                    if a.contrib.is_empty() {
                        Value::Null
                    } else if a.pos <= i64::MAX as i128 && a.neg >= i64::MIN as i128 {
                        // Every prefix of the executor's fold is a subset
                        // sum, bounded by [neg, pos] ⊆ i64: no fold order
                        // can overflow.
                        Value::Int(a.sum as i64)
                    } else if a.sum > i64::MAX as i128 || a.sum < i64::MIN as i128 {
                        // The full fold ends at `sum`, itself a prefix:
                        // the executor errors no matter the order.
                        return Err(QueryError::Type("integer overflow in sum".into()));
                    } else {
                        // Overflow depends on encounter order: let the
                        // full evaluator decide.
                        return Ok(Term3::Degrade(SUM_OVERFLOW_GUARD));
                    }
                }
                AccFunc::Avg => {
                    if a.contrib.is_empty() {
                        Value::Null
                    } else {
                        // The executor's exact-integer average: one i128
                        // sum, one f64 division.
                        Value::Float(a.sum as f64 / a.contrib.len() as f64)
                    }
                }
                AccFunc::Min => a.vals.keys().next().map_or(Value::Null, |v| Value::Int(*v)),
                AccFunc::Max => {
                    a.vals.keys().next_back().map_or(Value::Null, |v| Value::Int(*v))
                }
            },
            _ => {
                return Err(QueryError::Type(format!("internal: {}", "memo kind does not match term")));
            }
        };
        let TermTruth::Agg { op, literal } = &self.truth else {
            return Err(QueryError::Type(format!("internal: {}", "aggregate term without agg truth")));
        };
        let v = eval::apply_binary(&agg_value, *op, literal)?;
        Ok(Term3::Known(eval::truth(&v)?))
    }

    fn cardinality_truth(&self, cardinality: usize) -> Result<Term3, QueryError> {
        match &self.truth {
            TermTruth::Exists { negated } => {
                Ok(Term3::Known(Some((cardinality > 0) != *negated)))
            }
            TermTruth::Count { op, literal } => {
                // The same comparison kernel the full evaluator applies to
                // `(select count(*) ...) <cmp> literal`.
                let v = eval::apply_binary(&Value::Int(cardinality as i64), *op, literal)?;
                Ok(Term3::Known(eval::truth(&v)?))
            }
            TermTruth::Agg { .. } => {
                Err(QueryError::Type(format!("internal: {}", "cardinality truth on aggregate term")))
            }
        }
    }
}

/// A node of the condition's boolean structure over term indices.
#[derive(Debug, Clone)]
pub enum IncNode {
    /// A leaf term (index into [`IncrementalPlan::terms`]).
    Term(usize),
    /// Logical conjunction.
    And(Box<IncNode>, Box<IncNode>),
    /// Logical disjunction.
    Or(Box<IncNode>, Box<IncNode>),
    /// Logical negation.
    Not(Box<IncNode>),
}

/// One side of a join memory: the rows currently admitted by the side's
/// scan, addressable by handle and by join key.
#[derive(Debug, Clone, Default)]
pub struct JoinSide {
    /// handle → (join key, row snapshot as the pair predicate sees it).
    pub rows: BTreeMap<TupleHandle, (Value, Vec<Value>)>,
    /// join key → handles carrying it (NULL keys never enter).
    pub by_key: BTreeMap<Value, BTreeSet<TupleHandle>>,
}

impl JoinSide {
    /// Insert or replace `h`'s entry.
    pub fn insert(&mut self, h: TupleHandle, key: Value, row: Vec<Value>) {
        self.remove(h);
        self.by_key.entry(key.clone()).or_default().insert(h);
        self.rows.insert(h, (key, row));
    }

    /// Remove `h`'s entry if present.
    pub fn remove(&mut self, h: TupleHandle) {
        if let Some((key, _)) = self.rows.remove(&h) {
            if let Some(bucket) = self.by_key.get_mut(&key) {
                bucket.remove(&h);
                if bucket.is_empty() {
                    self.by_key.remove(&key);
                }
            }
        }
    }
}

/// A Rete-beta join memory: both side memos plus the set of pairs the
/// full predicate holds on.
#[derive(Debug, Clone, Default)]
pub struct JoinMemo {
    /// Left-side row memo.
    pub left: JoinSide,
    /// Right-side row memo.
    pub right: JoinSide,
    /// Pairs `(l, r)` on which the pair predicate is true.
    pub pairs: BTreeSet<(TupleHandle, TupleHandle)>,
    /// The same pairs keyed `(r, l)`, for right-side purges.
    rev: BTreeSet<(TupleHandle, TupleHandle)>,
}

impl JoinMemo {
    /// Record that the pair predicate holds on `(l, r)`.
    pub fn add_pair(&mut self, l: TupleHandle, r: TupleHandle) {
        self.pairs.insert((l, r));
        self.rev.insert((r, l));
    }

    /// Drop every pair involving left-side handle `l`.
    pub fn purge_left(&mut self, l: TupleHandle) {
        let doomed: Vec<_> = self
            .pairs
            .range((l, TupleHandle(0))..=(l, TupleHandle(u64::MAX)))
            .copied()
            .collect();
        for (l, r) in doomed {
            self.pairs.remove(&(l, r));
            self.rev.remove(&(r, l));
        }
    }

    /// Drop every pair involving right-side handle `r`.
    pub fn purge_right(&mut self, r: TupleHandle) {
        let doomed: Vec<_> = self
            .rev
            .range((r, TupleHandle(0))..=(r, TupleHandle(u64::MAX)))
            .copied()
            .collect();
        for (r, l) in doomed {
            self.pairs.remove(&(l, r));
            self.rev.remove(&(r, l));
        }
    }
}

/// A running integer aggregate: per-contributor values, the value
/// multiset (for `min`/`max`), and the total plus positive/negative
/// partial sums (the `sum` overflow guard).
#[derive(Debug, Clone, Default)]
pub struct AccMemo {
    /// handle → contributed value.
    pub contrib: BTreeMap<TupleHandle, i64>,
    /// value → multiplicity (ordered, so the extremum is an end key).
    pub vals: BTreeMap<i64, u64>,
    /// Exact Σ of all contributions.
    pub sum: i128,
    /// Σ of non-negative contributions (fold-order overflow guard).
    pub pos: i128,
    /// Σ of negative contributions (fold-order overflow guard).
    pub neg: i128,
}

impl AccMemo {
    /// Add (or replace) `h`'s contribution.
    pub fn insert(&mut self, h: TupleHandle, v: i64) {
        self.remove(h);
        self.contrib.insert(h, v);
        *self.vals.entry(v).or_insert(0) += 1;
        self.sum += v as i128;
        if v >= 0 {
            self.pos += v as i128;
        } else {
            self.neg += v as i128;
        }
    }

    /// Remove `h`'s contribution if present.
    pub fn remove(&mut self, h: TupleHandle) {
        let Some(v) = self.contrib.remove(&h) else { return };
        if let Some(n) = self.vals.get_mut(&v) {
            *n -= 1;
            if *n == 0 {
                self.vals.remove(&v);
            }
        }
        self.sum -= v as i128;
        if v >= 0 {
            self.pos -= v as i128;
        } else {
            self.neg -= v as i128;
        }
    }
}

/// One term's memoized state.
#[derive(Debug, Clone)]
pub enum TermMemo {
    /// Handles currently matching a `Set` term.
    Set(BTreeSet<TupleHandle>),
    /// A `Join` term's beta memory.
    Join(Box<JoinMemo>),
    /// An `Acc` term's accumulator.
    Acc(AccMemo),
}

impl TermMemo {
    /// A fresh, empty memo shaped for `term`.
    pub fn empty_for(term: &IncTerm) -> TermMemo {
        match &term.kind {
            TermKind::Set { .. } => TermMemo::Set(BTreeSet::new()),
            TermKind::Join { .. } => TermMemo::Join(Box::default()),
            TermKind::Acc { .. } => TermMemo::Acc(AccMemo::default()),
        }
    }

    /// Memoized entries (match handles, side rows + pairs, contributors).
    pub fn entries(&self) -> usize {
        match self {
            TermMemo::Set(s) => s.len(),
            TermMemo::Join(j) => j.left.rows.len() + j.right.rows.len() + j.pairs.len(),
            TermMemo::Acc(a) => a.contrib.len(),
        }
    }

    /// Rough resident size, for the `\incr` report. Deliberately a
    /// heuristic (container overhead varies); documented as approximate.
    pub fn approx_bytes(&self) -> usize {
        match self {
            TermMemo::Set(s) => s.len() * std::mem::size_of::<TupleHandle>(),
            TermMemo::Join(j) => {
                let side = |s: &JoinSide| {
                    s.rows
                        .values()
                        .map(|(_, row)| 56 + row.len() * std::mem::size_of::<Value>())
                        .sum::<usize>()
                        + s.by_key.len() * 48
                };
                side(&j.left) + side(&j.right) + j.pairs.len() * 32 * 2
            }
            TermMemo::Acc(a) => (a.contrib.len() + a.vals.len()) * 24 + 48,
        }
    }
}

/// A per-term delta cursor: which suffix of the transaction's delta log
/// this term's memo has already absorbed. Valid only within the same
/// transaction (`epoch`) and window incarnation (`wgen`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cursor {
    /// The transaction the memo was built in.
    pub epoch: u64,
    /// The rule-window generation the memo was built against.
    pub wgen: u64,
    /// Log position: entries `[seq..]` have not been absorbed yet.
    pub seq: usize,
}

/// One term's cached state: its memo and the cursor proving how fresh it
/// is. `cursor == None` means the memo cannot be trusted (never built,
/// or a repair was interrupted) and must be rebuilt from the window.
#[derive(Debug, Clone)]
pub struct TermState {
    /// The memoized match/join/accumulator state.
    pub memo: TermMemo,
    /// Freshness proof; `None` forces a rebuild.
    pub cursor: Option<Cursor>,
}

/// Per-rule materialized condition state: one [`TermState`] per term.
/// Lives in the rule's [`PlanCache`] next to the compiled plans and dies
/// with it on DDL.
///
/// [`PlanCache`]: crate::compile::PlanCache
#[derive(Debug, Clone, Default)]
pub struct IncMemo {
    /// `terms[i]` = term `i`'s memo and cursor.
    pub terms: Vec<TermState>,
}

impl IncMemo {
    /// An all-empty memo shaped for `plan`, with no cursors (every term
    /// rebuilds on first refresh).
    pub fn for_plan(plan: &IncrementalPlan) -> IncMemo {
        IncMemo {
            terms: plan
                .terms
                .iter()
                .map(|t| TermState { memo: TermMemo::empty_for(t), cursor: None })
                .collect(),
        }
    }

    /// Total memoized entries across terms.
    pub fn entries(&self) -> usize {
        self.terms.iter().map(|t| t.memo.entries()).sum()
    }

    /// Approximate resident bytes across terms.
    pub fn approx_bytes(&self) -> usize {
        self.terms.iter().map(|t| t.memo.approx_bytes()).sum()
    }
}

/// Per-rule incremental-evaluation state, stored in the rule's
/// [`PlanCache`](crate::compile::PlanCache) so DDL invalidation frees it
/// together with the compiled plans.
#[derive(Debug)]
pub struct IncrState {
    /// The one-time shape analysis: the incremental plan, or why the rule
    /// permanently falls back (until the next DDL re-analysis).
    pub plan: Result<Arc<IncrementalPlan>, FallbackReason>,
    /// The materialized per-term state; `None` until the first
    /// consideration builds it.
    pub memo: Option<IncMemo>,
}

/// What one term refresh did, reported by the engine's refresh callback.
#[derive(Debug, Clone, Copy)]
pub enum TermRefresh {
    /// The memo was patched from the composed delta suffix. `shared` is
    /// set when the composition came from the transaction's shared
    /// compose cache (another rule at the same cursor already paid for
    /// it).
    Repaired {
        /// Rows probed during the patch.
        rows: u64,
        /// Composed delta served from the shared cache?
        shared: bool,
    },
    /// The memo was rebuilt from the rule's whole window.
    Rebuilt {
        /// Rows probed during the rebuild.
        rows: u64,
    },
}

/// The final verdict of an incremental condition evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondVerdict {
    /// Authoritative: the condition holds / does not hold (NULL is
    /// not-true, as everywhere in SQL rule conditions).
    Truth(bool),
    /// The memoized state cannot decide bit-exactly this round (e.g. the
    /// sum overflow guard); run the full evaluator. The label feeds the
    /// fallback breakdown.
    Degrade(&'static str),
}

/// Tallies and verdict from one [`IncrementalPlan::evaluate`] round.
#[derive(Debug, Clone, Copy)]
pub struct EvalOutcome {
    /// The verdict.
    pub verdict: CondVerdict,
    /// Terms repaired from a delta suffix.
    pub repaired: u64,
    /// Terms rebuilt from the window.
    pub rebuilt: u64,
    /// Rows probed across all refreshed terms.
    pub rows: u64,
    /// Terms whose composed delta came from the shared cache.
    pub shared: u64,
}

/// Internal three-valued node result.
enum Term3 {
    /// SQL truth (NULL = `None`).
    Known(Option<bool>),
    /// Dynamic degrade with its breakdown label.
    Degrade(&'static str),
}

/// The incremental evaluation plan for one rule condition.
#[derive(Debug, Clone)]
pub struct IncrementalPlan {
    root: IncNode,
    /// The condition's terms, in analysis order.
    pub terms: Vec<IncTerm>,
}

impl IncrementalPlan {
    /// Evaluate the condition, refreshing term memos *lazily* through
    /// `refresh` in exactly the order — and with exactly the Kleene
    /// short-circuits — of the compiled full evaluator. A term skipped by
    /// `false and …` / `true or …` is never refreshed, so probe errors
    /// surface if and only if the full evaluator would raise them.
    pub fn evaluate(
        &self,
        memo: &mut IncMemo,
        refresh: &mut dyn FnMut(usize, &IncTerm, &mut TermState) -> Result<TermRefresh, QueryError>,
    ) -> Result<EvalOutcome, QueryError> {
        let mut out =
            EvalOutcome { verdict: CondVerdict::Truth(false), repaired: 0, rebuilt: 0, rows: 0, shared: 0 };
        let v = self.node_eval(&self.root, memo, refresh, &mut out)?;
        out.verdict = match v {
            Term3::Known(t) => CondVerdict::Truth(t == Some(true)),
            Term3::Degrade(label) => CondVerdict::Degrade(label),
        };
        Ok(out)
    }

    fn node_eval(
        &self,
        node: &IncNode,
        memo: &mut IncMemo,
        refresh: &mut dyn FnMut(usize, &IncTerm, &mut TermState) -> Result<TermRefresh, QueryError>,
        out: &mut EvalOutcome,
    ) -> Result<Term3, QueryError> {
        match node {
            IncNode::Term(i) => {
                let term = &self.terms[*i];
                let st = &mut memo.terms[*i];
                match refresh(*i, term, st)? {
                    TermRefresh::Repaired { rows, shared } => {
                        out.repaired += 1;
                        out.rows += rows;
                        if shared {
                            out.shared += 1;
                        }
                    }
                    TermRefresh::Rebuilt { rows } => {
                        out.rebuilt += 1;
                        out.rows += rows;
                    }
                }
                term.truth(&st.memo)
            }
            IncNode::And(l, r) => {
                let lv = self.node_eval(l, memo, refresh, out)?;
                let lt = match lv {
                    Term3::Degrade(_) => return Ok(lv),
                    // The compiled evaluator short-circuits `false and …`
                    // without touching the right operand.
                    Term3::Known(Some(false)) => return Ok(lv),
                    Term3::Known(t) => t,
                };
                match self.node_eval(r, memo, refresh, out)? {
                    Term3::Degrade(label) => Ok(Term3::Degrade(label)),
                    Term3::Known(rt) => Ok(Term3::Known(eval::kleene_and(lt, rt))),
                }
            }
            IncNode::Or(l, r) => {
                let lv = self.node_eval(l, memo, refresh, out)?;
                let lt = match lv {
                    Term3::Degrade(_) => return Ok(lv),
                    // `true or …` short-circuits likewise.
                    Term3::Known(Some(true)) => return Ok(lv),
                    Term3::Known(t) => t,
                };
                match self.node_eval(r, memo, refresh, out)? {
                    Term3::Degrade(label) => Ok(Term3::Degrade(label)),
                    Term3::Known(rt) => Ok(Term3::Known(eval::kleene_or(lt, rt))),
                }
            }
            IncNode::Not(e) => match self.node_eval(e, memo, refresh, out)? {
                Term3::Degrade(label) => Ok(Term3::Degrade(label)),
                Term3::Known(t) => Ok(Term3::Known(t.map(|b| !b))),
            },
        }
    }

    /// One line per term: the view(s) scanned, the truth form, the memo
    /// kind, and the repair keys — for `explain` output and the REPL.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        for (i, t) in self.terms.iter().enumerate() {
            let line = match &t.kind {
                TermKind::Set { view, pred } => {
                    let filter = if pred.is_some() { " where <row-local>" } else { "" };
                    format!(
                        "term {i}: {} [{}{filter}; memo: match-set]",
                        truth_text(&t.truth, None),
                        view.describe()
                    )
                }
                TermKind::Join { left, right, key_names, key_ty, .. } => format!(
                    "term {i}: {} [{} join {} on {} = {} ({}); memo: join-memory]",
                    truth_text(&t.truth, None),
                    left.describe(),
                    right.describe(),
                    key_names.0,
                    key_names.1,
                    ty_text(*key_ty),
                ),
                TermKind::Acc { view, arg_name, func, pred, .. } => {
                    let filter = if pred.is_some() { " where <row-local>" } else { "" };
                    format!(
                        "term {i}: {} [{}{filter}; memo: {}]",
                        truth_text(&t.truth, Some((*func, arg_name))),
                        view.describe(),
                        match func {
                            AccFunc::Sum | AccFunc::Avg => "sum/count accumulator",
                            AccFunc::Min | AccFunc::Max => "ordered multiset",
                        },
                    )
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

fn truth_text(truth: &TermTruth, agg: Option<(AccFunc, &str)>) -> String {
    match truth {
        TermTruth::Exists { negated: false } => "exists".to_string(),
        TermTruth::Exists { negated: true } => "not exists".to_string(),
        TermTruth::Count { op, literal } => format!("count {} {literal}", op_text(*op)),
        TermTruth::Agg { op, literal } => {
            let (func, arg) = agg.expect("agg truth implies acc term");
            format!("{}({arg}) {} {literal}", func.name(), op_text(*op))
        }
    }
}

fn op_text(op: BinaryOp) -> &'static str {
    match op {
        BinaryOp::Eq => "=",
        BinaryOp::NotEq => "<>",
        BinaryOp::Lt => "<",
        BinaryOp::LtEq => "<=",
        BinaryOp::Gt => ">",
        BinaryOp::GtEq => ">=",
        _ => "?",
    }
}

fn ty_text(ty: DataType) -> &'static str {
    match ty {
        DataType::Bool => "bool",
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Text => "text",
    }
}

/// Analyze a rule condition for incremental evaluation.
///
/// `licensed` mirrors the §3 restriction check the window provider
/// applies at evaluation time: a reference it rejects falls back, so full
/// evaluation raises the identical error the re-scan path always raised.
pub fn analyze(
    db: &Database,
    cond: &Expr,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
) -> Result<IncrementalPlan, FallbackReason> {
    let mut terms = Vec::new();
    let root = analyze_node(db, cond, licensed, &mut terms)?;
    Ok(IncrementalPlan { root, terms })
}

fn analyze_node(
    db: &Database,
    e: &Expr,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
    terms: &mut Vec<IncTerm>,
) -> Result<IncNode, FallbackReason> {
    match e {
        Expr::Binary { left, op: BinaryOp::And, right } => Ok(IncNode::And(
            Box::new(analyze_node(db, left, licensed, terms)?),
            Box::new(analyze_node(db, right, licensed, terms)?),
        )),
        Expr::Binary { left, op: BinaryOp::Or, right } => Ok(IncNode::Or(
            Box::new(analyze_node(db, left, licensed, terms)?),
            Box::new(analyze_node(db, right, licensed, terms)?),
        )),
        Expr::Unary { op: UnaryOp::Not, expr } => {
            Ok(IncNode::Not(Box::new(analyze_node(db, expr, licensed, terms)?)))
        }
        Expr::Exists { subquery, negated } => {
            let term =
                analyze_term(db, subquery, licensed, TermTruth::Exists { negated: *negated })?;
            terms.push(term);
            Ok(IncNode::Term(terms.len() - 1))
        }
        Expr::Binary { left, op, right } if op.is_comparison() => {
            // Aggregate comparison, literal on either side.
            let (sub, lit, op) = match (&**left, &**right) {
                (Expr::ScalarSubquery(s), other) => match numeric_literal(other) {
                    Some(v) => (s, v, *op),
                    None => return Err(comparison_fallback(other)),
                },
                (other, Expr::ScalarSubquery(s)) => match numeric_literal(other) {
                    Some(v) => (s, v, mirror(*op)),
                    None => return Err(comparison_fallback(other)),
                },
                _ => return Err(FallbackReason::Shape),
            };
            let lit = &lit;
            let truth = match agg_projection(sub) {
                None => return Err(FallbackReason::Shape),
                Some((AggFunc::Count, None, false)) => {
                    TermTruth::Count { op, literal: lit.clone() }
                }
                Some((AggFunc::Count, Some(_), _)) | Some((AggFunc::Count, None, true)) => {
                    return Err(FallbackReason::AggArgument);
                }
                Some((_, _, true)) | Some((_, None, false)) => {
                    return Err(FallbackReason::AggArgument);
                }
                Some(_) => TermTruth::Agg { op, literal: lit.clone() },
            };
            let term = analyze_term(db, sub, licensed, truth)?;
            terms.push(term);
            Ok(IncNode::Term(terms.len() - 1))
        }
        _ => Err(FallbackReason::Shape),
    }
}

/// A (possibly sign-prefixed) numeric literal, folded to its value. The
/// fold matches the executor's unary minus exactly: a parsed positive
/// int literal is <= `i64::MAX`, so its negation can never overflow, and
/// float negation is a sign-bit flip either way.
fn numeric_literal(e: &Expr) -> Option<Value> {
    match e {
        Expr::Literal(v @ (Value::Int(_) | Value::Float(_))) => Some(v.clone()),
        Expr::Unary { op: UnaryOp::Neg, expr } => match &**expr {
            Expr::Literal(Value::Int(n)) => Some(Value::Int(-n)),
            Expr::Literal(Value::Float(f)) => Some(Value::Float(-f)),
            _ => None,
        },
        _ => None,
    }
}

/// The fallback for a comparison operand that is not a numeric literal:
/// a literal of the wrong type names the aggregate-comparison gap, any
/// other expression is just the wrong shape.
fn comparison_fallback(e: &Expr) -> FallbackReason {
    match e {
        Expr::Literal(_) => FallbackReason::AggComparison,
        Expr::Unary { op: UnaryOp::Neg, expr } if matches!(&**expr, Expr::Literal(_)) => {
            FallbackReason::AggComparison
        }
        _ => FallbackReason::Shape,
    }
}

/// `a <cmp> b` ⇔ `b <mirror cmp> a`.
fn mirror(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other, // Eq / NotEq are symmetric
    }
}

/// Is `sub`'s projection a single aggregate? Returns `(func, arg,
/// distinct)`.
fn agg_projection(sub: &SelectStmt) -> Option<(AggFunc, Option<&Expr>, bool)> {
    match sub.projection.as_slice() {
        [SelectItem::Expr { expr: Expr::Aggregate { func, arg, distinct }, .. }] => {
            Some((*func, arg.as_deref(), *distinct))
        }
        _ => None,
    }
}

/// Is an `exists` projection item free of anything that could change the
/// subquery's row count or raise its own evaluation error?
fn simple_projection(item: &SelectItem) -> bool {
    match item {
        SelectItem::Wildcard | SelectItem::QualifiedWildcard(_) => true,
        SelectItem::Expr { expr, .. } => {
            matches!(expr, Expr::Column { .. } | Expr::Literal(_))
        }
    }
}

/// Resolve one transition `from` item: catches stored tables, `selected`
/// windows, unknown references, and unlicensed views. Returns the view
/// (without its pushdown mirror, filled later) and the table id.
fn resolve_view(
    db: &Database,
    tref: &TableRef,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
) -> Result<(ViewScan, TableId), FallbackReason> {
    let (kind, table, column) = match &tref.source {
        TableSource::Named(n) => return Err(FallbackReason::StoredTable(n.clone())),
        TableSource::Transition { kind, table, column } => (*kind, table, column),
    };
    if kind == TransitionKind::Selected {
        return Err(FallbackReason::SelectedWindow);
    }
    let view_name = describe(kind, table, column.as_deref());
    let Ok(tid) = db.table_id(table) else {
        return Err(FallbackReason::UnknownReference(view_name));
    };
    if let Some(c) = column {
        if db.schema(tid).column_id(c).is_err() {
            return Err(FallbackReason::UnknownReference(view_name));
        }
    }
    if !licensed(kind, table, column.as_deref()) {
        return Err(FallbackReason::Unlicensed(view_name));
    }
    Ok((
        ViewScan {
            kind,
            table: table.clone(),
            column: column.clone(),
            binding: tref.binding_name().to_string(),
            conjs: Vec::new(),
        },
        tid,
    ))
}

/// The single-frame layout a one-view subquery (or one scan of a
/// two-view subquery) evaluates in.
fn frame_layout(db: &Database, binding: &str, tid: TableId) -> Layout {
    let mut layout = Layout::new();
    layout.push_level(vec![LayoutFrame {
        name: binding.to_string(),
        columns: Arc::new(
            db.schema(tid).columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>(),
        ),
    }]);
    layout
}

fn analyze_term(
    db: &Database,
    sub: &SelectStmt,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
    truth: TermTruth,
) -> Result<IncTerm, FallbackReason> {
    if sub.distinct
        || !sub.group_by.is_empty()
        || sub.having.is_some()
        || !sub.order_by.is_empty()
        || sub.limit.is_some()
    {
        return Err(FallbackReason::SubqueryShape);
    }
    if matches!(truth, TermTruth::Exists { .. }) && !sub.projection.iter().all(simple_projection) {
        return Err(FallbackReason::Projection);
    }
    match sub.from.len() {
        1 => analyze_single(db, sub, licensed, truth),
        2 if !matches!(truth, TermTruth::Agg { .. }) => analyze_join(db, sub, licensed, truth),
        _ => Err(FallbackReason::JoinShape),
    }
}

/// Analyze a single-view term (`Set` or `Acc`).
fn analyze_single(
    db: &Database,
    sub: &SelectStmt,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
    truth: TermTruth,
) -> Result<IncTerm, FallbackReason> {
    let (mut view, tid) = resolve_view(db, &sub.from[0], licensed)?;
    let layout = frame_layout(db, &view.binding, tid);
    let pred = match &sub.predicate {
        None => None,
        Some(p) => {
            // Compile against the subquery's single frame exactly as the
            // executor would lay it out. Anything not row-local after
            // compilation — outer references (a rule condition has no
            // outer scope, so they lower to the interpreter), nested
            // subqueries, unresolved names — falls back.
            let compiled = compile(p, &layout);
            if !parallel::is_rowlocal(&compiled) {
                return Err(FallbackReason::Predicate);
            }
            Some(compiled)
        }
    };
    // Pushdown mirror: a sole *transition* item gets scan pushdown (the
    // provider lends borrowed rows), so membership probes must apply the
    // same drop-on-definite-false / keep-on-error prefilter before the
    // full predicate. Conjuncts with no slots stay with the full
    // predicate, as in the executor.
    if let Some(p) = &sub.predicate {
        let mut conjuncts = Vec::new();
        collect_conjuncts(p, &mut conjuncts);
        for c in conjuncts {
            let cc = compile(c, &layout);
            if cc.slots_only() && has_slot(&cc) {
                view.conjs.push(cc);
            }
        }
    }
    match truth {
        TermTruth::Agg { .. } => {
            let (arg, arg_name, func) = resolve_acc(db, sub, &view, tid)?;
            Ok(IncTerm { kind: TermKind::Acc { view, arg, arg_name, func, pred }, truth })
        }
        _ => Ok(IncTerm { kind: TermKind::Set { view, pred }, truth }),
    }
}

/// Resolve an aggregate term's function and argument column: must be a
/// plain (non-distinct) `sum|avg|min|max` over an integer column of the
/// scanned view.
fn resolve_acc(
    db: &Database,
    sub: &SelectStmt,
    view: &ViewScan,
    tid: TableId,
) -> Result<(usize, String, AccFunc), FallbackReason> {
    let Some((func, Some(arg), false)) = agg_projection(sub) else {
        return Err(FallbackReason::AggArgument);
    };
    let func = match func {
        AggFunc::Sum => AccFunc::Sum,
        AggFunc::Avg => AccFunc::Avg,
        AggFunc::Min => AccFunc::Min,
        AggFunc::Max => AccFunc::Max,
        AggFunc::Count => return Err(FallbackReason::AggArgument),
    };
    let Expr::Column { qualifier, name } = arg else {
        return Err(FallbackReason::AggArgument);
    };
    if let Some(q) = qualifier {
        if q != &view.binding {
            return Err(FallbackReason::UnknownReference(format!("{q}.{name}")));
        }
    }
    let Ok(col) = db.schema(tid).column_id(name) else {
        return Err(FallbackReason::UnknownReference(format!("{}.{name}", view.table)));
    };
    match db.schema(tid).columns[col.0 as usize].ty {
        DataType::Int => {}
        DataType::Float => return Err(FallbackReason::FloatAccumulator),
        DataType::Bool | DataType::Text => return Err(FallbackReason::AggArgument),
    }
    Ok((col.0 as usize, name.clone(), func))
}

/// Analyze a two-view join term.
fn analyze_join(
    db: &Database,
    sub: &SelectStmt,
    licensed: &dyn Fn(TransitionKind, &str, Option<&str>) -> bool,
    truth: TermTruth,
) -> Result<IncTerm, FallbackReason> {
    let (mut left, ltid) = resolve_view(db, &sub.from[0], licensed)?;
    let (mut right, rtid) = resolve_view(db, &sub.from[1], licensed)?;
    // The executor lays both items out as one level with two frames.
    let columns = |tid: TableId| {
        Arc::new(db.schema(tid).columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>())
    };
    let mut layout = Layout::new();
    layout.push_level(vec![
        LayoutFrame { name: left.binding.clone(), columns: columns(ltid) },
        LayoutFrame { name: right.binding.clone(), columns: columns(rtid) },
    ]);
    // The join needs a hash step: no predicate means a cross product.
    let Some(p) = &sub.predicate else {
        return Err(FallbackReason::JoinShape);
    };
    let pred = compile(p, &layout);
    if !parallel::is_rowlocal(&pred) {
        return Err(FallbackReason::Predicate);
    }
    // Mirror `planner::equi_join_edges`: conjuncts `col = col` whose
    // sides resolve to different frames and share a non-float declared
    // type. Exactly one edge = one hash key; zero (cross/non-equi) or
    // several (composite key) fall back.
    let mut conjuncts = Vec::new();
    collect_conjuncts(p, &mut conjuncts);
    let mut edges: Vec<(usize, usize, usize, usize)> = Vec::new();
    for c in &conjuncts {
        let Expr::Binary { left: a, op: BinaryOp::Eq, right: b } = c else { continue };
        if !matches!(a.as_ref(), Expr::Column { .. }) || !matches!(b.as_ref(), Expr::Column { .. })
        {
            continue;
        }
        let (
            CompiledExpr::Slot { level_up: 0, frame: fa, col: ca },
            CompiledExpr::Slot { level_up: 0, frame: fb, col: cb },
        ) = (compile(a, &layout), compile(b, &layout))
        else {
            continue;
        };
        if fa == fb {
            continue;
        }
        let (ta, tb) =
            (db.schema(if fa == 0 { ltid } else { rtid }).columns[ca].ty, db.schema(if fb == 0 { ltid } else { rtid }).columns[cb].ty);
        if ta == tb && ta != DataType::Float && !edges.contains(&(fa, ca, fb, cb)) {
            edges.push((fa, ca, fb, cb));
        }
    }
    let [(fa, ca, _, cb)] = edges.as_slice() else {
        return Err(FallbackReason::JoinShape);
    };
    let (lkey, rkey) = if *fa == 0 { (*ca, *cb) } else { (*cb, *ca) };
    // Pushdown mirror per side: single-frame conjuncts recompiled against
    // that side's own scan layout (resolution is innermost-first, so
    // removing the sibling frame cannot redirect a resolved reference).
    for c in &conjuncts {
        let cc = compile(c, &layout);
        if !cc.slots_only() {
            continue;
        }
        let mut target = None;
        let mut single = true;
        cc.for_each_slot(&mut |up, frame, _| {
            if up == 0 {
                match target {
                    None => target = Some(frame),
                    Some(t) if t == frame => {}
                    Some(_) => single = false,
                }
            }
        });
        if !single {
            continue;
        }
        match target {
            Some(0) => left.conjs.push(compile(c, &frame_layout(db, &left.binding, ltid))),
            Some(1) => right.conjs.push(compile(c, &frame_layout(db, &right.binding, rtid))),
            _ => {}
        }
    }
    let key_ty = db.schema(ltid).columns[lkey].ty;
    let key_names =
        (db.schema(ltid).columns[lkey].name.clone(), db.schema(rtid).columns[rkey].name.clone());
    Ok(IncTerm {
        kind: TermKind::Join {
            left,
            right,
            left_key: lkey,
            right_key: rkey,
            key_names,
            key_ty,
            pred,
        },
        truth,
    })
}

/// Does the compiled conjunct reference at least one slot? (Slot-free
/// conjuncts are constants: the executor leaves them to the full
/// predicate, never the scan.)
fn has_slot(cc: &CompiledExpr) -> bool {
    let mut any = false;
    cc.for_each_slot(&mut |_, _, _| any = true);
    any
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::{ColumnDef, DataType, TableSchema};

    fn db() -> Database {
        let mut db = Database::new();
        db.create_table(TableSchema::new(
            "emp",
            vec![
                ColumnDef::new("name", DataType::Text),
                ColumnDef::new("emp_no", DataType::Int),
                ColumnDef::new("salary", DataType::Float),
            ],
        ))
        .unwrap();
        db.create_table(TableSchema::new(
            "dept",
            vec![
                ColumnDef::new("dept_no", DataType::Int),
                ColumnDef::new("head", DataType::Text),
            ],
        ))
        .unwrap();
        db
    }

    fn allow_all(_: TransitionKind, _: &str, _: Option<&str>) -> bool {
        true
    }

    fn plan(src: &str) -> Result<IncrementalPlan, FallbackReason> {
        analyze(&db(), &parse_expr(src).unwrap(), &allow_all)
    }

    /// A refresh that trusts the memo as-is (tests populate it by hand).
    fn no_refresh(
        _: usize,
        _: &IncTerm,
        _: &mut TermState,
    ) -> Result<TermRefresh, QueryError> {
        Ok(TermRefresh::Repaired { rows: 0, shared: false })
    }

    fn truth_of(p: &IncrementalPlan, memo: &mut IncMemo) -> bool {
        match p.evaluate(memo, &mut no_refresh).unwrap().verdict {
            CondVerdict::Truth(t) => t,
            CondVerdict::Degrade(l) => panic!("unexpected degrade {l}"),
        }
    }

    #[test]
    fn accepts_exists_and_count_combinations() {
        let p = plan(
            "exists (select * from inserted emp where salary > 100.0) \
             and not (select count(*) from deleted emp) > 3",
        )
        .unwrap();
        assert_eq!(p.terms.len(), 2);
        assert!(matches!(p.terms[0].truth, TermTruth::Exists { negated: false }));
        assert!(matches!(
            p.terms[0].kind,
            TermKind::Set { view: ViewScan { kind: TransitionKind::Inserted, .. }, .. }
        ));
        assert!(matches!(p.terms[1].truth, TermTruth::Count { op: BinaryOp::Gt, .. }));
    }

    #[test]
    fn mirrors_reversed_count_comparison() {
        let p = plan("3 < (select count(*) from inserted emp)").unwrap();
        // `3 < count` ⇔ `count > 3`.
        assert!(matches!(p.terms[0].truth, TermTruth::Count { op: BinaryOp::Gt, .. }));
    }

    #[test]
    fn accepts_two_view_equality_join() {
        let p = plan(
            "exists (select * from inserted emp e, deleted dept d \
             where e.emp_no = d.dept_no and e.salary > 10.0)",
        )
        .unwrap();
        let TermKind::Join { left, right, left_key, right_key, key_ty, .. } =
            &p.terms[0].kind
        else {
            panic!("expected join term");
        };
        assert_eq!(left.table, "emp");
        assert_eq!(right.table, "dept");
        assert_eq!(*left_key, 1);
        assert_eq!(*right_key, 0);
        assert_eq!(*key_ty, DataType::Int);
        // The salary conjunct landed in the left side's pushdown mirror.
        assert_eq!(left.conjs.len(), 1);
        // The key-equality conjuncts are single-frame on neither side.
        assert_eq!(right.conjs.len(), 0);
    }

    #[test]
    fn accepts_count_over_join_and_reversed_edge() {
        let p = plan(
            "(select count(*) from inserted emp e, inserted dept d \
             where d.dept_no = e.emp_no) >= 2",
        )
        .unwrap();
        let TermKind::Join { left_key, right_key, .. } = &p.terms[0].kind else {
            panic!("expected join term");
        };
        // Edge written `d.dept_no = e.emp_no`: frames normalize so the
        // left key is emp's column.
        assert_eq!(*left_key, 1);
        assert_eq!(*right_key, 0);
    }

    #[test]
    fn accepts_aggregate_thresholds() {
        let p = plan(
            "(select sum(emp_no) from inserted emp) > 10 \
             and (select min(emp_no) from deleted emp where emp_no > 0) < 5 \
             and 2.5 < (select avg(emp_no) from new updated emp.emp_no) \
             and (select max(emp_no) from old updated emp) >= 7",
        )
        .unwrap();
        assert_eq!(p.terms.len(), 4);
        let funcs: Vec<AccFunc> = p
            .terms
            .iter()
            .map(|t| match &t.kind {
                TermKind::Acc { func, .. } => *func,
                k => panic!("expected acc term, got {k:?}"),
            })
            .collect();
        assert_eq!(funcs, vec![AccFunc::Sum, AccFunc::Min, AccFunc::Avg, AccFunc::Max]);
        // `2.5 < avg` mirrored to `avg > 2.5`.
        assert!(matches!(p.terms[2].truth, TermTruth::Agg { op: BinaryOp::Gt, .. }));
    }

    #[test]
    fn fallback_taxonomy() {
        let reason = |src: &str| plan(src).unwrap_err();
        assert_eq!(reason("salary > 10.0"), FallbackReason::Shape);
        assert_eq!(
            reason("exists (select * from emp)"),
            FallbackReason::StoredTable("emp".into())
        );
        // Two views without an equality key: cross join.
        assert_eq!(
            reason("exists (select * from inserted emp, deleted dept)"),
            FallbackReason::JoinShape
        );
        // Non-equi cross predicate only.
        assert_eq!(
            reason(
                "exists (select * from inserted emp e, deleted dept d \
                 where e.emp_no < d.dept_no)"
            ),
            FallbackReason::JoinShape
        );
        // Float keys never hash.
        assert_eq!(
            reason(
                "exists (select * from inserted emp e, deleted emp d \
                 where e.salary = d.salary)"
            ),
            FallbackReason::JoinShape
        );
        // Aggregates over joins are not accumulated.
        assert_eq!(
            reason(
                "(select sum(e.emp_no) from inserted emp e, deleted dept d \
                 where e.emp_no = d.dept_no) > 0"
            ),
            FallbackReason::JoinShape
        );
        assert_eq!(
            reason("exists (select * from selected emp)"),
            FallbackReason::SelectedWindow
        );
        assert_eq!(
            reason("exists (select * from inserted emp order by emp_no)"),
            FallbackReason::SubqueryShape
        );
        assert_eq!(
            reason("exists (select count(*) from inserted emp)"),
            FallbackReason::Projection
        );
        assert_eq!(
            reason(
                "exists (select * from inserted emp \
                 where emp_no in (select emp_no from deleted emp))"
            ),
            FallbackReason::Predicate
        );
        assert_eq!(
            reason("(select count(*) from inserted emp) = 'three'"),
            FallbackReason::AggComparison
        );
        assert_eq!(
            reason("(select sum(salary) from inserted emp) > 0"),
            FallbackReason::FloatAccumulator
        );
        assert_eq!(
            reason("(select sum(name) from inserted emp) > 0"),
            FallbackReason::AggArgument
        );
        assert_eq!(
            reason("(select count(emp_no) from inserted emp) > 0"),
            FallbackReason::AggArgument
        );
        assert_eq!(
            reason("exists (select * from inserted nosuch)"),
            FallbackReason::UnknownReference("inserted nosuch".into())
        );
        let deny = |_: TransitionKind, _: &str, _: Option<&str>| false;
        assert_eq!(
            analyze(&db(), &parse_expr("exists (select * from inserted emp)").unwrap(), &deny)
                .unwrap_err(),
            FallbackReason::Unlicensed("inserted emp".into())
        );
    }

    #[test]
    fn fallback_labels_are_unique() {
        let reasons = [
            FallbackReason::Shape,
            FallbackReason::StoredTable("t".into()),
            FallbackReason::JoinShape,
            FallbackReason::SelectedWindow,
            FallbackReason::SubqueryShape,
            FallbackReason::Projection,
            FallbackReason::Predicate,
            FallbackReason::AggComparison,
            FallbackReason::FloatAccumulator,
            FallbackReason::AggArgument,
            FallbackReason::Unlicensed("r".into()),
            FallbackReason::UnknownReference("r".into()),
        ];
        let labels: BTreeSet<&str> = reasons.iter().map(|r| r.label()).collect();
        assert_eq!(labels.len(), reasons.len(), "labels must be distinct");
        assert!(!labels.contains(SUM_OVERFLOW_GUARD), "dynamic label must not collide");
    }

    #[test]
    fn truth_over_memo() {
        let p = plan(
            "exists (select * from inserted emp) \
             or (select count(*) from deleted emp) >= 2",
        )
        .unwrap();
        let mut memo = IncMemo::for_plan(&p);
        assert!(!truth_of(&p, &mut memo));
        let TermMemo::Set(s) = &mut memo.terms[1].memo else { panic!() };
        s.insert(TupleHandle(1));
        assert!(!truth_of(&p, &mut memo), "count 1 < 2 and no inserts");
        let TermMemo::Set(s) = &mut memo.terms[1].memo else { panic!() };
        s.insert(TupleHandle(2));
        assert!(truth_of(&p, &mut memo), "count reached 2");
        let TermMemo::Set(s) = &mut memo.terms[1].memo else { panic!() };
        s.clear();
        let TermMemo::Set(s) = &mut memo.terms[0].memo else { panic!() };
        s.insert(TupleHandle(3));
        assert!(truth_of(&p, &mut memo), "exists arm");
    }

    #[test]
    fn lazy_refresh_short_circuits_like_the_executor() {
        let p = plan(
            "exists (select * from inserted emp) \
             and (select count(*) from deleted emp) >= 1",
        )
        .unwrap();
        let mut memo = IncMemo::for_plan(&p);
        // Left term empty ⇒ `false and …` never refreshes the right term.
        let mut touched = Vec::new();
        let out = p
            .evaluate(&mut memo, &mut |i, _, _| {
                touched.push(i);
                Ok(TermRefresh::Rebuilt { rows: 0 })
            })
            .unwrap();
        assert_eq!(out.verdict, CondVerdict::Truth(false));
        assert_eq!(touched, vec![0], "right term must not be refreshed");
        assert_eq!(out.rebuilt, 1);
    }

    #[test]
    fn aggregate_truth_is_three_valued() {
        // Empty window: sum is NULL, NULL > 0 is not-true, and
        // `not (NULL > 0)` is *also* not-true — Kleene, not classical.
        let p = plan("not (select sum(emp_no) from inserted emp) > 0").unwrap();
        let mut memo = IncMemo::for_plan(&p);
        assert!(!truth_of(&p, &mut memo), "not NULL is NULL, not true");
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.insert(TupleHandle(1), 5);
        assert!(!truth_of(&p, &mut memo), "5 > 0 holds, negated");
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.insert(TupleHandle(1), -5);
        assert!(truth_of(&p, &mut memo), "replaced contribution flips the sum");
    }

    #[test]
    fn accumulator_repairs_extremum_deletion() {
        let p = plan("(select max(emp_no) from inserted emp) >= 9").unwrap();
        let mut memo = IncMemo::for_plan(&p);
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.insert(TupleHandle(1), 9);
        a.insert(TupleHandle(2), 9);
        a.insert(TupleHandle(3), 4);
        assert!(truth_of(&p, &mut memo));
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.remove(TupleHandle(1));
        assert!(truth_of(&p, &mut memo), "duplicate extremum survives one removal");
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.remove(TupleHandle(2));
        assert_eq!(a.sum, 4);
        assert!(!truth_of(&p, &mut memo), "max fell to 4 without any rescan");
    }

    #[test]
    fn sum_overflow_guard_degrades_only_when_order_matters() {
        let p = plan("(select sum(emp_no) from inserted emp) > 0").unwrap();
        let mut memo = IncMemo::for_plan(&p);
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.insert(TupleHandle(1), i64::MAX);
        a.insert(TupleHandle(2), i64::MAX);
        a.insert(TupleHandle(3), -i64::MAX);
        // Total fits i64 but pos escapes: order decides, so degrade.
        match p.evaluate(&mut memo, &mut no_refresh).unwrap().verdict {
            CondVerdict::Degrade(l) => assert_eq!(l, SUM_OVERFLOW_GUARD),
            v => panic!("expected degrade, got {v:?}"),
        }
        // Total overflows: every order errors, exactly like the fold.
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.remove(TupleHandle(3));
        let err = p.evaluate(&mut memo, &mut no_refresh).unwrap_err();
        assert!(err.to_string().contains("integer overflow in sum"), "{err}");
        // Comfortably inside i64: authoritative truth.
        let TermMemo::Acc(a) = &mut memo.terms[0].memo else { panic!() };
        a.remove(TupleHandle(1));
        a.remove(TupleHandle(2));
        a.insert(TupleHandle(4), 41);
        assert!(truth_of(&p, &mut memo));
    }

    #[test]
    fn join_memo_tracks_pairs() {
        let p = plan(
            "(select count(*) from inserted emp e, deleted dept d \
             where e.emp_no = d.dept_no) >= 2",
        )
        .unwrap();
        let mut memo = IncMemo::for_plan(&p);
        let TermMemo::Join(j) = &mut memo.terms[0].memo else { panic!() };
        j.left.insert(TupleHandle(1), Value::Int(7), vec![Value::Int(7)]);
        j.right.insert(TupleHandle(8), Value::Int(7), vec![Value::Int(7)]);
        j.right.insert(TupleHandle(9), Value::Int(7), vec![Value::Int(7)]);
        j.add_pair(TupleHandle(1), TupleHandle(8));
        j.add_pair(TupleHandle(1), TupleHandle(9));
        assert!(truth_of(&p, &mut memo));
        let TermMemo::Join(j) = &mut memo.terms[0].memo else { panic!() };
        j.purge_left(TupleHandle(1));
        assert!(j.pairs.is_empty());
        assert!(!truth_of(&p, &mut memo));
    }

    #[test]
    fn join_side_probe_mirrors_scan_and_hash() {
        let p = plan(
            "exists (select * from inserted emp e, deleted emp d \
             where e.emp_no = d.emp_no and e.name = 'k')",
        )
        .unwrap();
        let t = &p.terms[0];
        let keyed = vec![Value::Text("k".into()), Value::Int(3), Value::Null];
        let filtered = vec![Value::Text("x".into()), Value::Int(3), Value::Null];
        let null_key = vec![Value::Text("k".into()), Value::Null, Value::Null];
        assert_eq!(t.probe_join_side(true, &keyed), Some(Value::Int(3)));
        assert_eq!(t.probe_join_side(true, &filtered), None, "pushdown drops it");
        assert_eq!(t.probe_join_side(true, &null_key), None, "NULL keys never hash");
        // The right side carries no name conjunct.
        assert_eq!(t.probe_join_side(false, &filtered), Some(Value::Int(3)));
        // Pair probe evaluates the full predicate.
        assert!(t.probe_join_pair(&keyed, &filtered).unwrap());
        assert!(!t.probe_join_pair(&filtered, &keyed).unwrap());
    }

    #[test]
    fn set_probe_applies_prefilter_then_full_predicate() {
        // Division can error; the prefilter's definite-false conjunct
        // must drop the row before the error is ever raised — exactly the
        // scan's drop-on-false / keep-on-error rule.
        let p = plan(
            "exists (select * from inserted emp \
             where emp_no > 0 and 10 / emp_no > 2)",
        )
        .unwrap();
        let t = &p.terms[0];
        let ok = vec![Value::Text("a".into()), Value::Int(2), Value::Null];
        let dropped = vec![Value::Text("b".into()), Value::Int(-1), Value::Null];
        let zero = vec![Value::Text("c".into()), Value::Int(0), Value::Null];
        assert!(t.probe_set(&ok).unwrap());
        assert!(!t.probe_set(&dropped).unwrap(), "10 / -1 = -10 fails the full predicate");
        assert!(
            !t.probe_set(&zero).unwrap(),
            "emp_no > 0 is definite false: dropped before the division errors"
        );
    }

    #[test]
    fn row_probe_applies_where_truth() {
        let p = plan("exists (select * from inserted emp where salary > 100.0)").unwrap();
        let t = &p.terms[0];
        let row_hi = vec![Value::Text("a".into()), Value::Int(1), Value::Float(150.0)];
        let row_lo = vec![Value::Text("b".into()), Value::Int(2), Value::Float(50.0)];
        let row_null = vec![Value::Text("c".into()), Value::Int(3), Value::Null];
        assert!(t.probe_set(&row_hi).unwrap());
        assert!(!t.probe_set(&row_lo).unwrap());
        assert!(!t.probe_set(&row_null).unwrap(), "NULL comparison is not true");
    }

    #[test]
    fn describe_names_views_truth_forms_and_memos() {
        let p = plan(
            "not exists (select * from new updated emp.salary where salary > 0.0) \
             and (select count(*) from deleted emp) = 0 \
             and exists (select * from inserted emp e, deleted dept d \
                         where e.emp_no = d.dept_no) \
             and (select sum(emp_no) from inserted emp where emp_no > 0) > 10 \
             and (select min(emp_no) from deleted emp) < 3",
        )
        .unwrap();
        let d = p.describe();
        assert!(
            d.contains(
                "not exists [new updated emp.salary where <row-local>; memo: match-set]"
            ),
            "{d}"
        );
        assert!(d.contains("count = 0 [deleted emp; memo: match-set]"), "{d}");
        assert!(
            d.contains(
                "exists [inserted emp join deleted dept on emp_no = dept_no (int); \
                 memo: join-memory]"
            ),
            "{d}"
        );
        assert!(
            d.contains(
                "sum(emp_no) > 10 [inserted emp where <row-local>; memo: sum/count accumulator]"
            ),
            "{d}"
        );
        assert!(d.contains("min(emp_no) < 3 [deleted emp; memo: ordered multiset]"), "{d}");
    }

    #[test]
    fn memo_accounting_counts_entries() {
        let p = plan(
            "exists (select * from inserted emp) \
             and (select sum(emp_no) from deleted emp) > 0",
        )
        .unwrap();
        let mut memo = IncMemo::for_plan(&p);
        assert_eq!(memo.entries(), 0);
        let TermMemo::Set(s) = &mut memo.terms[0].memo else { panic!() };
        s.insert(TupleHandle(1));
        s.insert(TupleHandle(2));
        let TermMemo::Acc(a) = &mut memo.terms[1].memo else { panic!() };
        a.insert(TupleHandle(3), 7);
        assert_eq!(memo.entries(), 3);
        assert!(memo.approx_bytes() > 0);
    }
}
