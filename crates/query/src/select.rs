//! `select` execution: joins over `from` items (stored tables and
//! transition tables), three-valued `where` filtering, grouping and
//! aggregation, `distinct`, `order by`, and `limit`.
//!
//! Two executors share this front-end, selected by
//! [`ExecMode`](crate::ExecMode) on the context:
//!
//! * **Compiled** (default): the predicate is lowered once to a
//!   slot-addressed [`CompiledExpr`], single-item conjuncts are pushed
//!   down to their scan, and an N-way greedy
//!   [`JoinPlan`](crate::planner::JoinPlan) joins items with hash tables
//!   on equi-join keys (cross steps only when nothing connects).
//! * **Interpreted**: per-row string resolution, the historical nested-loop
//!   odometer with a 2-item hash equi-join special case — kept as the
//!   differential-testing reference.
//!
//! Both evaluate the *full* predicate per assembled combination (hash
//! probes and pushdown are sound prefilters) and emit combinations in
//! row-index lexicographic order, so results are identical and
//! deterministic: scans run in handle order, groups appear in first-seen
//! order, and `order by` uses the storage total order. The one accepted
//! divergence: prefilters may skip combinations whose evaluation would
//! *error* (the historical 2-way hash path already did this).

use std::collections::{HashMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

use setrules_sql::ast::{AggFunc, BinaryOp, Expr, SelectItem, SelectStmt, TableSource};
use setrules_storage::{ColumnId, DataType, TableId, TupleHandle, Value};

use crate::bindings::{Bindings, Frame, Level};
use crate::compile::{
    compile, compile_cached, eval_compiled, eval_compiled_predicate, CompiledExpr, LayoutFrame,
};
use crate::ctx::{ExecMode, QueryCtx};
use crate::error::QueryError;
use crate::eval::{eval_expr, eval_predicate};
use crate::parallel;
use crate::planner::{build_join_plan, choose_access, equi_join_edges, scan_handles, Access};
use crate::relation::Relation;
use crate::stats;

/// Run a `select` in the given outer scope (empty for top-level queries,
/// populated for correlated subqueries). Returns the materialized result.
pub fn run_select(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
    bindings: &mut Bindings,
) -> Result<Relation, QueryError> {
    run_select_traced(ctx, stmt, bindings, None)
}

/// Like [`run_select`], additionally recording, into `trace`, the handle of
/// every stored-table tuple that contributed to a row satisfying `where`.
/// The rule engine uses this for the `S` (selected) component of transition
/// effects (§5.1 extension).
pub fn run_select_traced(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
    bindings: &mut Bindings,
    trace: Option<&mut Vec<(TableId, TupleHandle)>>,
) -> Result<Relation, QueryError> {
    // Ordered-index fast paths: answer bare `min`/`max` from the index
    // boundary keys, and answer a single-key `order by` in index order
    // (short-circuiting `limit` without materializing or sorting). Both
    // are gated off when a trace is requested — early stopping would
    // change the selected-transition effects the trace feeds.
    if trace.is_none() {
        if let Some(rel) = min_max_shortcircuit(ctx, stmt)? {
            return Ok(rel);
        }
        if let Some(rel) = index_order_scan(ctx, stmt, bindings)? {
            return Ok(rel);
        }
    }

    // ------------------------------------------------------------------
    // 1. Materialize each `from` item.
    // ------------------------------------------------------------------
    /// One scanned row: its origin (stored tuples only) and field values.
    type ScanRow = (Option<(TableId, TupleHandle)>, Vec<Value>);
    struct FromItem {
        binding: String,
        columns: Arc<Vec<String>>,
        types: Vec<DataType>,
        rows: Vec<ScanRow>,
    }

    /// Resolve a (possibly qualified) column reference against the from
    /// items: `Some((item, column))` only when unambiguous.
    fn resolve_col(items: &[FromItem], qualifier: Option<&str>, name: &str) -> Option<(usize, usize)> {
        match qualifier {
            Some(q) => {
                let idx = items.iter().position(|it| it.binding == q)?;
                let c = items[idx].columns.iter().position(|cn| cn == name)?;
                Some((idx, c))
            }
            None => {
                let mut found = None;
                for (idx, it) in items.iter().enumerate() {
                    if let Some(c) = it.columns.iter().position(|cn| cn == name) {
                        if found.is_some() {
                            return None; // ambiguous
                        }
                        found = Some((idx, c));
                    }
                }
                found
            }
        }
    }

    /// Detect a two-item equi-join: a top-level `and`-conjunct
    /// `items[0].c0 = items[1].c1` (either operand order) whose columns
    /// share a non-float declared type. Float keys are excluded so that
    /// storage-level hash equality provably agrees with SQL equality
    /// (`-0.0`/`0.0` and NaN make floats unsafe as hash keys).
    fn find_equi_join(stmt: &SelectStmt, items: &[FromItem]) -> Option<(usize, usize)> {
        if items.len() != 2 {
            return None;
        }
        let pred = stmt.predicate.as_ref()?;
        let mut conjuncts = Vec::new();
        crate::planner::collect_conjuncts(pred, &mut conjuncts);
        for c in conjuncts {
            let Expr::Binary { left, op: BinaryOp::Eq, right } = c else { continue };
            let (
                Expr::Column { qualifier: lq, name: ln },
                Expr::Column { qualifier: rq, name: rn },
            ) = (left.as_ref(), right.as_ref())
            else {
                continue;
            };
            let a = resolve_col(items, lq.as_deref(), ln);
            let b = resolve_col(items, rq.as_deref(), rn);
            let (Some((ia, ca)), Some((ib, cb))) = (a, b) else { continue };
            let (c0, c1) = match (ia, ib) {
                (0, 1) => (ca, cb),
                (1, 0) => (cb, ca),
                _ => continue,
            };
            let (t0, t1) = (items[0].types[c0], items[1].types[c1]);
            if t0 == t1 && t0 != DataType::Float {
                return Some((c0, c1));
            }
        }
        None
    }

    let sole = stmt.from.len() == 1;
    let compiled_mode = ctx.mode == ExecMode::Compiled;

    // 1a. Per-item metadata — no rows yet. The compile-once front-end
    // needs every item's binding and columns before scanning, so it can
    // lower the predicate and classify pushdown conjuncts first.
    enum Source {
        Named { tid: TableId, access: Access },
        Transition,
    }
    struct ItemMeta {
        binding: String,
        columns: Arc<Vec<String>>,
        types: Vec<DataType>,
        source: Source,
    }
    let mut metas = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let binding = tref.binding_name().to_string();
        let (table_name, named) = match &tref.source {
            TableSource::Named(name) => (name, true),
            TableSource::Transition { table, .. } => (table, false),
        };
        let tid = ctx.db.table_id(table_name)?;
        let schema = ctx.db.schema(tid);
        let columns = Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        let types = schema.columns.iter().map(|c| c.ty).collect();
        let source = if named {
            let access = choose_access(ctx, tid, &binding, sole, stmt.predicate.as_ref());
            Source::Named { tid, access }
        } else {
            Source::Transition
        };
        metas.push(ItemMeta { binding, columns, types, source });
    }

    // 1b. Compile-once front-end: the scope layout is the outer scopes
    // plus one innermost level holding this query's items. The full
    // predicate compiles once (through the plan cache, when one is
    // attached) against it.
    let mut layout = bindings.layout();
    layout.push_level(
        metas
            .iter()
            .map(|m| LayoutFrame { name: m.binding.clone(), columns: Arc::clone(&m.columns) })
            .collect(),
    );
    let full_pred: Option<Arc<CompiledExpr>> = match (&stmt.predicate, compiled_mode) {
        (Some(p), true) => Some(compile_cached(ctx, p, &layout)),
        _ => None,
    };

    // Pushdown classification: a conjunct whose innermost-level slots all
    // land in one item filters that item's scan directly. Only fully
    // slot-resolved conjuncts qualify (no subqueries, no interpreter
    // fallbacks), and only rows it evaluates to non-*true* on are dropped
    // — errors defer to the full predicate, so pushdown never surfaces an
    // error early. Re-compiling against the single-item scope the scan
    // evaluates in is sound because resolution is innermost-first:
    // removing sibling frames cannot redirect a reference that already
    // resolved into this item.
    // A sole stored-table item skips pushdown (the full predicate does
    // the identical work), but a sole *transition* item benefits: its
    // provider lends borrowed rows, so dropping a row at the scan avoids
    // ever cloning it.
    let pushdown_worthwhile = metas.len() > 1
        || metas.iter().any(|m| matches!(m.source, Source::Transition));
    let mut pushed: Vec<Vec<CompiledExpr>> = (0..metas.len()).map(|_| Vec::new()).collect();
    if compiled_mode && pushdown_worthwhile {
        if let Some(p) = &stmt.predicate {
            let mut conjuncts = Vec::new();
            crate::planner::collect_conjuncts(p, &mut conjuncts);
            for c in conjuncts {
                let cc = compile(c, &layout);
                if !cc.slots_only() {
                    continue;
                }
                // All level-0 slots must target a single item. Conjuncts
                // with no level-0 slots (constants, outer-only references)
                // are left to the full predicate: evaluating them per scan
                // row would be wasted work, not a correctness issue.
                let mut target = None;
                let mut single_item = true;
                cc.for_each_slot(&mut |up, frame, _| {
                    if up == 0 {
                        match target {
                            None => target = Some(frame),
                            Some(t) if t == frame => {}
                            Some(_) => single_item = false,
                        }
                    }
                });
                if !single_item {
                    continue;
                }
                let Some(i) = target else { continue };
                let mut scan_layout = bindings.layout();
                scan_layout.push_level(vec![LayoutFrame {
                    name: metas[i].binding.clone(),
                    columns: Arc::clone(&metas[i].columns),
                }]);
                pushed[i].push(compile(c, &scan_layout));
            }
        }
    }

    // 1c. Materialize each item, filtering through its pushed conjuncts.
    // With a thread budget, a big-enough stored-table scan whose pushed
    // conjuncts are all row-local runs on the pool: the handle vector is
    // split into contiguous ranges, each worker materializes + filters its
    // range, and the kept rows are concatenated in partition order — which
    // is exactly the serial handle-order walk. Pushed conjuncts that
    // reference outer scopes (correlated) are not row-local; those scans
    // stay serial and count a fallback.
    let mut items: Vec<FromItem> = Vec::with_capacity(metas.len());
    for (idx, (meta, tref)) in metas.into_iter().zip(&stmt.from).enumerate() {
        let conjs = std::mem::take(&mut pushed[idx]);
        let mut prefiltered = false;
        let mut rows: Vec<ScanRow> = match (&meta.source, &tref.source) {
            (Source::Named { tid, access }, _) => {
                stats::bump(ctx.stats, |s| match access {
                    Access::FullScan => s.full_scans += 1,
                    Access::IndexEq { .. } | Access::IndexIn { .. } => s.index_lookups += 1,
                    Access::IndexRange { .. } => s.range_scans += 1,
                    Access::Empty => s.empty_scans += 1,
                });
                let handles = scan_handles(ctx.db, *tid, access);
                if matches!(access, Access::IndexRange { .. }) {
                    let skipped = (ctx.db.table(*tid).len() - handles.len()) as u64;
                    stats::bump(ctx.stats, |s| s.range_rows_skipped += skipped);
                }
                stats::bump(ctx.stats, |s| s.rows_scanned += handles.len() as u64);
                let big_enough =
                    ctx.threads > 1 && handles.len() >= parallel::PAR_THRESHOLD;
                if big_enough && conjs.iter().all(parallel::is_rowlocal) {
                    prefiltered = true;
                    let db = ctx.db;
                    let tid = *tid;
                    let handles = &handles;
                    let conjs = &conjs;
                    let chunks = parallel::pool().run_chunked(
                        handles.len(),
                        ctx.threads,
                        parallel::MIN_CHUNK,
                        |range| {
                            let mut kept: Vec<ScanRow> =
                                Vec::with_capacity(range.end - range.start);
                            let mut dropped = 0u64;
                            for &h in &handles[range] {
                                let t = db.get(tid, h).expect("scanned handle is live");
                                // Drop only on a definite non-`true` (the
                                // same rule as the serial path below).
                                let keep = conjs.iter().all(|cc| {
                                    !matches!(
                                        parallel::eval_rowlocal_predicate(
                                            cc,
                                            &[t.0.as_slice()]
                                        ),
                                        Ok(false)
                                    )
                                });
                                if keep {
                                    kept.push((Some((tid, h)), t.0.clone()));
                                } else {
                                    dropped += 1;
                                }
                            }
                            (kept, dropped)
                        },
                    );
                    let parts = chunks.len() as u64;
                    let dropped: u64 = chunks.iter().map(|(_, d)| *d).sum();
                    stats::bump(ctx.stats, |s| {
                        s.pushdown_filtered += dropped;
                        if parts > 1 {
                            s.parallel_scans += 1;
                            s.parallel_partitions += parts;
                        }
                    });
                    let mut merged =
                        Vec::with_capacity(chunks.iter().map(|(k, _)| k.len()).sum());
                    for (kept, _) in chunks {
                        merged.extend(kept);
                    }
                    merged
                } else {
                    if big_enough && !conjs.is_empty() {
                        stats::bump(ctx.stats, |s| s.serial_fallbacks += 1);
                    }
                    handles
                        .into_iter()
                        .map(|h| {
                            let t = ctx.db.get(*tid, h).expect("scanned handle is live");
                            (Some((*tid, h)), t.0.clone())
                        })
                        .collect()
                }
            }
            (Source::Transition, TableSource::Transition { kind, table, column }) => {
                let lent = ctx.virt.rows(ctx.db, *kind, table, column.as_deref())?;
                stats::bump(ctx.stats, |s| s.rows_scanned += lent.len() as u64);
                if !conjs.is_empty() && conjs.iter().all(parallel::is_rowlocal) {
                    // Filter the borrowed rows first so only survivors are
                    // ever cloned into owned scan rows. Drop only on a
                    // definite non-`true` (same rule as the serial filter
                    // below — errors defer to the full predicate).
                    prefiltered = true;
                    let mut kept: Vec<ScanRow> = Vec::new();
                    let mut dropped = 0u64;
                    for vals in lent {
                        let keep = conjs.iter().all(|cc| {
                            !matches!(
                                parallel::eval_rowlocal_predicate(cc, &[vals.as_ref()]),
                                Ok(false)
                            )
                        });
                        if keep {
                            kept.push((None, vals.into_owned()));
                        } else {
                            dropped += 1;
                        }
                    }
                    stats::bump(ctx.stats, |s| s.pushdown_filtered += dropped);
                    kept
                } else {
                    lent.into_iter().map(|vals| (None, vals.into_owned())).collect()
                }
            }
            (Source::Transition, TableSource::Named(_)) => {
                unreachable!("meta source mirrors the from item")
            }
        };
        if !prefiltered && !conjs.is_empty() {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                bindings.push_level(vec![Frame {
                    name: meta.binding.clone(),
                    columns: Arc::clone(&meta.columns),
                    row: row.1.clone(),
                }]);
                let mut keep = true;
                for cc in &conjs {
                    // Drop only on a definite non-`true`; keep on error so
                    // the full predicate raises it (or a hash step shows
                    // the combination never forms, as the historical
                    // 2-way hash path already allowed).
                    if matches!(eval_compiled_predicate(ctx, bindings, None, cc), Ok(false)) {
                        keep = false;
                        break;
                    }
                }
                bindings.pop_level();
                if keep {
                    kept.push(row);
                } else {
                    stats::bump(ctx.stats, |s| s.pushdown_filtered += 1);
                }
            }
            rows = kept;
        }
        items.push(FromItem {
            binding: meta.binding,
            columns: meta.columns,
            types: meta.types,
            rows,
        });
    }

    // ------------------------------------------------------------------
    // 2. Join + `where`. Compiled mode executes the greedy N-way
    //    `JoinPlan` (hash steps on equi-join keys, cross steps only when
    //    nothing connects); interpreted mode keeps the historical 2-item
    //    hash special case and nested-loop odometer. All paths evaluate
    //    the *full* predicate per assembled combination — hash probes and
    //    pushdown are sound prefilters — and emit combinations in
    //    row-index lexicographic order, keeping execution deterministic.
    // ------------------------------------------------------------------
    let mut matching: Vec<Level> = Vec::new();
    let mut origins: Vec<Vec<(TableId, TupleHandle)>> = Vec::new();
    let want_trace = trace.is_some();
    {
        /// Serially evaluate one assembled combination: count it, run the
        /// full predicate, and keep the level (plus origins) on *true*.
        #[allow(clippy::too_many_arguments)]
        fn consider(
            ctx: QueryCtx<'_>,
            items: &[FromItem],
            full_pred: Option<&CompiledExpr>,
            predicate: Option<&Expr>,
            want_trace: bool,
            cursor: &[usize],
            bindings: &mut Bindings,
            matching: &mut Vec<Level>,
            origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
        ) -> Result<(), QueryError> {
            stats::bump(ctx.stats, |s| s.join_combinations += 1);
            let level: Level = items
                .iter()
                .zip(cursor)
                .map(|(it, &i)| Frame {
                    name: it.binding.clone(),
                    columns: Arc::clone(&it.columns),
                    row: it.rows[i].1.clone(),
                })
                .collect();
            bindings.push_level(level);
            let keep = match (full_pred, predicate) {
                (Some(cp), _) => eval_compiled_predicate(ctx, bindings, None, cp),
                (None, Some(p)) => eval_predicate(ctx, bindings, None, p),
                (None, None) => Ok(true),
            };
            let level = bindings.pop_level().expect("pushed above");
            if keep? {
                stats::bump(ctx.stats, |s| s.rows_matched += 1);
                if want_trace {
                    origins.push(
                        items
                            .iter()
                            .zip(cursor)
                            .filter_map(|(it, &i)| it.rows[i].0)
                            .collect(),
                    );
                }
                matching.push(level);
            }
            Ok(())
        }

        /// Record a combination a parallel WHERE pass already judged as
        /// kept (counters were merged from the partition verdicts).
        fn emit_kept(
            items: &[FromItem],
            cursor: &[usize],
            want_trace: bool,
            matching: &mut Vec<Level>,
            origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
        ) {
            let level: Level = items
                .iter()
                .zip(cursor)
                .map(|(it, &i)| Frame {
                    name: it.binding.clone(),
                    columns: Arc::clone(&it.columns),
                    row: it.rows[i].1.clone(),
                })
                .collect();
            if want_trace {
                origins.push(
                    items.iter().zip(cursor).filter_map(|(it, &i)| it.rows[i].0).collect(),
                );
            }
            matching.push(level);
        }

        /// The WHERE pass may run on the pool only when the full predicate
        /// is row-local; with a thread budget and enough combinations, a
        /// non-row-local predicate (correlated subquery needing the shared
        /// memo, interpreter fallback) counts an observable fallback.
        fn parallel_where<'p>(
            ctx: QueryCtx<'_>,
            full_pred: &'p Option<Arc<CompiledExpr>>,
            combinations: usize,
        ) -> Option<&'p CompiledExpr> {
            let cp = full_pred.as_deref()?;
            if ctx.threads <= 1 || combinations < parallel::PAR_THRESHOLD {
                return None;
            }
            if parallel::is_rowlocal(cp) {
                Some(cp)
            } else {
                stats::bump(ctx.stats, |s| s.serial_fallbacks += 1);
                None
            }
        }

        /// Merge partition verdicts in partition order: counters first,
        /// then the kept combinations, stopping at the earliest error —
        /// reproducing the serial combination walk exactly.
        fn merge_verdicts(
            ctx: QueryCtx<'_>,
            items: &[FromItem],
            verdicts: Vec<parallel::ChunkVerdict>,
            cursor_of: impl Fn(usize) -> Vec<usize>,
            want_trace: bool,
            matching: &mut Vec<Level>,
            origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
        ) -> Result<(), QueryError> {
            let parts = verdicts.len() as u64;
            if parts > 1 {
                stats::bump(ctx.stats, |s| {
                    s.parallel_scans += 1;
                    s.parallel_partitions += parts;
                });
            }
            for v in verdicts {
                stats::bump(ctx.stats, |s| {
                    s.join_combinations += v.combos;
                    s.rows_matched += v.matched;
                });
                for i in v.kept {
                    emit_kept(items, &cursor_of(i), want_trace, matching, origins);
                }
                if let Some(e) = v.err {
                    return Err(e);
                }
            }
            Ok(())
        }

        let all_nonempty = items.iter().all(|it| !it.rows.is_empty());
        if compiled_mode {
            // An empty item means zero combinations (matching the
            // odometer), so only plan when every item has rows.
            if all_nonempty {
                if items.len() == 1 {
                    let n = items[0].rows.len();
                    if let Some(cp) = parallel_where(ctx, &full_pred, n) {
                        let rows = &items[0].rows;
                        let verdicts = parallel::judge_chunks(n, ctx.threads, |i| {
                            parallel::eval_rowlocal_predicate(cp, &[rows[i].1.as_slice()])
                        });
                        merge_verdicts(
                            ctx,
                            &items,
                            verdicts,
                            |i| vec![i],
                            want_trace,
                            &mut matching,
                            &mut origins,
                        )?;
                    } else {
                        for i in 0..n {
                            consider(
                                ctx,
                                &items,
                                full_pred.as_deref(),
                                stmt.predicate.as_ref(),
                                want_trace,
                                &[i],
                                bindings,
                                &mut matching,
                                &mut origins,
                            )?;
                        }
                    }
                } else {
                    let types: Vec<Vec<DataType>> =
                        items.iter().map(|it| it.types.clone()).collect();
                    let edges = equi_join_edges(stmt.predicate.as_ref(), &layout, &types);
                    let cards: Vec<usize> = items.iter().map(|it| it.rows.len()).collect();
                    let plan = build_join_plan(&cards, &edges);
                    stats::bump(ctx.stats, |s| {
                        for step in &plan.steps {
                            if step.edges.is_empty() {
                                s.nested_loop_joins += 1;
                            } else {
                                s.hash_joins += 1;
                            }
                        }
                    });
                    let order = plan.order();
                    // pos_of[item] = position of that item in join order;
                    // a partial combination stores row indices in join
                    // order, one per placed item.
                    let mut pos_of = vec![0usize; items.len()];
                    for (p, &it) in order.iter().enumerate() {
                        pos_of[it] = p;
                    }
                    let mut partials: Vec<Vec<usize>> =
                        (0..items[plan.first].rows.len()).map(|i| vec![i]).collect();
                    for step in &plan.steps {
                        if partials.is_empty() {
                            break;
                        }
                        let new_rows = &items[step.item].rows;
                        if step.edges.is_empty() {
                            // Cross step: no equi-edge reaches this item.
                            let mut next = Vec::with_capacity(partials.len() * new_rows.len());
                            for p in &partials {
                                for j in 0..new_rows.len() {
                                    let mut q = p.clone();
                                    q.push(j);
                                    next.push(q);
                                }
                            }
                            partials = next;
                        } else {
                            // Hash step: build on the incoming item over
                            // the composite key. NULL key components never
                            // join (SQL equality with NULL is unknown);
                            // the type-equality requirement on edges makes
                            // storage-level hash equality agree with SQL
                            // equality.
                            //
                            // Build a range of rows into a local map.
                            let build_range =
                                |range: std::ops::Range<usize>| -> HashMap<Vec<&Value>, Vec<usize>> {
                                    let mut local: HashMap<Vec<&Value>, Vec<usize>> =
                                        HashMap::new();
                                    'build: for j in range {
                                        let row = &new_rows[j];
                                        let mut key = Vec::with_capacity(step.edges.len());
                                        for &(_, _, nc) in &step.edges {
                                            let v = &row.1[nc];
                                            if v.is_null() {
                                                continue 'build;
                                            }
                                            key.push(v);
                                        }
                                        local.entry(key).or_default().push(j);
                                    }
                                    local
                                };
                            let table: HashMap<Vec<&Value>, Vec<usize>> = if ctx.threads > 1
                                && new_rows.len() >= parallel::PAR_THRESHOLD
                            {
                                // Partition the build side; merging the
                                // per-worker maps in partition order keeps
                                // every bucket's row indices ascending —
                                // identical to the serial build.
                                let maps = parallel::pool().run_chunked(
                                    new_rows.len(),
                                    ctx.threads,
                                    parallel::MIN_CHUNK,
                                    build_range,
                                );
                                let parts = maps.len() as u64;
                                stats::bump(ctx.stats, |s| {
                                    if parts > 1 {
                                        s.parallel_scans += 1;
                                        s.parallel_partitions += parts;
                                    }
                                });
                                let mut merged: HashMap<Vec<&Value>, Vec<usize>> =
                                    HashMap::new();
                                for local in maps {
                                    for (key, mut js) in local {
                                        merged.entry(key).or_default().append(&mut js);
                                    }
                                }
                                merged
                            } else {
                                build_range(0..new_rows.len())
                            };
                            // Probe a range of partials against the map,
                            // emitting extended combinations in order.
                            let probe_range =
                                |range: std::ops::Range<usize>| -> Vec<Vec<usize>> {
                                    let mut out = Vec::new();
                                    'probe: for p in &partials[range] {
                                        let mut key =
                                            Vec::with_capacity(step.edges.len());
                                        for &(pi, pc, _) in &step.edges {
                                            let v =
                                                &items[pi].rows[p[pos_of[pi]]].1[pc];
                                            if v.is_null() {
                                                continue 'probe;
                                            }
                                            key.push(v);
                                        }
                                        if let Some(js) = table.get(&key) {
                                            for &j in js {
                                                let mut q = p.clone();
                                                q.push(j);
                                                out.push(q);
                                            }
                                        }
                                    }
                                    out
                                };
                            partials = if ctx.threads > 1
                                && partials.len() >= parallel::PAR_THRESHOLD
                            {
                                // Partition the probe side; concatenating
                                // per-partition outputs in partition order
                                // reproduces the serial probe order.
                                let chunks = parallel::pool().run_chunked(
                                    partials.len(),
                                    ctx.threads,
                                    parallel::MIN_CHUNK,
                                    probe_range,
                                );
                                let parts = chunks.len() as u64;
                                stats::bump(ctx.stats, |s| {
                                    if parts > 1 {
                                        s.parallel_scans += 1;
                                        s.parallel_partitions += parts;
                                    }
                                });
                                chunks.concat()
                            } else {
                                probe_range(0..partials.len())
                            };
                        }
                    }
                    // Back to item order, emitted lexicographically so the
                    // two executors produce identical result order.
                    let mut cursors: Vec<Vec<usize>> = partials
                        .into_iter()
                        .map(|p| (0..items.len()).map(|i| p[pos_of[i]]).collect())
                        .collect();
                    cursors.sort_unstable();
                    if let Some(cp) = parallel_where(ctx, &full_pred, cursors.len()) {
                        let cursors_ref = &cursors;
                        let items_ref = &items;
                        let verdicts =
                            parallel::judge_chunks(cursors.len(), ctx.threads, |i| {
                                let frames: Vec<&[Value]> = cursors_ref[i]
                                    .iter()
                                    .zip(items_ref.iter())
                                    .map(|(&r, it)| it.rows[r].1.as_slice())
                                    .collect();
                                parallel::eval_rowlocal_predicate(cp, &frames)
                            });
                        merge_verdicts(
                            ctx,
                            &items,
                            verdicts,
                            |i| cursors[i].clone(),
                            want_trace,
                            &mut matching,
                            &mut origins,
                        )?;
                    } else {
                        for c in &cursors {
                            consider(
                                ctx,
                                &items,
                                full_pred.as_deref(),
                                stmt.predicate.as_ref(),
                                want_trace,
                                c,
                                bindings,
                                &mut matching,
                                &mut origins,
                            )?;
                        }
                    }
                }
            }
        } else if let Some((c0, c1)) = find_equi_join(stmt, &items) {
            stats::bump(ctx.stats, |s| s.hash_joins += 1);
            // Hash join: build on the right item, probe with the left.
            // NULL keys never join (SQL equality with NULL is unknown);
            // the type-equality requirement in find_equi_join makes the
            // storage-level hash equality agree with SQL equality.
            let mut table: HashMap<&Value, Vec<usize>> = HashMap::new();
            for (j, row) in items[1].rows.iter().enumerate() {
                let key = &row.1[c1];
                if !key.is_null() {
                    table.entry(key).or_default().push(j);
                }
            }
            for i in 0..items[0].rows.len() {
                let key = &items[0].rows[i].1[c0];
                if key.is_null() {
                    continue;
                }
                if let Some(js) = table.get(key) {
                    for &j in js {
                        consider(
                            ctx,
                            &items,
                            full_pred.as_deref(),
                            stmt.predicate.as_ref(),
                            want_trace,
                            &[i, j],
                            bindings,
                            &mut matching,
                            &mut origins,
                        )?;
                    }
                }
            }
        } else if all_nonempty {
            if items.len() > 1 {
                stats::bump(ctx.stats, |s| s.nested_loop_joins += 1);
            }
            let mut cursor = vec![0usize; items.len()];
            'outer: loop {
                consider(
                    ctx,
                    &items,
                    full_pred.as_deref(),
                    stmt.predicate.as_ref(),
                    want_trace,
                    &cursor,
                    bindings,
                    &mut matching,
                    &mut origins,
                )?;
                // Advance the odometer.
                for pos in (0..items.len()).rev() {
                    cursor[pos] += 1;
                    if cursor[pos] < items[pos].rows.len() {
                        continue 'outer;
                    }
                    cursor[pos] = 0;
                    if pos == 0 {
                        break 'outer;
                    }
                }
            }
        }
    }

    if let Some(trace) = trace {
        for row_origins in &origins {
            trace.extend(row_origins.iter().copied());
        }
    }

    // ------------------------------------------------------------------
    // 3. Expand wildcards into concrete projection expressions.
    // ------------------------------------------------------------------
    let mut proj: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for it in &items {
                    for c in it.columns.iter() {
                        proj.push((Expr::qcol(it.binding.clone(), c.clone()), c.clone()));
                    }
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                let it = items
                    .iter()
                    .find(|it| it.binding == *q)
                    .ok_or_else(|| QueryError::UnknownColumn(format!("{q}.*")))?;
                for c in it.columns.iter() {
                    proj.push((Expr::qcol(q.clone(), c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => other.to_string(),
                });
                proj.push((expr.clone(), name));
            }
        }
    }
    let columns: Vec<String> = proj.iter().map(|(_, n)| n.clone()).collect();

    // ------------------------------------------------------------------
    // 4. Project — grouped or row-by-row.
    // ------------------------------------------------------------------
    let grouped = !stmt.group_by.is_empty()
        || proj.iter().any(|(e, _)| has_aggregate(e))
        || stmt.having.as_ref().is_some_and(has_aggregate);

    // Each produced row carries its order-by key for step 5.
    type KeyedRow = (Vec<Value>, Vec<Value>);
    let mut keyed_rows: Vec<KeyedRow> = Vec::new();

    if grouped {
        // Partition matching rows into groups.
        let mut group_rows: Vec<Vec<Level>> = Vec::new();
        if stmt.group_by.is_empty() {
            group_rows.push(matching);
        } else {
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for level in matching {
                bindings.push_level(level);
                let mut key = Vec::with_capacity(stmt.group_by.len());
                let mut key_err = None;
                for g in &stmt.group_by {
                    match eval_expr(ctx, bindings, None, g) {
                        Ok(v) => key.push(v),
                        Err(e) => {
                            key_err = Some(e);
                            break;
                        }
                    }
                }
                let level = bindings.pop_level().expect("pushed above");
                if let Some(e) = key_err {
                    return Err(e);
                }
                let slot = *index.entry(key).or_insert_with(|| {
                    group_rows.push(Vec::new());
                    group_rows.len() - 1
                });
                group_rows[slot].push(level);
            }
        }

        for rows in group_rows {
            // Representative bindings for non-aggregate expressions: the
            // first row of the group, or all-NULL frames for the empty
            // ungrouped case (`select count(*) from empty_table`).
            let repr: Level = match rows.first() {
                Some(l) => l.clone(),
                None => items
                    .iter()
                    .map(|it| Frame {
                        name: it.binding.clone(),
                        columns: Arc::clone(&it.columns),
                        row: vec![Value::Null; it.columns.len()],
                    })
                    .collect(),
            };
            bindings.push_level(repr);
            let result = (|| -> Result<Option<KeyedRow>, QueryError> {
                if let Some(h) = &stmt.having {
                    let v = eval_expr(ctx, bindings, Some(&rows), h)?;
                    if crate::eval::truth(&v)? != Some(true) {
                        return Ok(None);
                    }
                }
                let mut out = Vec::with_capacity(proj.len());
                for (e, _) in &proj {
                    out.push(eval_expr(ctx, bindings, Some(&rows), e)?);
                }
                let mut key = Vec::with_capacity(stmt.order_by.len());
                for (e, _) in &stmt.order_by {
                    key.push(eval_expr(ctx, bindings, Some(&rows), e)?);
                }
                Ok(Some((key, out)))
            })();
            bindings.pop_level();
            if let Some(pair) = result? {
                keyed_rows.push(pair);
            }
        }
    } else {
        // Compiled mode lowers projections and order-by keys once instead
        // of resolving names per output row. (These include synthesized
        // wildcard expansions, so they compile fresh — never through the
        // plan cache, whose keys require stable AST addresses.)
        let compiled_proj: Option<(Vec<CompiledExpr>, Vec<CompiledExpr>)> = if compiled_mode {
            Some((
                proj.iter().map(|(e, _)| compile(e, &layout)).collect(),
                stmt.order_by.iter().map(|(e, _)| compile(e, &layout)).collect(),
            ))
        } else {
            None
        };
        for level in matching {
            bindings.push_level(level);
            let result = (|| -> Result<(Vec<Value>, Vec<Value>), QueryError> {
                match &compiled_proj {
                    Some((ps, ks)) => {
                        let mut out = Vec::with_capacity(ps.len());
                        for e in ps {
                            out.push(eval_compiled(ctx, bindings, None, e)?);
                        }
                        let mut key = Vec::with_capacity(ks.len());
                        for e in ks {
                            key.push(eval_compiled(ctx, bindings, None, e)?);
                        }
                        Ok((key, out))
                    }
                    None => {
                        let mut out = Vec::with_capacity(proj.len());
                        for (e, _) in &proj {
                            out.push(eval_expr(ctx, bindings, None, e)?);
                        }
                        let mut key = Vec::with_capacity(stmt.order_by.len());
                        for (e, _) in &stmt.order_by {
                            key.push(eval_expr(ctx, bindings, None, e)?);
                        }
                        Ok((key, out))
                    }
                }
            })();
            bindings.pop_level();
            keyed_rows.push(result?);
        }
    }

    // ------------------------------------------------------------------
    // 5. distinct → order by → limit.
    // ------------------------------------------------------------------
    if stmt.distinct {
        // Dedup without cloning rows: a borrowing seen-set marks the first
        // occurrence of each row, then the mask drives `retain`.
        let mut seen: HashSet<&[Value]> = HashSet::with_capacity(keyed_rows.len());
        let keep: Vec<bool> =
            keyed_rows.iter().map(|(_, row)| seen.insert(row.as_slice())).collect();
        drop(seen);
        let mut mask = keep.iter();
        keyed_rows.retain(|_| *mask.next().expect("one mask bit per row"));
    }
    let order_cmp = |ka: &[Value], kb: &[Value]| {
        for (i, (_, asc)) in stmt.order_by.iter().enumerate() {
            let ord = ka[i].cmp(&kb[i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    match stmt.limit.map(|n| n as usize) {
        // Top-k fast path: when only a small prefix of the sorted output
        // survives `limit`, partial-select the k smallest and sort just
        // those instead of sorting everything. The original row index
        // breaks order-key ties, making the order strict and total — so
        // the unstable partial select + prefix sort reproduces the stable
        // full sort's first k rows exactly.
        Some(k) if !stmt.order_by.is_empty() && k > 0 && k < keyed_rows.len() / 4 => {
            stats::bump(ctx.stats, |s| s.topk_selected += 1);
            let mut indexed: Vec<(usize, KeyedRow)> =
                keyed_rows.into_iter().enumerate().collect();
            let cmp = |a: &(usize, KeyedRow), b: &(usize, KeyedRow)| {
                order_cmp(&a.1 .0, &b.1 .0).then(a.0.cmp(&b.0))
            };
            indexed.select_nth_unstable_by(k - 1, cmp);
            indexed.truncate(k);
            indexed.sort_unstable_by(cmp);
            keyed_rows = indexed.into_iter().map(|(_, kr)| kr).collect();
        }
        limit => {
            if !stmt.order_by.is_empty() {
                keyed_rows.sort_by(|(ka, _), (kb, _)| order_cmp(ka, kb));
            }
            if let Some(n) = limit {
                keyed_rows.truncate(n);
            }
        }
    }

    Ok(Relation { columns, rows: keyed_rows.into_iter().map(|(_, r)| r).collect() })
}

/// When `stmt`'s `order by` can be answered by walking an ordered index
/// instead of sorting, the shape of that walk: the table, the key column,
/// and the access path (`FullScan` = whole-index walk, or an `IndexRange`
/// on the key column itself). `None` means the generic pipeline must run.
///
/// The shape gate requires: a sole named `from` item, a single `order by`
/// key that is a bare column of that item with an ordered index, no
/// `distinct`/`group by`/`having`/aggregates. Soundness argument: the
/// generic pipeline scans in handle order and stably sorts by the key's
/// storage total order, which is exactly the index walk — buckets in key
/// order, ascending handles within a bucket (descending keys reverse the
/// bucket order only).
pub(crate) fn elidable_order_column(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
) -> Option<(TableId, ColumnId, Access)> {
    if stmt.from.len() != 1
        || stmt.distinct
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.order_by.len() != 1
    {
        return None;
    }
    let TableSource::Named(table_name) = &stmt.from[0].source else {
        return None;
    };
    let binding = stmt.from[0].binding_name();
    let Expr::Column { qualifier, name } = &stmt.order_by[0].0 else {
        return None;
    };
    match qualifier.as_deref() {
        None => {}
        Some(q) if q == binding => {}
        _ => return None,
    }
    let tid = ctx.db.table_id(table_name).ok()?;
    let oc = ctx.db.schema(tid).column_id(name).ok()?;
    ctx.db.ordered_index(tid, oc)?;
    if stmt
        .projection
        .iter()
        .any(|it| matches!(it, SelectItem::Expr { expr, .. } if has_aggregate(expr)))
    {
        return None;
    }
    let access = choose_access(ctx, tid, binding, true, stmt.predicate.as_ref());
    match &access {
        Access::FullScan => {}
        Access::IndexRange { column, .. } if *column == oc => {}
        // Probe paths and ranges on a different column would emit handles
        // out of key order; `Empty` is trivial either way.
        _ => return None,
    }
    Some((tid, oc, access))
}

/// Sort-elision fast path: emit rows in ordered-index order and stop at
/// `limit`, instead of materializing every match and sorting. Returns
/// `None` when the query shape doesn't qualify (the generic pipeline runs).
fn index_order_scan(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
    bindings: &mut Bindings,
) -> Result<Option<Relation>, QueryError> {
    let Some((tid, oc, access)) = elidable_order_column(ctx, stmt) else {
        return Ok(None);
    };
    let asc = stmt.order_by[0].1;
    let binding = stmt.from[0].binding_name();
    let schema = ctx.db.schema(tid);
    let columns_arc =
        Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
    let index = ctx.db.ordered_index(tid, oc).expect("elidable_order_column checked");

    // Expand the projection exactly as the generic pipeline does.
    let mut proj: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for c in columns_arc.iter() {
                    proj.push((Expr::qcol(binding.to_string(), c.clone()), c.clone()));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                if q != binding {
                    return Err(QueryError::UnknownColumn(format!("{q}.*")));
                }
                for c in columns_arc.iter() {
                    proj.push((Expr::qcol(q.clone(), c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => other.to_string(),
                });
                proj.push((expr.clone(), name));
            }
        }
    }
    let out_columns: Vec<String> = proj.iter().map(|(_, n)| n.clone()).collect();

    // Compile once against the same scope layout the generic pipeline
    // would use (outer scopes plus this item's level).
    let mut layout = bindings.layout();
    layout.push_level(vec![LayoutFrame {
        name: binding.to_string(),
        columns: Arc::clone(&columns_arc),
    }]);
    let compiled_mode = ctx.mode == ExecMode::Compiled;
    let full_pred: Option<Arc<CompiledExpr>> = match (&stmt.predicate, compiled_mode) {
        (Some(p), true) => Some(compile_cached(ctx, p, &layout)),
        _ => None,
    };
    let compiled_proj: Option<Vec<CompiledExpr>> =
        compiled_mode.then(|| proj.iter().map(|(e, _)| compile(e, &layout)).collect());

    stats::bump(ctx.stats, |s| {
        s.sort_elided += 1;
        match &access {
            Access::FullScan => s.full_scans += 1,
            Access::IndexRange { .. } => s.range_scans += 1,
            _ => unreachable!("elidable_order_column allows only these"),
        }
    });

    // The walk: a `FullScan` access visits the whole index (including the
    // NULL bucket, which sorts first — just as the generic sort puts NULL
    // rows first); a range visits its key interval. Descending order
    // reverses bucket order; handles inside a bucket stay ascending.
    let walk = match &access {
        Access::FullScan => index.range(Bound::Unbounded, Bound::Unbounded),
        Access::IndexRange { lo, hi, .. } => index.range(lo.clone(), hi.clone()),
        _ => unreachable!("elidable_order_column allows only these"),
    };
    let walk: Box<dyn Iterator<Item = _>> =
        if asc { Box::new(walk) } else { Box::new(walk.rev()) };

    let limit = stmt.limit.map(|n| n as usize);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut visited: u64 = 0;
    'walk: for (_, bucket) in walk {
        for &h in bucket {
            if limit.is_some_and(|n| rows.len() >= n) {
                break 'walk;
            }
            visited += 1;
            stats::bump(ctx.stats, |s| s.rows_scanned += 1);
            let tuple = ctx.db.get(tid, h).expect("indexed handle is live");
            bindings.push_level(vec![Frame {
                name: binding.to_string(),
                columns: Arc::clone(&columns_arc),
                row: tuple.0.clone(),
            }]);
            let result = (|| -> Result<Option<Vec<Value>>, QueryError> {
                let keep = match (&full_pred, &stmt.predicate) {
                    (Some(cp), _) => eval_compiled_predicate(ctx, bindings, None, cp)?,
                    (None, Some(p)) => eval_predicate(ctx, bindings, None, p)?,
                    (None, None) => true,
                };
                if !keep {
                    return Ok(None);
                }
                let mut out = Vec::with_capacity(proj.len());
                match &compiled_proj {
                    Some(ps) => {
                        for e in ps {
                            out.push(eval_compiled(ctx, bindings, None, e)?);
                        }
                    }
                    None => {
                        for (e, _) in &proj {
                            out.push(eval_expr(ctx, bindings, None, e)?);
                        }
                    }
                }
                Ok(Some(out))
            })();
            bindings.pop_level();
            if let Some(row) = result? {
                stats::bump(ctx.stats, |s| s.rows_matched += 1);
                rows.push(row);
            }
        }
    }
    if matches!(access, Access::IndexRange { .. }) {
        let skipped = ctx.db.table(tid).len() as u64 - visited;
        stats::bump(ctx.stats, |s| s.range_rows_skipped += skipped);
    }
    Ok(Some(Relation { columns: out_columns, rows }))
}

/// Min/max short-circuit: a projection made entirely of bare `min`/`max`
/// aggregates over ordered-indexed columns of a sole named item — with no
/// predicate, grouping, having, ordering, or distinct — is answered from
/// the index boundary keys without scanning a single tuple. Returns `None`
/// when the shape doesn't qualify.
fn min_max_shortcircuit(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
) -> Result<Option<Relation>, QueryError> {
    if stmt.from.len() != 1
        || stmt.distinct
        || stmt.predicate.is_some()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || !stmt.order_by.is_empty()
        || stmt.projection.is_empty()
    {
        return Ok(None);
    }
    let TableSource::Named(table_name) = &stmt.from[0].source else {
        return Ok(None);
    };
    let binding = stmt.from[0].binding_name();
    let Ok(tid) = ctx.db.table_id(table_name) else {
        return Ok(None); // let the generic pipeline raise the error
    };
    let schema = ctx.db.schema(tid);
    let mut wanted: Vec<(ColumnId, bool, String)> = Vec::with_capacity(stmt.projection.len());
    for item in &stmt.projection {
        let SelectItem::Expr { expr, alias } = item else {
            return Ok(None);
        };
        // `min(distinct c)` equals `min(c)`: distinct is a no-op here.
        let Expr::Aggregate { func, arg: Some(arg), .. } = expr else {
            return Ok(None);
        };
        let is_min = match func {
            AggFunc::Min => true,
            AggFunc::Max => false,
            _ => return Ok(None),
        };
        let Expr::Column { qualifier, name } = arg.as_ref() else {
            return Ok(None);
        };
        match qualifier.as_deref() {
            None => {}
            Some(q) if q == binding => {}
            _ => return Ok(None),
        }
        let Ok(col) = schema.column_id(name) else {
            return Ok(None);
        };
        // Bool columns aside (no meaningful order shortcut), the column
        // needs an ordered index for its boundary keys.
        if schema.column_type(col) == DataType::Bool || ctx.db.ordered_index(tid, col).is_none() {
            return Ok(None);
        }
        let out_name = alias.clone().unwrap_or_else(|| expr.to_string());
        wanted.push((col, is_min, out_name));
    }
    let mut row = Vec::with_capacity(wanted.len());
    let mut names = Vec::with_capacity(wanted.len());
    for (col, is_min, name) in wanted {
        let index = ctx.db.ordered_index(tid, col).expect("checked above");
        // Any stored NaN sits at an extreme of the IEEE total order; the
        // aggregate's fold may raise "cannot compare" on it, so let the
        // generic pipeline reproduce that exactly.
        let is_nan = |k: Option<&Value>| matches!(k, Some(Value::Float(f)) if f.is_nan());
        if is_nan(index.first_key()) || is_nan(index.last_key()) {
            return Ok(None);
        }
        let boundary = if is_min { index.first_key() } else { index.last_key() };
        let v = match boundary {
            // No non-NULL values: the aggregate over them is NULL.
            None => Value::Null,
            Some(v) => resolve_zero_tie(index, v.clone()),
        };
        stats::bump(ctx.stats, |s| s.index_lookups += 1);
        row.push(v);
        names.push(name);
    }
    let rows = if stmt.limit == Some(0) { Vec::new() } else { vec![row] };
    Ok(Some(Relation { columns: names, rows }))
}

/// `-0.0` and `0.0` are distinct index keys but SQL-equal, and the
/// aggregate fold keeps the first-encountered (smallest-handle) value of a
/// tied pair — so when the boundary key is a zero and both zero buckets
/// exist, return the value from the bucket holding the smaller handle.
fn resolve_zero_tie(index: &setrules_storage::OrderedIndex, v: Value) -> Value {
    let Value::Float(f) = v else {
        return v;
    };
    if f != 0.0 {
        return v;
    }
    let neg = index.get(&Value::Float(-0.0)).and_then(|b| b.first());
    let pos = index.get(&Value::Float(0.0)).and_then(|b| b.first());
    match (neg, pos) {
        (Some(hn), Some(hp)) => {
            if hn < hp {
                Value::Float(-0.0)
            } else {
                Value::Float(0.0)
            }
        }
        (Some(_), None) => Value::Float(-0.0),
        _ => Value::Float(0.0),
    }
}

/// Whether an expression contains an aggregate call *at this query level*
/// (aggregates inside subqueries belong to the subquery).
pub fn has_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate { .. } => true,
        Expr::Literal(_) | Expr::Column { .. } => false,
        Expr::Unary { expr, .. } => has_aggregate(expr),
        Expr::Binary { left, right, .. } => has_aggregate(left) || has_aggregate(right),
        Expr::IsNull { expr, .. } => has_aggregate(expr),
        Expr::InList { expr, list, .. } => has_aggregate(expr) || list.iter().any(has_aggregate),
        Expr::InSubquery { expr, .. } => has_aggregate(expr),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
        Expr::Between { expr, low, high, .. } => {
            has_aggregate(expr) || has_aggregate(low) || has_aggregate(high)
        }
        Expr::Like { expr, pattern, escape, .. } => {
            has_aggregate(expr)
                || has_aggregate(pattern)
                || escape.as_ref().is_some_and(|e| has_aggregate(e))
        }
    }
}
