//! `select` execution: joins over `from` items (stored tables and
//! transition tables), three-valued `where` filtering, grouping and
//! aggregation, `distinct`, `order by`, and `limit`.
//!
//! This module is the *lowering driver*: it plans a statement — access
//! selection, predicate compilation, pushdown classification — and lowers
//! it to a tree of batched physical operators (see [`crate::exec`]),
//! then pulls that tree dry. Two executors share the front-end, selected
//! by [`ExecMode`](crate::ExecMode) on the context:
//!
//! * **Compiled** (default): the predicate is lowered once to a
//!   slot-addressed [`CompiledExpr`], single-item conjuncts are pushed
//!   down to their scan, and an N-way greedy
//!   [`JoinPlan`](crate::planner::JoinPlan) joins items with hash tables
//!   on equi-join keys (cross steps only when nothing connects).
//! * **Interpreted**: per-row string resolution, the historical nested-loop
//!   odometer with a 2-item hash equi-join special case — kept as the
//!   differential-testing reference.
//!
//! Both evaluate the *full* predicate per assembled combination (hash
//! probes and pushdown are sound prefilters) and emit combinations in
//! row-index lexicographic order, so results are identical and
//! deterministic: scans run in handle order, groups appear in first-seen
//! order, and `order by` uses the storage total order. The one accepted
//! divergence: prefilters may skip combinations whose evaluation would
//! *error* (the historical 2-way hash path already did this).
//!
//! Two ordered-index fast paths bypass the operator pipeline entirely:
//! [`min_max_shortcircuit`] and [`index_order_scan`] below.

use std::ops::Bound;
use std::sync::Arc;

use setrules_sql::ast::{AggFunc, Expr, SelectItem, SelectStmt, TableSource};
use setrules_storage::{ColumnId, DataType, TableId, TupleHandle, Value};

use crate::bindings::{Bindings, Frame};
use crate::compile::{
    compile, compile_cached, eval_compiled, eval_compiled_predicate, CompiledExpr, LayoutFrame,
};
use crate::ctx::{ExecMode, QueryCtx};
use crate::error::QueryError;
use crate::eval::{eval_expr, eval_predicate};
use crate::exec::aggregate::AggregateExec;
use crate::exec::filter::FilterExec;
use crate::exec::join::JoinExec;
use crate::exec::project::ProjectExec;
use crate::exec::scan::{ScanExec, ScanSource};
use crate::exec::sort::{DistinctExec, LimitExec, SortExec};
use crate::exec::{ExecCx, KeyedRow, RowSource};
use crate::planner::{choose_access, Access};
use crate::relation::Relation;
use crate::stats;

/// Run a `select` in the given outer scope (empty for top-level queries,
/// populated for correlated subqueries). Returns the materialized result.
pub fn run_select(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
    bindings: &mut Bindings,
) -> Result<Relation, QueryError> {
    run_select_traced(ctx, stmt, bindings, None)
}

/// Like [`run_select`], additionally recording, into `trace`, the handle of
/// every stored-table tuple that contributed to a row satisfying `where`.
/// The rule engine uses this for the `S` (selected) component of transition
/// effects (§5.1 extension).
pub fn run_select_traced(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
    bindings: &mut Bindings,
    trace: Option<&mut Vec<(TableId, TupleHandle)>>,
) -> Result<Relation, QueryError> {
    // Ordered-index fast paths: answer bare `min`/`max` from the index
    // boundary keys, and answer a single-key `order by` in index order
    // (short-circuiting `limit` without materializing or sorting). Both
    // are gated off when a trace is requested — early stopping would
    // change the selected-transition effects the trace feeds.
    if trace.is_none() {
        if let Some(rel) = min_max_shortcircuit(ctx, stmt)? {
            return Ok(rel);
        }
        if let Some(rel) = index_order_scan(ctx, stmt, bindings)? {
            return Ok(rel);
        }
    }

    // ------------------------------------------------------------------
    // 1. Plan: per-item metadata and access selection (no rows yet — the
    //    compile-once front-end needs every item's binding and columns
    //    before scanning), predicate compilation, pushdown
    //    classification.
    // ------------------------------------------------------------------
    let sole = stmt.from.len() == 1;
    let compiled_mode = ctx.mode == ExecMode::Compiled;

    enum Source {
        Named { tid: TableId, access: Access },
        Transition,
    }
    struct ItemMeta {
        binding: String,
        columns: Arc<Vec<String>>,
        types: Vec<DataType>,
        source: Source,
    }
    let mut metas = Vec::with_capacity(stmt.from.len());
    for tref in &stmt.from {
        let binding = tref.binding_name().to_string();
        let (table_name, named) = match &tref.source {
            TableSource::Named(name) => (name, true),
            TableSource::Transition { table, .. } => (table, false),
        };
        let tid = ctx.db.table_id(table_name)?;
        let schema = ctx.db.schema(tid);
        let columns = Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
        let types = schema.columns.iter().map(|c| c.ty).collect();
        let source = if named {
            let access = choose_access(ctx, tid, &binding, sole, stmt.predicate.as_ref());
            Source::Named { tid, access }
        } else {
            Source::Transition
        };
        metas.push(ItemMeta { binding, columns, types, source });
    }

    // Compile-once front-end: the scope layout is the outer scopes plus
    // one innermost level holding this query's items. The full predicate
    // compiles once (through the plan cache, when one is attached)
    // against it.
    let mut layout = bindings.layout();
    layout.push_level(
        metas
            .iter()
            .map(|m| LayoutFrame { name: m.binding.clone(), columns: Arc::clone(&m.columns) })
            .collect(),
    );
    let full_pred: Option<Arc<CompiledExpr>> = match (&stmt.predicate, compiled_mode) {
        (Some(p), true) => Some(compile_cached(ctx, p, &layout)),
        _ => None,
    };

    // Pushdown classification: a conjunct whose innermost-level slots all
    // land in one item filters that item's scan directly. Only fully
    // slot-resolved conjuncts qualify (no subqueries, no interpreter
    // fallbacks), and only rows it evaluates to non-*true* on are dropped
    // — errors defer to the full predicate, so pushdown never surfaces an
    // error early. Re-compiling against the single-item scope the scan
    // evaluates in is sound because resolution is innermost-first:
    // removing sibling frames cannot redirect a reference that already
    // resolved into this item.
    // A sole stored-table item skips pushdown (the full predicate does
    // the identical work), but a sole *transition* item benefits: its
    // provider lends borrowed rows, so dropping a row at the scan avoids
    // ever cloning it.
    let pushdown_worthwhile =
        metas.len() > 1 || metas.iter().any(|m| matches!(m.source, Source::Transition));
    let mut pushed: Vec<Vec<CompiledExpr>> = (0..metas.len()).map(|_| Vec::new()).collect();
    if compiled_mode && pushdown_worthwhile {
        if let Some(p) = &stmt.predicate {
            let mut conjuncts = Vec::new();
            crate::planner::collect_conjuncts(p, &mut conjuncts);
            for c in conjuncts {
                let cc = compile(c, &layout);
                if !cc.slots_only() {
                    continue;
                }
                // All level-0 slots must target a single item. Conjuncts
                // with no level-0 slots (constants, outer-only references)
                // are left to the full predicate: evaluating them per scan
                // row would be wasted work, not a correctness issue.
                let mut target = None;
                let mut single_item = true;
                cc.for_each_slot(&mut |up, frame, _| {
                    if up == 0 {
                        match target {
                            None => target = Some(frame),
                            Some(t) if t == frame => {}
                            Some(_) => single_item = false,
                        }
                    }
                });
                if !single_item {
                    continue;
                }
                let Some(i) = target else { continue };
                let mut scan_layout = bindings.layout();
                scan_layout.push_level(vec![LayoutFrame {
                    name: metas[i].binding.clone(),
                    columns: Arc::clone(&metas[i].columns),
                }]);
                pushed[i].push(compile(c, &scan_layout));
            }
        }
    }

    // ------------------------------------------------------------------
    // 2. Lower to the operator tree (see `crate::exec`): scans → join →
    //    filter → project|aggregate → distinct? → sort? → limit?.
    // ------------------------------------------------------------------
    let mut scans: Vec<ScanExec<'_>> = Vec::with_capacity(stmt.from.len());
    for (idx, (meta, tref)) in metas.into_iter().zip(&stmt.from).enumerate() {
        let conjs = std::mem::take(&mut pushed[idx]);
        let source = match (meta.source, &tref.source) {
            (Source::Named { tid, access }, _) => ScanSource::Named { tid, access },
            (Source::Transition, TableSource::Transition { kind, table, column }) => {
                ScanSource::Transition { kind: *kind, table, column: column.as_deref() }
            }
            (Source::Transition, TableSource::Named(_)) => {
                unreachable!("meta source mirrors the from item")
            }
        };
        scans.push(ScanExec::new(meta.binding, meta.columns, meta.types, source, conjs));
    }
    let want_trace = trace.is_some();
    let filter =
        FilterExec::new(JoinExec::new(scans, stmt), full_pred, stmt.predicate.as_ref(), want_trace);
    let mut top: Box<dyn RowSource + '_> = if crate::exec::is_grouped(stmt) {
        Box::new(AggregateExec::new(filter, stmt))
    } else {
        Box::new(ProjectExec::new(filter, stmt))
    };
    if stmt.distinct {
        top = Box::new(DistinctExec::new(top));
    }
    let limit = stmt.limit.map(|n| n as usize);
    if !stmt.order_by.is_empty() {
        top = Box::new(SortExec::new(top, &stmt.order_by, limit));
    }
    if let Some(n) = limit {
        top = Box::new(LimitExec::new(top, n));
    }

    // ------------------------------------------------------------------
    // 3. Pull the pipeline dry.
    // ------------------------------------------------------------------
    let mut cx = ExecCx { ctx, bindings };
    let mut keyed_rows: Vec<KeyedRow> = Vec::new();
    while let Some(batch) = top.next_batch(&mut cx)? {
        keyed_rows.extend(batch);
    }
    if let Some(trace) = trace {
        for row_origins in top.take_origins() {
            trace.extend(row_origins);
        }
    }
    let columns = top.output_columns().to_vec();
    Ok(Relation { columns, rows: keyed_rows.into_iter().map(|(_, r)| r).collect() })
}

/// When `stmt`'s `order by` can be answered by walking an ordered index
/// instead of sorting, the shape of that walk: the table, the key column,
/// and the access path (`FullScan` = whole-index walk, or an `IndexRange`
/// on the key column itself). `None` means the generic pipeline must run.
///
/// The shape gate requires: a sole named `from` item, a single `order by`
/// key that is a bare column of that item with an ordered index, no
/// `distinct`/`group by`/`having`/aggregates. Soundness argument: the
/// generic pipeline scans in handle order and stably sorts by the key's
/// storage total order, which is exactly the index walk — buckets in key
/// order, ascending handles within a bucket (descending keys reverse the
/// bucket order only).
pub(crate) fn elidable_order_column(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
) -> Option<(TableId, ColumnId, Access)> {
    if stmt.from.len() != 1
        || stmt.distinct
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || stmt.order_by.len() != 1
    {
        return None;
    }
    let TableSource::Named(table_name) = &stmt.from[0].source else {
        return None;
    };
    let binding = stmt.from[0].binding_name();
    let Expr::Column { qualifier, name } = &stmt.order_by[0].0 else {
        return None;
    };
    match qualifier.as_deref() {
        None => {}
        Some(q) if q == binding => {}
        _ => return None,
    }
    let tid = ctx.db.table_id(table_name).ok()?;
    let oc = ctx.db.schema(tid).column_id(name).ok()?;
    ctx.db.ordered_index(tid, oc)?;
    if stmt
        .projection
        .iter()
        .any(|it| matches!(it, SelectItem::Expr { expr, .. } if has_aggregate(expr)))
    {
        return None;
    }
    let access = choose_access(ctx, tid, binding, true, stmt.predicate.as_ref());
    match &access {
        Access::FullScan => {}
        Access::IndexRange { column, .. } if *column == oc => {}
        // Probe paths and ranges on a different column would emit handles
        // out of key order; `Empty` is trivial either way.
        _ => return None,
    }
    Some((tid, oc, access))
}

/// Sort-elision fast path: emit rows in ordered-index order and stop at
/// `limit`, instead of materializing every match and sorting. Returns
/// `None` when the query shape doesn't qualify (the generic pipeline runs).
fn index_order_scan(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
    bindings: &mut Bindings,
) -> Result<Option<Relation>, QueryError> {
    let Some((tid, oc, access)) = elidable_order_column(ctx, stmt) else {
        return Ok(None);
    };
    let asc = stmt.order_by[0].1;
    let binding = stmt.from[0].binding_name();
    let schema = ctx.db.schema(tid);
    let columns_arc =
        Arc::new(schema.columns.iter().map(|c| c.name.clone()).collect::<Vec<_>>());
    let index = ctx.db.ordered_index(tid, oc).expect("elidable_order_column checked");

    // Expand the projection exactly as the generic pipeline does.
    let mut proj: Vec<(Expr, String)> = Vec::new();
    for item in &stmt.projection {
        match item {
            SelectItem::Wildcard => {
                for c in columns_arc.iter() {
                    proj.push((Expr::qcol(binding.to_string(), c.clone()), c.clone()));
                }
            }
            SelectItem::QualifiedWildcard(q) => {
                if q != binding {
                    return Err(QueryError::UnknownColumn(format!("{q}.*")));
                }
                for c in columns_arc.iter() {
                    proj.push((Expr::qcol(q.clone(), c.clone()), c.clone()));
                }
            }
            SelectItem::Expr { expr, alias } => {
                let name = alias.clone().unwrap_or_else(|| match expr {
                    Expr::Column { name, .. } => name.clone(),
                    other => other.to_string(),
                });
                proj.push((expr.clone(), name));
            }
        }
    }
    let out_columns: Vec<String> = proj.iter().map(|(_, n)| n.clone()).collect();

    // Compile once against the same scope layout the generic pipeline
    // would use (outer scopes plus this item's level).
    let mut layout = bindings.layout();
    layout.push_level(vec![LayoutFrame {
        name: binding.to_string(),
        columns: Arc::clone(&columns_arc),
    }]);
    let compiled_mode = ctx.mode == ExecMode::Compiled;
    let full_pred: Option<Arc<CompiledExpr>> = match (&stmt.predicate, compiled_mode) {
        (Some(p), true) => Some(compile_cached(ctx, p, &layout)),
        _ => None,
    };
    let compiled_proj: Option<Vec<CompiledExpr>> =
        compiled_mode.then(|| proj.iter().map(|(e, _)| compile(e, &layout)).collect());

    stats::bump(ctx.stats, |s| {
        s.sort_elided += 1;
        match &access {
            Access::FullScan => s.full_scans += 1,
            Access::IndexRange { .. } => s.range_scans += 1,
            _ => unreachable!("elidable_order_column allows only these"),
        }
    });

    // The walk: a `FullScan` access visits the whole index (including the
    // NULL bucket, which sorts first — just as the generic sort puts NULL
    // rows first); a range visits its key interval. Descending order
    // reverses bucket order; handles inside a bucket stay ascending.
    let walk = match &access {
        Access::FullScan => index.range(Bound::Unbounded, Bound::Unbounded),
        Access::IndexRange { lo, hi, .. } => index.range(lo.clone(), hi.clone()),
        _ => unreachable!("elidable_order_column allows only these"),
    };
    let walk: Box<dyn Iterator<Item = _>> =
        if asc { Box::new(walk) } else { Box::new(walk.rev()) };

    let limit = stmt.limit.map(|n| n as usize);
    let mut rows: Vec<Vec<Value>> = Vec::new();
    let mut visited: u64 = 0;
    'walk: for (_, bucket) in walk {
        for &h in bucket {
            if limit.is_some_and(|n| rows.len() >= n) {
                break 'walk;
            }
            visited += 1;
            stats::bump(ctx.stats, |s| s.rows_scanned += 1);
            let tuple = ctx.db.get(tid, h).expect("indexed handle is live");
            bindings.push_level(vec![Frame {
                name: binding.to_string(),
                columns: Arc::clone(&columns_arc),
                row: tuple.0.clone(),
            }]);
            let result = (|| -> Result<Option<Vec<Value>>, QueryError> {
                let keep = match (&full_pred, &stmt.predicate) {
                    (Some(cp), _) => eval_compiled_predicate(ctx, bindings, None, cp)?,
                    (None, Some(p)) => eval_predicate(ctx, bindings, None, p)?,
                    (None, None) => true,
                };
                if !keep {
                    return Ok(None);
                }
                let mut out = Vec::with_capacity(proj.len());
                match &compiled_proj {
                    Some(ps) => {
                        for e in ps {
                            out.push(eval_compiled(ctx, bindings, None, e)?);
                        }
                    }
                    None => {
                        for (e, _) in &proj {
                            out.push(eval_expr(ctx, bindings, None, e)?);
                        }
                    }
                }
                Ok(Some(out))
            })();
            bindings.pop_level();
            if let Some(row) = result? {
                stats::bump(ctx.stats, |s| s.rows_matched += 1);
                rows.push(row);
            }
        }
    }
    if matches!(access, Access::IndexRange { .. }) {
        let skipped = ctx.db.table(tid).len() as u64 - visited;
        stats::bump(ctx.stats, |s| s.range_rows_skipped += skipped);
    }
    Ok(Some(Relation { columns: out_columns, rows }))
}

/// Min/max short-circuit: a projection made entirely of bare `min`/`max`
/// aggregates over ordered-indexed columns of a sole named item — with no
/// predicate, grouping, having, ordering, or distinct — is answered from
/// the index boundary keys without scanning a single tuple. Returns `None`
/// when the shape doesn't qualify.
fn min_max_shortcircuit(
    ctx: QueryCtx<'_>,
    stmt: &SelectStmt,
) -> Result<Option<Relation>, QueryError> {
    if stmt.from.len() != 1
        || stmt.distinct
        || stmt.predicate.is_some()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || !stmt.order_by.is_empty()
        || stmt.projection.is_empty()
    {
        return Ok(None);
    }
    let TableSource::Named(table_name) = &stmt.from[0].source else {
        return Ok(None);
    };
    let binding = stmt.from[0].binding_name();
    let Ok(tid) = ctx.db.table_id(table_name) else {
        return Ok(None); // let the generic pipeline raise the error
    };
    let schema = ctx.db.schema(tid);
    let mut wanted: Vec<(ColumnId, bool, String)> = Vec::with_capacity(stmt.projection.len());
    for item in &stmt.projection {
        let SelectItem::Expr { expr, alias } = item else {
            return Ok(None);
        };
        // `min(distinct c)` equals `min(c)`: distinct is a no-op here.
        let Expr::Aggregate { func, arg: Some(arg), .. } = expr else {
            return Ok(None);
        };
        let is_min = match func {
            AggFunc::Min => true,
            AggFunc::Max => false,
            _ => return Ok(None),
        };
        let Expr::Column { qualifier, name } = arg.as_ref() else {
            return Ok(None);
        };
        match qualifier.as_deref() {
            None => {}
            Some(q) if q == binding => {}
            _ => return Ok(None),
        }
        let Ok(col) = schema.column_id(name) else {
            return Ok(None);
        };
        // Bool columns aside (no meaningful order shortcut), the column
        // needs an ordered index for its boundary keys.
        if schema.column_type(col) == DataType::Bool || ctx.db.ordered_index(tid, col).is_none() {
            return Ok(None);
        }
        let out_name = alias.clone().unwrap_or_else(|| expr.to_string());
        wanted.push((col, is_min, out_name));
    }
    let mut row = Vec::with_capacity(wanted.len());
    let mut names = Vec::with_capacity(wanted.len());
    for (col, is_min, name) in wanted {
        let index = ctx.db.ordered_index(tid, col).expect("checked above");
        // Any stored NaN sits at an extreme of the IEEE total order; the
        // aggregate's fold may raise "cannot compare" on it, so let the
        // generic pipeline reproduce that exactly.
        let is_nan = |k: Option<&Value>| matches!(k, Some(Value::Float(f)) if f.is_nan());
        if is_nan(index.first_key()) || is_nan(index.last_key()) {
            return Ok(None);
        }
        let boundary = if is_min { index.first_key() } else { index.last_key() };
        let v = match boundary {
            // No non-NULL values: the aggregate over them is NULL.
            None => Value::Null,
            Some(v) => resolve_zero_tie(index, v.clone()),
        };
        stats::bump(ctx.stats, |s| s.index_lookups += 1);
        row.push(v);
        names.push(name);
    }
    let rows = if stmt.limit == Some(0) { Vec::new() } else { vec![row] };
    Ok(Some(Relation { columns: names, rows }))
}

/// Pure shape mirror of [`min_max_shortcircuit`]: `true` exactly when that
/// fast path would answer `stmt` (including its NaN-boundary bail-out),
/// with no stats side effects. The `plan:` line of `explain` uses this —
/// the fast path itself is *not* refactored onto it because its bail-out
/// order is observable in `ExecStats` (a NaN bail after the first column
/// has already counted that column's index lookup).
pub(crate) fn min_max_applies(ctx: QueryCtx<'_>, stmt: &SelectStmt) -> bool {
    if stmt.from.len() != 1
        || stmt.distinct
        || stmt.predicate.is_some()
        || !stmt.group_by.is_empty()
        || stmt.having.is_some()
        || !stmt.order_by.is_empty()
        || stmt.projection.is_empty()
    {
        return false;
    }
    let TableSource::Named(table_name) = &stmt.from[0].source else {
        return false;
    };
    let binding = stmt.from[0].binding_name();
    let Ok(tid) = ctx.db.table_id(table_name) else {
        return false;
    };
    let schema = ctx.db.schema(tid);
    stmt.projection.iter().all(|item| {
        let SelectItem::Expr { expr, .. } = item else { return false };
        let Expr::Aggregate { func, arg: Some(arg), .. } = expr else { return false };
        if !matches!(func, AggFunc::Min | AggFunc::Max) {
            return false;
        }
        let Expr::Column { qualifier, name } = arg.as_ref() else { return false };
        match qualifier.as_deref() {
            None => {}
            Some(q) if q == binding => {}
            _ => return false,
        }
        let Ok(col) = schema.column_id(name) else { return false };
        if schema.column_type(col) == DataType::Bool {
            return false;
        }
        let Some(index) = ctx.db.ordered_index(tid, col) else { return false };
        let is_nan = |k: Option<&Value>| matches!(k, Some(Value::Float(f)) if f.is_nan());
        !is_nan(index.first_key()) && !is_nan(index.last_key())
    })
}

/// `-0.0` and `0.0` are distinct index keys but SQL-equal, and the
/// aggregate fold keeps the first-encountered (smallest-handle) value of a
/// tied pair — so when the boundary key is a zero and both zero buckets
/// exist, return the value from the bucket holding the smaller handle.
fn resolve_zero_tie(index: &setrules_storage::OrderedIndex, v: Value) -> Value {
    let Value::Float(f) = v else {
        return v;
    };
    if f != 0.0 {
        return v;
    }
    let neg = index.get(&Value::Float(-0.0)).and_then(|b| b.first());
    let pos = index.get(&Value::Float(0.0)).and_then(|b| b.first());
    match (neg, pos) {
        (Some(hn), Some(hp)) => {
            if hn < hp {
                Value::Float(-0.0)
            } else {
                Value::Float(0.0)
            }
        }
        (Some(_), None) => Value::Float(-0.0),
        _ => Value::Float(0.0),
    }
}

/// Whether an expression contains an aggregate call *at this query level*
/// (aggregates inside subqueries belong to the subquery).
pub fn has_aggregate(e: &Expr) -> bool {
    match e {
        Expr::Aggregate { .. } => true,
        Expr::Literal(_) | Expr::Column { .. } => false,
        Expr::Unary { expr, .. } => has_aggregate(expr),
        Expr::Binary { left, right, .. } => has_aggregate(left) || has_aggregate(right),
        Expr::IsNull { expr, .. } => has_aggregate(expr),
        Expr::InList { expr, list, .. } => has_aggregate(expr) || list.iter().any(has_aggregate),
        Expr::InSubquery { expr, .. } => has_aggregate(expr),
        Expr::Exists { .. } | Expr::ScalarSubquery(_) => false,
        Expr::Between { expr, low, high, .. } => {
            has_aggregate(expr) || has_aggregate(low) || has_aggregate(high)
        }
        Expr::Like { expr, pattern, escape, .. } => {
            has_aggregate(expr)
                || has_aggregate(pattern)
                || escape.as_ref().is_some_and(|e| has_aggregate(e))
        }
    }
}
