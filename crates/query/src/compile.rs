//! Compile-once expression lowering (the tentpole of the compile-once
//! pipeline).
//!
//! The interpreter resolves every column reference by string comparison on
//! every row. [`compile`] performs that resolution *once* per statement
//! against a [`Layout`] — a snapshot of the name-resolution scopes — and
//! lowers the AST into a [`CompiledExpr`] whose column references are
//! `(level, from-item, column)` slots and whose constant subtrees are
//! folded. [`eval_compiled`] then evaluates rows with array indexing
//! instead of hash/string lookups.
//!
//! Compilation **never fails** and never changes semantics:
//!
//! * unresolvable or ambiguous references lower to [`CompiledExpr::Interp`],
//!   so `UnknownColumn` / `AmbiguousColumn` errors still surface lazily at
//!   evaluation time, exactly where the interpreter would raise them (the
//!   subquery-correlation probe in `eval` depends on this);
//! * constant folding only replaces a subtree when its evaluation
//!   *succeeds* — `1 / 0` stays unfolded so the error remains lazy and
//!   `false and 1/0 = 1` still short-circuits to `false`;
//! * aggregates stay interpreted (they evaluate over group context, not
//!   rows).
//!
//! A [`PlanCache`] memoizes compiled forms keyed by AST-node address plus a
//! layout fingerprint; the rule engine keeps one per rule so repeatedly
//! fired rules plan once (ISSUE 2 tentpole 3), invalidating on DDL.

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use setrules_sql::ast::{BinaryOp, Expr, SelectStmt, UnaryOp};
use setrules_storage::Value;

use crate::bindings::{Bindings, Level};
use crate::ctx::QueryCtx;
use crate::error::QueryError;
use crate::eval;

// ----------------------------------------------------------------------
// Layout: the compile-time shadow of a Bindings stack.
// ----------------------------------------------------------------------

/// One `from`-item binding as seen at compile time: its variable name and
/// column names (no row values).
#[derive(Debug, Clone)]
pub struct LayoutFrame {
    /// The table variable (alias, or the base table name).
    pub name: String,
    /// Column names, shared with the scan's frames.
    pub columns: Arc<Vec<String>>,
}

/// The compile-time shape of a [`Bindings`] stack: one level per nested
/// query, innermost last — the same resolution structure `Bindings` walks
/// per row, walked once at compile time instead.
#[derive(Debug, Clone, Default)]
pub struct Layout {
    levels: Vec<Vec<LayoutFrame>>,
}

impl Layout {
    /// An empty layout (constant expressions only).
    pub fn new() -> Self {
        Layout::default()
    }

    /// Enter a query scope: push its frames (innermost last).
    pub fn push_level(&mut self, level: Vec<LayoutFrame>) {
        self.levels.push(level);
    }

    /// A stable fingerprint of the scope shape (frame and column names),
    /// used to guard [`PlanCache`] entries against layout changes for the
    /// same AST node.
    pub fn fingerprint(&self) -> u64 {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.levels.len().hash(&mut h);
        for level in &self.levels {
            level.len().hash(&mut h);
            for f in level {
                f.name.hash(&mut h);
                f.columns.hash(&mut h);
            }
        }
        h.finish()
    }

    /// Resolve a (possibly qualified) column reference the way
    /// [`Bindings::resolve`] would, innermost level first. `Ok` carries
    /// `(level_up, frame, column)` with `level_up = 0` for the innermost
    /// level; `Err(())` means resolution would not produce a value
    /// (unknown or ambiguous) and the reference must stay interpreted.
    fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<(usize, usize, usize), ()> {
        for (up, level) in self.levels.iter().rev().enumerate() {
            match qualifier {
                Some(q) => {
                    let mut matched_var = false;
                    for (fi, frame) in level.iter().enumerate() {
                        if frame.name == q {
                            matched_var = true;
                            if let Some(ci) = frame.columns.iter().position(|c| c == name) {
                                return Ok((up, fi, ci));
                            }
                        }
                    }
                    if matched_var {
                        // Variable exists here but lacks the column:
                        // resolution stops with an error (interpreted).
                        return Err(());
                    }
                }
                None => {
                    let mut found = None;
                    for (fi, frame) in level.iter().enumerate() {
                        if let Some(ci) = frame.columns.iter().position(|c| c == name) {
                            if found.is_some() {
                                return Err(()); // ambiguous — interpreted
                            }
                            found = Some((up, fi, ci));
                        }
                    }
                    if let Some(hit) = found {
                        return Ok(hit);
                    }
                }
            }
        }
        Err(())
    }
}

impl Bindings {
    /// Snapshot the current scope shape for compilation.
    pub fn layout(&self) -> Layout {
        Layout {
            levels: self
                .levels()
                .iter()
                .map(|level| {
                    level
                        .iter()
                        .map(|f| LayoutFrame { name: f.name.clone(), columns: Arc::clone(&f.columns) })
                        .collect()
                })
                .collect(),
        }
    }
}

// ----------------------------------------------------------------------
// CompiledExpr
// ----------------------------------------------------------------------

/// An [`Expr`] lowered for slot-addressed evaluation.
#[derive(Debug, Clone)]
pub enum CompiledExpr {
    /// A literal or folded constant subtree.
    Const(Value),
    /// A resolved column reference: `level_up` scopes above the innermost,
    /// frame `frame` within that level, column `col` within the frame.
    Slot {
        /// Scopes above the innermost level (0 = innermost).
        level_up: usize,
        /// From-item index within the level.
        frame: usize,
        /// Column index within the frame.
        col: usize,
    },
    /// Unary operator over a compiled operand.
    Unary {
        /// The operator.
        op: UnaryOp,
        /// The operand.
        expr: Box<CompiledExpr>,
    },
    /// Binary operator over compiled operands (logical operators keep
    /// their Kleene short-circuit behaviour).
    Binary {
        /// Left operand.
        left: Box<CompiledExpr>,
        /// The operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<CompiledExpr>,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested operand.
        expr: Box<CompiledExpr>,
        /// `IS NOT NULL` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (list…)`.
    InList {
        /// The needle.
        expr: Box<CompiledExpr>,
        /// The haystack expressions.
        list: Vec<CompiledExpr>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `expr [NOT] BETWEEN low AND high`.
    Between {
        /// The tested operand.
        expr: Box<CompiledExpr>,
        /// Lower bound.
        low: Box<CompiledExpr>,
        /// Upper bound.
        high: Box<CompiledExpr>,
        /// `NOT BETWEEN` when true.
        negated: bool,
    },
    /// `expr [NOT] LIKE pattern [ESCAPE c]`.
    Like {
        /// The tested operand.
        expr: Box<CompiledExpr>,
        /// The pattern.
        pattern: Box<CompiledExpr>,
        /// The escape character expression, if given.
        escape: Option<Box<CompiledExpr>>,
        /// `NOT LIKE` when true.
        negated: bool,
    },
    /// `expr [NOT] IN (select …)` — the needle is compiled; the subquery
    /// executes through `run_select` (which compiles its own scope) with
    /// the per-statement uncorrelated-subquery memo intact.
    InSubquery {
        /// The needle.
        expr: Box<CompiledExpr>,
        /// The subquery (owned: the compiled plan may outlive the source
        /// AST borrow, and the memo keys on this node's stable address).
        subquery: Box<SelectStmt>,
        /// `NOT IN` when true.
        negated: bool,
    },
    /// `[NOT] EXISTS (select …)`.
    Exists {
        /// The subquery.
        subquery: Box<SelectStmt>,
        /// `NOT EXISTS` when true.
        negated: bool,
    },
    /// A scalar subquery.
    ScalarSubquery(Box<SelectStmt>),
    /// Fallback to the interpreter: aggregates, and references the layout
    /// cannot resolve (the interpreter raises the proper error, lazily).
    Interp(Expr),
}

impl CompiledExpr {
    /// Whether any node delegates to the interpreter or runs a subquery —
    /// i.e. evaluation may consult state beyond the row slots. Predicate
    /// pushdown requires this to be false.
    pub fn slots_only(&self) -> bool {
        match self {
            CompiledExpr::Const(_) | CompiledExpr::Slot { .. } => true,
            CompiledExpr::Unary { expr, .. } | CompiledExpr::IsNull { expr, .. } => {
                expr.slots_only()
            }
            CompiledExpr::Binary { left, right, .. } => left.slots_only() && right.slots_only(),
            CompiledExpr::InList { expr, list, .. } => {
                expr.slots_only() && list.iter().all(|e| e.slots_only())
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                expr.slots_only() && low.slots_only() && high.slots_only()
            }
            CompiledExpr::Like { expr, pattern, escape, .. } => {
                expr.slots_only()
                    && pattern.slots_only()
                    && escape.as_ref().is_none_or(|e| e.slots_only())
            }
            CompiledExpr::InSubquery { .. }
            | CompiledExpr::Exists { .. }
            | CompiledExpr::ScalarSubquery(_)
            | CompiledExpr::Interp(_) => false,
        }
    }

    /// Visit every resolved slot.
    pub fn for_each_slot(&self, f: &mut impl FnMut(usize, usize, usize)) {
        match self {
            CompiledExpr::Const(_) | CompiledExpr::Interp(_) => {}
            CompiledExpr::Slot { level_up, frame, col } => f(*level_up, *frame, *col),
            CompiledExpr::Unary { expr, .. } | CompiledExpr::IsNull { expr, .. } => {
                expr.for_each_slot(f)
            }
            CompiledExpr::Binary { left, right, .. } => {
                left.for_each_slot(f);
                right.for_each_slot(f);
            }
            CompiledExpr::InList { expr, list, .. } => {
                expr.for_each_slot(f);
                for e in list {
                    e.for_each_slot(f);
                }
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                expr.for_each_slot(f);
                low.for_each_slot(f);
                high.for_each_slot(f);
            }
            CompiledExpr::Like { expr, pattern, escape, .. } => {
                expr.for_each_slot(f);
                pattern.for_each_slot(f);
                if let Some(e) = escape {
                    e.for_each_slot(f);
                }
            }
            CompiledExpr::InSubquery { expr, .. } => expr.for_each_slot(f),
            CompiledExpr::Exists { .. } | CompiledExpr::ScalarSubquery(_) => {}
        }
    }
}

// ----------------------------------------------------------------------
// Compilation
// ----------------------------------------------------------------------

/// Lower `e` against `layout`. Infallible: whatever cannot be resolved or
/// folded stays interpreted, preserving the interpreter's semantics
/// (including its error behaviour) exactly.
pub fn compile(e: &Expr, layout: &Layout) -> CompiledExpr {
    match e {
        Expr::Literal(v) => CompiledExpr::Const(v.clone()),
        Expr::Column { qualifier, name } => match layout.resolve(qualifier.as_deref(), name) {
            Ok((level_up, frame, col)) => CompiledExpr::Slot { level_up, frame, col },
            Err(()) => CompiledExpr::Interp(e.clone()),
        },
        Expr::Unary { op, expr } => {
            fold(CompiledExpr::Unary { op: *op, expr: Box::new(compile(expr, layout)) })
        }
        Expr::Binary { left, op, right } => fold(CompiledExpr::Binary {
            left: Box::new(compile(left, layout)),
            op: *op,
            right: Box::new(compile(right, layout)),
        }),
        Expr::IsNull { expr, negated } => fold(CompiledExpr::IsNull {
            expr: Box::new(compile(expr, layout)),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => fold(CompiledExpr::InList {
            expr: Box::new(compile(expr, layout)),
            list: list.iter().map(|i| compile(i, layout)).collect(),
            negated: *negated,
        }),
        Expr::Between { expr, low, high, negated } => fold(CompiledExpr::Between {
            expr: Box::new(compile(expr, layout)),
            low: Box::new(compile(low, layout)),
            high: Box::new(compile(high, layout)),
            negated: *negated,
        }),
        Expr::Like { expr, pattern, escape, negated } => fold(CompiledExpr::Like {
            expr: Box::new(compile(expr, layout)),
            pattern: Box::new(compile(pattern, layout)),
            escape: escape.as_ref().map(|e| Box::new(compile(e, layout))),
            negated: *negated,
        }),
        Expr::InSubquery { expr, subquery, negated } => CompiledExpr::InSubquery {
            expr: Box::new(compile(expr, layout)),
            subquery: subquery.clone(),
            negated: *negated,
        },
        Expr::Exists { subquery, negated } => {
            CompiledExpr::Exists { subquery: subquery.clone(), negated: *negated }
        }
        Expr::ScalarSubquery(s) => CompiledExpr::ScalarSubquery(s.clone()),
        // Aggregates evaluate over group context; stay interpreted.
        Expr::Aggregate { .. } => CompiledExpr::Interp(e.clone()),
    }
}

/// Constant-fold a freshly built node: when every child is `Const` and the
/// node evaluates *successfully* with no scope at all, replace it with the
/// result. Failed evaluation (e.g. `1 / 0`) keeps the node so the error
/// stays lazy, exactly like the interpreter.
fn fold(node: CompiledExpr) -> CompiledExpr {
    fn all_const(node: &CompiledExpr) -> bool {
        match node {
            CompiledExpr::Unary { expr, .. } | CompiledExpr::IsNull { expr, .. } => {
                matches!(**expr, CompiledExpr::Const(_))
            }
            CompiledExpr::Binary { left, right, .. } => {
                matches!(**left, CompiledExpr::Const(_))
                    && matches!(**right, CompiledExpr::Const(_))
            }
            CompiledExpr::InList { expr, list, .. } => {
                matches!(**expr, CompiledExpr::Const(_))
                    && list.iter().all(|e| matches!(e, CompiledExpr::Const(_)))
            }
            CompiledExpr::Between { expr, low, high, .. } => {
                matches!(**expr, CompiledExpr::Const(_))
                    && matches!(**low, CompiledExpr::Const(_))
                    && matches!(**high, CompiledExpr::Const(_))
            }
            CompiledExpr::Like { expr, pattern, escape, .. } => {
                matches!(**expr, CompiledExpr::Const(_))
                    && matches!(**pattern, CompiledExpr::Const(_))
                    && escape.as_ref().is_none_or(|e| matches!(**e, CompiledExpr::Const(_)))
            }
            _ => false,
        }
    }
    if !all_const(&node) {
        return node;
    }
    // Constant nodes never touch the database, bindings, or stats; an
    // empty context is sufficient.
    let db = setrules_storage::Database::new();
    let ctx = QueryCtx::plain(&db);
    match eval_compiled(ctx, &mut Bindings::new(), None, &node) {
        Ok(v) => CompiledExpr::Const(v),
        Err(_) => node,
    }
}

// ----------------------------------------------------------------------
// Evaluation
// ----------------------------------------------------------------------

/// Evaluate a compiled expression. The innermost level of `bindings` must
/// have the shape of the [`Layout`] the expression was compiled against.
pub fn eval_compiled(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    group: Option<&[Level]>,
    e: &CompiledExpr,
) -> Result<Value, QueryError> {
    match e {
        CompiledExpr::Const(v) => Ok(v.clone()),
        CompiledExpr::Slot { level_up, frame, col } => bindings.slot(*level_up, *frame, *col),
        CompiledExpr::Unary { op, expr } => {
            let v = eval_compiled(ctx, bindings, group, expr)?;
            eval::apply_unary(*op, &v)
        }
        CompiledExpr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                let l = eval::truth(&eval_compiled(ctx, bindings, group, left)?)?;
                match (op, l) {
                    (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                    (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = eval::truth(&eval_compiled(ctx, bindings, group, right)?)?;
                let out = match op {
                    BinaryOp::And => eval::kleene_and(l, r),
                    _ => eval::kleene_or(l, r),
                };
                return Ok(out.map_or(Value::Null, Value::Bool));
            }
            let l = eval_compiled(ctx, bindings, group, left)?;
            let r = eval_compiled(ctx, bindings, group, right)?;
            eval::apply_binary(&l, *op, &r)
        }
        CompiledExpr::IsNull { expr, negated } => {
            let v = eval_compiled(ctx, bindings, group, expr)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        CompiledExpr::InList { expr, list, negated } => {
            let needle = eval_compiled(ctx, bindings, group, expr)?;
            let mut vals = Vec::with_capacity(list.len());
            for item in list {
                vals.push(eval_compiled(ctx, bindings, group, item)?);
            }
            eval::in_semantics(&needle, vals.iter(), *negated)
        }
        CompiledExpr::Between { expr, low, high, negated } => {
            let v = eval_compiled(ctx, bindings, group, expr)?;
            let lo = eval_compiled(ctx, bindings, group, low)?;
            let hi = eval_compiled(ctx, bindings, group, high)?;
            eval::between_semantics(&v, &lo, &hi, *negated)
        }
        CompiledExpr::Like { expr, pattern, escape, negated } => {
            let v = eval_compiled(ctx, bindings, group, expr)?;
            let p = eval_compiled(ctx, bindings, group, pattern)?;
            let e = match escape {
                Some(ex) => Some(eval_compiled(ctx, bindings, group, ex)?),
                None => None,
            };
            eval::like_semantics(&v, &p, e.as_ref(), *negated)
        }
        CompiledExpr::InSubquery { expr, subquery, negated } => {
            let needle = eval_compiled(ctx, bindings, group, expr)?;
            let rel = eval::eval_subquery(ctx, bindings, subquery)?;
            if rel.columns.len() != 1 {
                return Err(QueryError::SubqueryColumns(rel.columns.len()));
            }
            eval::in_semantics(&needle, rel.column0(), *negated)
        }
        CompiledExpr::Exists { subquery, negated } => {
            let rel = eval::eval_subquery(ctx, bindings, subquery)?;
            Ok(Value::Bool(rel.is_empty() == *negated))
        }
        CompiledExpr::ScalarSubquery(subquery) => {
            let rel = eval::eval_subquery(ctx, bindings, subquery)?;
            if rel.columns.len() != 1 {
                return Err(QueryError::SubqueryColumns(rel.columns.len()));
            }
            match rel.rows.len() {
                0 => Ok(Value::Null),
                1 => Ok(rel.rows[0][0].clone()),
                n => Err(QueryError::ScalarSubqueryRows(n)),
            }
        }
        CompiledExpr::Interp(src) => eval::eval_expr(ctx, bindings, group, src),
    }
}

/// Evaluate a compiled predicate; a row qualifies only when the result is
/// *true* (SQL `where` semantics).
pub fn eval_compiled_predicate(
    ctx: QueryCtx<'_>,
    bindings: &mut Bindings,
    group: Option<&[Level]>,
    e: &CompiledExpr,
) -> Result<bool, QueryError> {
    let v = eval_compiled(ctx, bindings, group, e)?;
    Ok(eval::truth(&v)? == Some(true))
}

// ----------------------------------------------------------------------
// Plan cache
// ----------------------------------------------------------------------

/// Memo of compiled expressions keyed by AST-node address plus layout
/// fingerprint. The address key requires the source AST to be stable for
/// the cache's lifetime; holders (the rule engine keeps one per rule) must
/// discard the cache whenever the AST or the catalog can change (any DDL).
#[derive(Debug, Default)]
pub struct PlanCache {
    entries: RefCell<HashMap<(usize, u64), Arc<CompiledExpr>>>,
    hits: Cell<u64>,
    misses: Cell<u64>,
    /// Incremental-evaluation state for the rule condition this cache
    /// belongs to (tentpole of ISSUE 7): the one-time shape analysis and,
    /// when incrementalizable, the materialized per-term match sets. It
    /// lives here because its lifetime rules are exactly the plan
    /// cache's — any DDL discards the whole cache, analysis and memo
    /// included.
    incr: RefCell<Option<crate::incremental::IncrState>>,
}

impl PlanCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Mutable access to the incremental-evaluation state slot (`None`
    /// until the engine first analyzes the rule's condition).
    pub fn incr_state(&self) -> std::cell::RefMut<'_, Option<crate::incremental::IncrState>> {
        self.incr.borrow_mut()
    }

    /// Number of cached plans.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.borrow().is_empty()
    }

    /// `(hits, misses)` since creation.
    pub fn counters(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

/// Compile `e` against `layout`, consulting the context's [`PlanCache`]
/// when one is attached (keyed by `e`'s address and the layout
/// fingerprint).
pub fn compile_cached(ctx: QueryCtx<'_>, e: &Expr, layout: &Layout) -> Arc<CompiledExpr> {
    let Some(cache) = ctx.plans else {
        return Arc::new(compile(e, layout));
    };
    let key = (e as *const Expr as usize, layout.fingerprint());
    if let Some(hit) = cache.entries.borrow().get(&key) {
        cache.hits.set(cache.hits.get() + 1);
        return Arc::clone(hit);
    }
    cache.misses.set(cache.misses.get() + 1);
    let compiled = Arc::new(compile(e, layout));
    cache.entries.borrow_mut().insert(key, Arc::clone(&compiled));
    compiled
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_sql::parse_expr;
    use setrules_storage::Database;

    fn layout(frames: &[(&str, &[&str])]) -> Layout {
        let mut l = Layout::new();
        l.push_level(
            frames
                .iter()
                .map(|(n, cols)| LayoutFrame {
                    name: n.to_string(),
                    columns: Arc::new(cols.iter().map(|c| c.to_string()).collect()),
                })
                .collect(),
        );
        l
    }

    fn compile_str(src: &str, l: &Layout) -> CompiledExpr {
        compile(&parse_expr(src).unwrap(), l)
    }

    #[test]
    fn columns_lower_to_slots() {
        let l = layout(&[("emp", &["name", "salary"]), ("dept", &["dept_no"])]);
        match compile_str("salary", &l) {
            CompiledExpr::Slot { level_up: 0, frame: 0, col: 1 } => {}
            other => panic!("{other:?}"),
        }
        match compile_str("dept.dept_no", &l) {
            CompiledExpr::Slot { level_up: 0, frame: 1, col: 0 } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn ambiguous_and_unknown_stay_interpreted() {
        let l = layout(&[("e1", &["dept_no"]), ("e2", &["dept_no"])]);
        assert!(matches!(compile_str("dept_no", &l), CompiledExpr::Interp(_)));
        assert!(matches!(compile_str("bogus", &l), CompiledExpr::Interp(_)));
        // Qualified match with a missing column stops resolution (same as
        // Bindings::resolve) — interpreted so the error stays.
        assert!(matches!(compile_str("e1.bogus", &l), CompiledExpr::Interp(_)));
    }

    #[test]
    fn outer_scope_references_resolve_upward() {
        let mut l = layout(&[("e1", &["dept_no"])]);
        l.push_level(vec![LayoutFrame {
            name: "e2".into(),
            columns: Arc::new(vec!["dept_no".into()]),
        }]);
        match compile(&parse_expr("e1.dept_no").unwrap(), &l) {
            CompiledExpr::Slot { level_up: 1, frame: 0, col: 0 } => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn constants_fold_once() {
        let l = Layout::new();
        match compile_str("1 + 2 * 3", &l) {
            CompiledExpr::Const(Value::Int(7)) => {}
            other => panic!("{other:?}"),
        }
        match compile_str("2 in (1, 2)", &l) {
            CompiledExpr::Const(Value::Bool(true)) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn failing_constants_stay_lazy() {
        let l = Layout::new();
        // 1/0 must not fold (the error must stay lazy)…
        assert!(matches!(compile_str("1 / 0", &l), CompiledExpr::Binary { .. }));
        // …so short-circuiting still protects it at evaluation time.
        let db = Database::new();
        let ctx = QueryCtx::plain(&db);
        let c = compile_str("false and 1 / 0 = 1", &l);
        assert_eq!(
            eval_compiled(ctx, &mut Bindings::new(), None, &c).unwrap(),
            Value::Bool(false)
        );
        let c = compile_str("1 / 0 = 1", &l);
        assert_eq!(
            eval_compiled(ctx, &mut Bindings::new(), None, &c),
            Err(QueryError::DivisionByZero)
        );
    }

    #[test]
    fn compiled_agrees_with_interpreter_on_rows() {
        use crate::bindings::Frame;
        let db = Database::new();
        let ctx = QueryCtx::plain(&db);
        let cols = Arc::new(vec!["a".to_string(), "b".to_string()]);
        let l = layout(&[("t", &["a", "b"])]);
        let exprs = [
            "a + b * 2",
            "a < b and b < 100",
            "a between 1 and b",
            "a in (1, 2, b)",
            "a is not null",
            "not (a = b) or a % 2 = 0",
        ];
        for src in exprs {
            let e = parse_expr(src).unwrap();
            let c = compile(&e, &l);
            for (a, b) in [(1i64, 2i64), (5, 3), (2, 2)] {
                let mut bs = Bindings::new();
                bs.push_level(vec![Frame {
                    name: "t".into(),
                    columns: Arc::clone(&cols),
                    row: vec![Value::Int(a), Value::Int(b)],
                }]);
                let interp = eval::eval_expr(ctx, &mut bs, None, &e).unwrap();
                let compiled = eval_compiled(ctx, &mut bs, None, &c).unwrap();
                assert_eq!(interp, compiled, "{src} with a={a} b={b}");
            }
        }
    }

    #[test]
    fn plan_cache_hits_on_reuse_and_respects_layout() {
        let e = parse_expr("salary > 100").unwrap();
        let cache = PlanCache::new();
        let db = Database::new();
        let ctx = QueryCtx::plain(&db).with_plans(Some(&cache));
        let l1 = layout(&[("emp", &["name", "salary"])]);
        let l2 = layout(&[("emp", &["salary", "name"])]);
        let c1 = compile_cached(ctx, &e, &l1);
        let c2 = compile_cached(ctx, &e, &l1);
        assert!(Arc::ptr_eq(&c1, &c2));
        // Different layout, same node: a distinct entry (not a false hit).
        let c3 = compile_cached(ctx, &e, &l2);
        assert!(!Arc::ptr_eq(&c1, &c3));
        assert_eq!(cache.counters(), (1, 2));
        assert_eq!(cache.len(), 2);
    }
}
