//! The scan operators: one per `from` item.
//!
//! A [`ScanExec`] materializes its item at open — stored tables through
//! the chosen [`Access`] path, transition tables through the context's
//! provider — filtering through the conjuncts the planner pushed down to
//! it, then emits [`ScanRow`] batches. Its display name tracks the access
//! path (`seq-scan`, `index-scan`, `index-range-scan`, `empty-scan`,
//! `transition-scan`).
//!
//! This operator is also the parallel scan: with a thread budget, a
//! big-enough stored-table scan whose pushed conjuncts are all row-local
//! plans an [`Exchange`] over its handle vector and concatenates the
//! kept rows in partition order — exactly the serial handle-order walk
//! (see [`crate::exec::exchange`] for the determinism argument).

use std::sync::Arc;

use setrules_sql::ast::TransitionKind;
use setrules_storage::{DataType, TableId, TupleHandle, Value};

use crate::bindings::Frame;
use crate::compile::{eval_compiled_predicate, CompiledExpr};
use crate::error::QueryError;
use crate::parallel;
use crate::planner::{scan_handles, Access};
use crate::stats;

use super::exchange::Exchange;
use super::{Batches, ExecCx, Executor};

/// One scanned row: its origin (stored tuples only) and field values.
pub(crate) type ScanRow = (Option<(TableId, TupleHandle)>, Vec<Value>);

/// A fully materialized `from` item, as the join and everything above it
/// sees it: the binding name, column metadata, and the scanned rows.
pub(crate) struct FromItem {
    pub(crate) binding: String,
    pub(crate) columns: Arc<Vec<String>>,
    pub(crate) types: Vec<DataType>,
    pub(crate) rows: Vec<ScanRow>,
}

/// Where a [`ScanExec`] reads from.
pub(crate) enum ScanSource<'q> {
    /// A stored table through its chosen access path.
    Named {
        /// The table being scanned.
        tid: TableId,
        /// The access path the planner selected.
        access: Access,
    },
    /// A transition table served by the context's provider.
    Transition {
        /// Which transition table.
        kind: TransitionKind,
        /// The underlying stored table.
        table: &'q str,
        /// Restrict to tuples whose column was updated/selected.
        column: Option<&'q str>,
    },
}

/// The display name a scan over `access` gets (also used by the `plan:`
/// explain line).
pub(crate) fn access_op_name(access: &Access) -> &'static str {
    match access {
        Access::FullScan => "seq-scan",
        Access::IndexEq { .. } | Access::IndexIn { .. } => "index-scan",
        Access::IndexRange { .. } => "index-range-scan",
        Access::Empty => "empty-scan",
    }
}

/// The leaf operator: materializes one `from` item at open (filtering
/// through its pushed-down conjuncts, in parallel when eligible) and
/// emits it as [`ScanRow`] batches.
pub(crate) struct ScanExec<'q> {
    pub(crate) binding: String,
    pub(crate) columns: Arc<Vec<String>>,
    pub(crate) types: Vec<DataType>,
    source: ScanSource<'q>,
    /// Single-item conjuncts the planner pushed down to this scan.
    conjs: Vec<CompiledExpr>,
    name: &'static str,
    batch_rows: usize,
    state: Option<Batches<ScanRow>>,
}

impl<'q> ScanExec<'q> {
    pub(crate) fn new(
        binding: String,
        columns: Arc<Vec<String>>,
        types: Vec<DataType>,
        source: ScanSource<'q>,
        conjs: Vec<CompiledExpr>,
    ) -> Self {
        let name = match &source {
            ScanSource::Named { access, .. } => access_op_name(access),
            ScanSource::Transition { .. } => "transition-scan",
        };
        ScanExec {
            binding,
            columns,
            types,
            source,
            conjs,
            name,
            batch_rows: super::BATCH_ROWS,
            state: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// Materialize the item, filtering through the pushed conjuncts. This
    /// is the historical scan phase moved wholesale: every stats bump,
    /// parallel-eligibility gate, and drop-only-on-definite-`Ok(false)`
    /// rule is unchanged.
    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Vec<ScanRow>, QueryError> {
        let ctx = cx.ctx;
        let conjs = &self.conjs;
        let mut prefiltered = false;
        let mut rows: Vec<ScanRow> = match &self.source {
            ScanSource::Named { tid, access } => {
                stats::bump(ctx.stats, |s| match access {
                    Access::FullScan => s.full_scans += 1,
                    Access::IndexEq { .. } | Access::IndexIn { .. } => s.index_lookups += 1,
                    Access::IndexRange { .. } => s.range_scans += 1,
                    Access::Empty => s.empty_scans += 1,
                });
                let handles = scan_handles(ctx.db, *tid, access);
                if matches!(access, Access::IndexRange { .. }) {
                    let skipped = (ctx.db.table(*tid).len() - handles.len()) as u64;
                    stats::bump(ctx.stats, |s| s.range_rows_skipped += skipped);
                }
                stats::bump(ctx.stats, |s| s.rows_scanned += handles.len() as u64);
                let ex = Exchange::plan(ctx, handles.len());
                let rowlocal = conjs.iter().all(parallel::is_rowlocal);
                if let (Some(ex), true) = (&ex, rowlocal) {
                    prefiltered = true;
                    let db = ctx.db;
                    let tid = *tid;
                    let handles = &handles;
                    let chunks = ex.run(ctx, |range| {
                        let mut kept: Vec<ScanRow> = Vec::with_capacity(range.end - range.start);
                        let mut dropped = 0u64;
                        for &h in &handles[range] {
                            let t = db.get(tid, h).expect("scanned handle is live");
                            // Drop only on a definite non-`true` (the
                            // same rule as the serial path below).
                            let keep = conjs.iter().all(|cc| {
                                !matches!(
                                    parallel::eval_rowlocal_predicate(cc, &[t.0.as_slice()]),
                                    Ok(false)
                                )
                            });
                            if keep {
                                kept.push((Some((tid, h)), t.0.clone()));
                            } else {
                                dropped += 1;
                            }
                        }
                        (kept, dropped)
                    });
                    let dropped: u64 = chunks.iter().map(|(_, d)| *d).sum();
                    stats::bump(ctx.stats, |s| s.pushdown_filtered += dropped);
                    let mut merged = Vec::with_capacity(chunks.iter().map(|(k, _)| k.len()).sum());
                    for (kept, _) in chunks {
                        merged.extend(kept);
                    }
                    merged
                } else {
                    if ex.is_some() && !conjs.is_empty() {
                        Exchange::serial_fallback(ctx);
                    }
                    handles
                        .into_iter()
                        .map(|h| {
                            let t = ctx.db.get(*tid, h).expect("scanned handle is live");
                            (Some((*tid, h)), t.0.clone())
                        })
                        .collect()
                }
            }
            ScanSource::Transition { kind, table, column } => {
                let lent = ctx.virt.rows(ctx.db, *kind, table, *column)?;
                stats::bump(ctx.stats, |s| s.rows_scanned += lent.len() as u64);
                if !conjs.is_empty() && conjs.iter().all(parallel::is_rowlocal) {
                    // Filter the borrowed rows first so only survivors are
                    // ever cloned into owned scan rows. Drop only on a
                    // definite non-`true` (same rule as the serial filter
                    // below — errors defer to the full predicate).
                    prefiltered = true;
                    let mut kept: Vec<ScanRow> = Vec::new();
                    let mut dropped = 0u64;
                    for vals in lent {
                        let keep = conjs.iter().all(|cc| {
                            !matches!(
                                parallel::eval_rowlocal_predicate(cc, &[vals.as_ref()]),
                                Ok(false)
                            )
                        });
                        if keep {
                            kept.push((None, vals.into_owned()));
                        } else {
                            dropped += 1;
                        }
                    }
                    stats::bump(ctx.stats, |s| s.pushdown_filtered += dropped);
                    kept
                } else {
                    lent.into_iter().map(|vals| (None, vals.into_owned())).collect()
                }
            }
        };
        if !prefiltered && !conjs.is_empty() {
            let mut kept = Vec::with_capacity(rows.len());
            for row in rows {
                cx.bindings.push_level(vec![Frame {
                    name: self.binding.clone(),
                    columns: Arc::clone(&self.columns),
                    row: row.1.clone(),
                }]);
                let mut keep = true;
                for cc in conjs {
                    // Drop only on a definite non-`true`; keep on error so
                    // the full predicate raises it (or a hash step shows
                    // the combination never forms, as the historical
                    // 2-way hash path already allowed).
                    if matches!(eval_compiled_predicate(ctx, cx.bindings, None, cc), Ok(false)) {
                        keep = false;
                        break;
                    }
                }
                cx.bindings.pop_level();
                if keep {
                    kept.push(row);
                } else {
                    stats::bump(ctx.stats, |s| s.pushdown_filtered += 1);
                }
            }
            rows = kept;
        }
        Ok(rows)
    }
}

impl Executor for ScanExec<'_> {
    type Batch = Vec<ScanRow>;

    fn name(&self) -> &'static str {
        self.name
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let rows = self.open(cx)?;
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}
