//! The exchange operator: partitioned execution, expressed once.
//!
//! Every parallel phase of the executor — partitioned scans and
//! identification scans, hash-join build/probe, the WHERE pass, the
//! partial-aggregation phase, distinct dedup, sorting, and top-K
//! selection — goes through [`Exchange`]. The operator owns the three
//! things PR 5 used to hand-thread at every call site:
//!
//! 1. **Gating.** [`Exchange::plan`] admits a phase only when the thread
//!    budget exceeds 1 and the phase has at least
//!    [`parallel::PAR_THRESHOLD`] items. With `MIN_CHUNK = 16` that
//!    guarantees at least two partitions, so a planned exchange always
//!    actually fans out. Row-locality gating stays with the caller (only
//!    it knows which expressions cross threads); when a big-enough phase
//!    is refused for that reason, [`Exchange::serial_fallback`] makes the
//!    refusal observable.
//! 2. **Partitioned dispatch.** [`Exchange::run`] splits `0..n` into
//!    contiguous ranges of the serial iteration order on the process-wide
//!    [`setrules_exec::WorkerPool`] and returns per-partition results in
//!    partition order, bumping `parallel_scans` / `parallel_partitions`
//!    and recording the per-partition row flow on the `"exchange"`
//!    operator-stats row.
//! 3. **Deterministic merge.** [`Exchange::judge`] runs a per-item
//!    verdict function and returns [`ChunkOutput`]s: each partition stops
//!    at its first error, and the caller merges in partition order,
//!    keeping the kept items and counters of everything that serially
//!    precedes the *earliest* error — so results, error selection, and
//!    row-level statistics are bit-identical to the serial left-to-right
//!    walk (see `docs/parallel-execution.md` for the full argument).
//!
//! Workers never see a [`QueryCtx`] (its caches are single-threaded
//! interior mutability); they receive only `Sync` data — the frozen
//! database, compiled row-local expressions, and value slices.

use std::ops::Range;

use crate::ctx::QueryCtx;
use crate::error::QueryError;
use crate::parallel;
use crate::stats;

/// A planned partitioned phase: `0..n` split across `threads` partitions.
/// Existence proves the gate passed (so the phase *will* fan out).
pub(crate) struct Exchange {
    n: usize,
    threads: usize,
}

impl Exchange {
    /// Gate a phase of `n` items: `Some` only when the context's thread
    /// budget exceeds 1 and `n` reaches [`parallel::PAR_THRESHOLD`].
    /// Every golden paper example stays below the threshold and therefore
    /// on the exact serial path.
    pub(crate) fn plan(ctx: QueryCtx<'_>, n: usize) -> Option<Exchange> {
        if ctx.threads > 1 && n >= parallel::PAR_THRESHOLD {
            Some(Exchange { n, threads: ctx.threads })
        } else {
            None
        }
    }

    /// Record that a phase big enough to exchange stayed serial because
    /// its expressions are not row-local — the observable counterpart of
    /// a refused [`Exchange::plan`].
    pub(crate) fn serial_fallback(ctx: QueryCtx<'_>) {
        stats::bump(ctx.stats, |s| s.serial_fallbacks += 1);
    }

    /// Run `work` over contiguous partitions of `0..n` and return the
    /// per-partition results **in partition order** (the first partition
    /// runs inline on the caller; the rest on pool workers).
    pub(crate) fn run<R: Send>(
        &self,
        ctx: QueryCtx<'_>,
        work: impl Fn(Range<usize>) -> R + Sync,
    ) -> Vec<R> {
        let results =
            parallel::pool().run_chunked(self.n, self.threads, parallel::MIN_CHUNK, work);
        let parts = results.len();
        if parts > 1 {
            stats::bump(ctx.stats, |s| {
                s.parallel_scans += 1;
                s.parallel_partitions += parts as u64;
            });
        }
        if let Some(ops) = ctx.op_stats {
            // One batch per partition, sized by that partition's range —
            // the "rows per partition" view of the fan-out.
            ops.rows_in("exchange", self.n);
            for r in setrules_exec::partition_ranges(self.n, self.threads, parallel::MIN_CHUNK) {
                ops.batch_out("exchange", r.len());
            }
        }
        results
    }

    /// Run a per-item judge over the partitions: each partition evaluates
    /// its range in order, maps kept items through `Ok(Some(t))`, and
    /// stops at its first error. The caller merges the returned
    /// [`ChunkOutput`]s in partition order.
    pub(crate) fn judge<T: Send>(
        &self,
        ctx: QueryCtx<'_>,
        judge: impl Fn(usize) -> Result<Option<T>, QueryError> + Sync,
    ) -> Vec<ChunkOutput<T>> {
        self.run(ctx, |range| {
            let mut out =
                ChunkOutput { kept: Vec::new(), combos: 0, matched: 0, err: None };
            for i in range {
                out.combos += 1;
                match judge(i) {
                    Ok(Some(t)) => {
                        out.matched += 1;
                        out.kept.push(t);
                    }
                    Ok(None) => {}
                    Err(e) => {
                        out.err = Some(e);
                        break;
                    }
                }
            }
            out
        })
    }
}

/// Per-partition outcome of an [`Exchange::judge`] pass.
pub(crate) struct ChunkOutput<T> {
    /// The kept items, in the partition's (ascending-index) order.
    pub kept: Vec<T>,
    /// Items this partition evaluated (the erroring one included,
    /// matching the serial bump-before-eval order).
    pub combos: u64,
    /// Items that qualified.
    pub matched: u64,
    /// First error in this partition's range, if any; evaluation of the
    /// range stops there.
    pub err: Option<QueryError>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use setrules_storage::Database;

    fn ctx_with_threads(db: &Database, threads: usize) -> QueryCtx<'_> {
        QueryCtx::plain(db).with_threads(threads)
    }

    #[test]
    fn plan_gates_on_threads_and_size() {
        let db = Database::new();
        assert!(Exchange::plan(ctx_with_threads(&db, 1), 1000).is_none());
        assert!(Exchange::plan(ctx_with_threads(&db, 8), 63).is_none());
        let ex = Exchange::plan(ctx_with_threads(&db, 8), 64).expect("gate passes");
        // A planned exchange always fans out: 64 items at MIN_CHUNK=16
        // yield at least two partitions for any budget >= 2.
        let parts = ex.run(ctx_with_threads(&db, 8), |r| r.len());
        assert!(parts.len() > 1, "{parts:?}");
        assert_eq!(parts.iter().sum::<usize>(), 64);
    }

    #[test]
    fn judge_merges_in_order() {
        let db = Database::new();
        let ex = Exchange::plan(ctx_with_threads(&db, 8), 1000).unwrap();
        let verdicts =
            ex.judge(ctx_with_threads(&db, 8), |i| Ok((i % 3 == 0).then_some(i)));
        assert!(verdicts.len() > 1);
        let mut kept = Vec::new();
        let mut combos = 0;
        for v in verdicts {
            assert!(v.err.is_none());
            combos += v.combos;
            kept.extend(v.kept);
        }
        assert_eq!(combos, 1000);
        let expected: Vec<usize> = (0..1000).filter(|i| i % 3 == 0).collect();
        assert_eq!(kept, expected);
    }

    #[test]
    fn judge_partitions_stop_at_their_first_error() {
        let db = Database::new();
        let ex = Exchange::plan(ctx_with_threads(&db, 8), 256).unwrap();
        let verdicts = ex.judge::<usize>(ctx_with_threads(&db, 8), |i| {
            if i % 100 == 7 {
                Err(QueryError::DivisionByZero)
            } else {
                Ok(Some(i))
            }
        });
        // Merge the way callers do: counters and kept items up to the
        // earliest error, then stop.
        let mut kept = Vec::new();
        let mut err = None;
        for v in verdicts {
            kept.extend(v.kept);
            if let Some(e) = v.err {
                err = Some(e);
                break;
            }
        }
        assert_eq!(err, Some(QueryError::DivisionByZero));
        // The serial walk errors at index 7: indices 0..=6 were kept.
        assert_eq!(kept, vec![0, 1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn exchange_records_op_stats_rows() {
        let db = Database::new();
        let ops = crate::stats::OpStatsCell::new();
        let ctx = QueryCtx::plain(&db).with_threads(8).with_op_stats(Some(&ops));
        let ex = Exchange::plan(ctx, 100).unwrap();
        let parts = ex.run(ctx, |r| r.len());
        let c = ops.get("exchange");
        assert_eq!(c.rows_in, 100);
        assert_eq!(c.batches as usize, parts.len());
        assert_eq!(c.rows_out, 100, "partition sizes cover the input");
    }
}
