//! The order-sensitive tail operators: `distinct`, `sort`/`topk`, and
//! `limit`. Each wraps a boxed [`RowSource`] (project or aggregate, or
//! another tail operator) and is itself a [`RowSource`], so the driver
//! stacks them conditionally.
//!
//! All three are blocking: `distinct` needs the full set to deduplicate
//! in first-occurrence order, `sort` needs it to sort, and `limit` must
//! drain its child fully even past the cutoff so a projection error on a
//! row beyond the limit still surfaces (the historical pipeline projected
//! every row before truncating).
//!
//! Big-enough inputs partition on the pool through the
//! [`exchange`](super::exchange) operator — these stages compare values
//! only, so no row-locality gate applies:
//!
//! * `distinct` — each partition keeps its *local* first-occurrence
//!   indices (a sound superset of the global survivors: a row that is not
//!   even first in its own partition cannot be first overall); the merge
//!   walks the candidates in partition order — ascending input order —
//!   through one global set, reproducing the serial first-occurrence
//!   scan.
//! * `sort` — each partition sorts its range by `(key, input index)`;
//!   the index tiebreak makes the comparator a total order, so the k-way
//!   merge of the runs *is* the stable sort of the whole input.
//! * `topk` — each partition selects its own top K under the same total
//!   order (every global top-K row is in its partition's top K), then
//!   the ≤ partitions·K candidates go through the serial selection.

use std::cmp::Ordering;
use std::collections::HashSet;

use setrules_sql::ast::Expr;
use setrules_storage::{TableId, TupleHandle, Value};

use crate::error::QueryError;
use crate::stats;

use super::exchange::Exchange;
use super::{Batches, ExecCx, Executor, KeyedRow, RowSource};

/// Drain a boxed child fully, charging the rows to `name`'s input side.
fn drain(
    child: &mut Box<dyn RowSource + '_>,
    name: &'static str,
    cx: &mut ExecCx<'_, '_>,
) -> Result<Vec<KeyedRow>, QueryError> {
    let mut rows: Vec<KeyedRow> = Vec::new();
    while let Some(batch) = child.next_batch(cx)? {
        cx.rows_in(name, batch.len());
        rows.extend(batch);
    }
    Ok(rows)
}

/// `select distinct`: keep the first occurrence of each output row, in
/// input order.
pub(crate) struct DistinctExec<'q> {
    child: Box<dyn RowSource + 'q>,
    state: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> DistinctExec<'q> {
    pub(crate) fn new(child: Box<dyn RowSource + 'q>) -> Self {
        DistinctExec { child, state: None, batch_rows: super::BATCH_ROWS }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }
}

impl Executor for DistinctExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "distinct"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let rows = drain(&mut self.child, "distinct", cx)?;
            // Dedup on the projected row (not the sort key) with borrowed
            // slices, then retain by mask so survivors keep input order.
            let mask: Vec<bool> = if let Some(ex) = Exchange::plan(cx.ctx, rows.len()) {
                // Each partition's local first occurrences, merged in
                // partition order through one global set: candidate
                // indices arrive in ascending input order, so the global
                // survivor set is exactly the serial one.
                let rows_ref = &rows;
                let locals: Vec<Vec<usize>> = ex.run(cx.ctx, |range| {
                    let mut local: HashSet<&[Value]> = HashSet::new();
                    range.filter(|&i| local.insert(rows_ref[i].1.as_slice())).collect()
                });
                let mut seen: HashSet<&[Value]> = HashSet::new();
                let mut mask = vec![false; rows.len()];
                for i in locals.into_iter().flatten() {
                    if seen.insert(rows[i].1.as_slice()) {
                        mask[i] = true;
                    }
                }
                mask
            } else {
                let mut seen: HashSet<&[Value]> = HashSet::with_capacity(rows.len());
                rows.iter().map(|(_, row)| seen.insert(row.as_slice())).collect()
            };
            let mut it = mask.into_iter();
            let mut rows = rows;
            rows.retain(|_| it.next().expect("mask matches rows"));
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}

impl RowSource for DistinctExec<'_> {
    fn output_columns(&self) -> &[String] {
        self.child.output_columns()
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.child.take_origins()
    }
}

/// Reassemble the rows selected by `order`, moving each out of `rows`
/// exactly once (no per-row clone).
fn take_rows(rows: Vec<KeyedRow>, order: &[usize]) -> Vec<KeyedRow> {
    let mut slots: Vec<Option<KeyedRow>> = rows.into_iter().map(Some).collect();
    order.iter().map(|&i| slots[i].take().expect("indices are unique")).collect()
}

/// K-way merge of per-partition index runs under a total order: emit the
/// smallest head until every run drains. Runs are few (at most the
/// thread budget), so a linear scan per element beats a heap's constant
/// factor here.
fn merge_runs(runs: Vec<Vec<usize>>, cmp: impl Fn(usize, usize) -> Ordering) -> Vec<usize> {
    let total: usize = runs.iter().map(Vec::len).sum();
    let mut heads = vec![0usize; runs.len()];
    let mut order = Vec::with_capacity(total);
    for _ in 0..total {
        let mut best: Option<(usize, usize)> = None; // (run, head index value)
        for (r, run) in runs.iter().enumerate() {
            if let Some(&i) = run.get(heads[r]) {
                let better = match best {
                    None => true,
                    Some((_, b)) => cmp(i, b) == Ordering::Less,
                };
                if better {
                    best = Some((r, i));
                }
            }
        }
        let (r, i) = best.expect("total counts the remaining heads");
        heads[r] += 1;
        order.push(i);
    }
    order
}

/// Compare two order-by key vectors under the statement's `asc`/`desc`
/// flags. NULL sorts before every non-NULL value; the rest follows
/// [`Value`]'s total order.
fn order_cmp(order_by: &[(Expr, bool)], ka: &[Value], kb: &[Value]) -> Ordering {
    for (i, (_, asc)) in order_by.iter().enumerate() {
        let ord = ka[i].cmp(&kb[i]);
        let ord = if *asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// `order by`: a full stable sort, or — when a small `limit` makes it
/// profitable — an index-stabilized top-K selection (the operator then
/// reports itself as `topk`).
pub(crate) struct SortExec<'q> {
    child: Box<dyn RowSource + 'q>,
    order_by: &'q [(Expr, bool)],
    /// The statement's limit; enables the top-K path when small enough.
    /// Truncation itself stays with [`LimitExec`].
    limit: Option<usize>,
    label: &'static str,
    state: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> SortExec<'q> {
    pub(crate) fn new(
        child: Box<dyn RowSource + 'q>,
        order_by: &'q [(Expr, bool)],
        limit: Option<usize>,
    ) -> Self {
        SortExec {
            child,
            order_by,
            limit,
            label: "sort",
            state: None,
            batch_rows: super::BATCH_ROWS,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }
}

impl Executor for SortExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        self.label
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let rows = drain(&mut self.child, self.label, cx)?;
            let order_by = self.order_by;
            let mut rows = rows;
            // Comparing `(key, input index)` makes the comparator a total
            // order, so unstable selection/sorting over indices
            // reproduces the stable sort's ordering among equal keys.
            let cmp_idx =
                |a: usize, b: usize| order_cmp(order_by, &rows[a].0, &rows[b].0).then(a.cmp(&b));
            match self.limit {
                Some(k) if k > 0 && k < rows.len() / 4 => {
                    // Top-K: select the K smallest, then sort the prefix.
                    stats::bump(cx.ctx.stats, |s| s.topk_selected += 1);
                    self.label = "topk";
                    let mut cand: Vec<usize> = if let Some(ex) = Exchange::plan(cx.ctx, rows.len())
                    {
                        // Every global top-K row is within its own
                        // partition's top K, so the per-partition
                        // selections are a sound candidate superset.
                        ex.run(cx.ctx, |range| {
                            let mut part: Vec<usize> = range.collect();
                            if part.len() > k {
                                part.select_nth_unstable_by(k - 1, |&a, &b| cmp_idx(a, b));
                                part.truncate(k);
                            }
                            part
                        })
                        .concat()
                    } else {
                        (0..rows.len()).collect()
                    };
                    if cand.len() > k {
                        cand.select_nth_unstable_by(k - 1, |&a, &b| cmp_idx(a, b));
                        cand.truncate(k);
                    }
                    cand.sort_unstable_by(|&a, &b| cmp_idx(a, b));
                    rows = take_rows(rows, &cand);
                }
                _ => {
                    if let Some(ex) = Exchange::plan(cx.ctx, rows.len()) {
                        // Sorted per-partition runs, k-way merged under
                        // the same total order: exactly the stable sort.
                        let runs: Vec<Vec<usize>> = ex.run(cx.ctx, |range| {
                            let mut run: Vec<usize> = range.collect();
                            run.sort_unstable_by(|&a, &b| cmp_idx(a, b));
                            run
                        });
                        let order = merge_runs(runs, cmp_idx);
                        rows = take_rows(rows, &order);
                    } else {
                        rows.sort_by(|(ka, _), (kb, _)| order_cmp(order_by, ka, kb));
                    }
                }
            }
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}

impl RowSource for SortExec<'_> {
    fn output_columns(&self) -> &[String] {
        self.child.output_columns()
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.child.take_origins()
    }
}

/// `limit`: truncate to the first `n` rows. Drains its child fully
/// first — an error on a row past the cutoff must still surface.
pub(crate) struct LimitExec<'q> {
    child: Box<dyn RowSource + 'q>,
    n: usize,
    state: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> LimitExec<'q> {
    pub(crate) fn new(child: Box<dyn RowSource + 'q>, n: usize) -> Self {
        LimitExec { child, n, state: None, batch_rows: super::BATCH_ROWS }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }
}

impl Executor for LimitExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "limit"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let mut rows = drain(&mut self.child, "limit", cx)?;
            rows.truncate(self.n);
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}

impl RowSource for LimitExec<'_> {
    fn output_columns(&self) -> &[String] {
        self.child.output_columns()
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.child.take_origins()
    }
}
