//! The order-sensitive tail operators: `distinct`, `sort`/`topk`, and
//! `limit`. Each wraps a boxed [`RowSource`] (project or aggregate, or
//! another tail operator) and is itself a [`RowSource`], so the driver
//! stacks them conditionally.
//!
//! All three are blocking: `distinct` needs the full set to deduplicate
//! in first-occurrence order, `sort` needs it to sort, and `limit` must
//! drain its child fully even past the cutoff so a projection error on a
//! row beyond the limit still surfaces (the historical pipeline projected
//! every row before truncating).

use std::cmp::Ordering;
use std::collections::HashSet;

use setrules_sql::ast::Expr;
use setrules_storage::{TableId, TupleHandle, Value};

use crate::error::QueryError;
use crate::stats;

use super::{Batches, ExecCx, Executor, KeyedRow, RowSource};

/// Drain a boxed child fully, charging the rows to `name`'s input side.
fn drain(
    child: &mut Box<dyn RowSource + '_>,
    name: &'static str,
    cx: &mut ExecCx<'_, '_>,
) -> Result<Vec<KeyedRow>, QueryError> {
    let mut rows: Vec<KeyedRow> = Vec::new();
    while let Some(batch) = child.next_batch(cx)? {
        cx.rows_in(name, batch.len());
        rows.extend(batch);
    }
    Ok(rows)
}

/// `select distinct`: keep the first occurrence of each output row, in
/// input order.
pub(crate) struct DistinctExec<'q> {
    child: Box<dyn RowSource + 'q>,
    state: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> DistinctExec<'q> {
    pub(crate) fn new(child: Box<dyn RowSource + 'q>) -> Self {
        DistinctExec { child, state: None, batch_rows: super::BATCH_ROWS }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }
}

impl Executor for DistinctExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "distinct"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let rows = drain(&mut self.child, "distinct", cx)?;
            // Dedup on the projected row (not the sort key) with borrowed
            // slices, then retain by mask so survivors keep input order.
            let mut seen: HashSet<&[Value]> = HashSet::with_capacity(rows.len());
            let mask: Vec<bool> = rows.iter().map(|(_, row)| seen.insert(row.as_slice())).collect();
            let mut it = mask.into_iter();
            let mut rows = rows;
            rows.retain(|_| it.next().expect("mask matches rows"));
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}

impl RowSource for DistinctExec<'_> {
    fn output_columns(&self) -> &[String] {
        self.child.output_columns()
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.child.take_origins()
    }
}

/// Compare two order-by key vectors under the statement's `asc`/`desc`
/// flags. NULL sorts before every non-NULL value; the rest follows
/// [`Value`]'s total order.
fn order_cmp(order_by: &[(Expr, bool)], ka: &[Value], kb: &[Value]) -> Ordering {
    for (i, (_, asc)) in order_by.iter().enumerate() {
        let ord = ka[i].cmp(&kb[i]);
        let ord = if *asc { ord } else { ord.reverse() };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// `order by`: a full stable sort, or — when a small `limit` makes it
/// profitable — an index-stabilized top-K selection (the operator then
/// reports itself as `topk`).
pub(crate) struct SortExec<'q> {
    child: Box<dyn RowSource + 'q>,
    order_by: &'q [(Expr, bool)],
    /// The statement's limit; enables the top-K path when small enough.
    /// Truncation itself stays with [`LimitExec`].
    limit: Option<usize>,
    label: &'static str,
    state: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> SortExec<'q> {
    pub(crate) fn new(
        child: Box<dyn RowSource + 'q>,
        order_by: &'q [(Expr, bool)],
        limit: Option<usize>,
    ) -> Self {
        SortExec {
            child,
            order_by,
            limit,
            label: "sort",
            state: None,
            batch_rows: super::BATCH_ROWS,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }
}

impl Executor for SortExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        self.label
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let rows = drain(&mut self.child, self.label, cx)?;
            let order_by = self.order_by;
            let mut rows = rows;
            match self.limit {
                Some(k) if k > 0 && k < rows.len() / 4 => {
                    // Top-K: select the K smallest under (key, input index)
                    // — the index tiebreak reproduces the stable sort's
                    // ordering among equal keys — then sort the prefix.
                    stats::bump(cx.ctx.stats, |s| s.topk_selected += 1);
                    self.label = "topk";
                    let mut indexed: Vec<(usize, KeyedRow)> = rows.into_iter().enumerate().collect();
                    let cmp = |a: &(usize, KeyedRow), b: &(usize, KeyedRow)| {
                        order_cmp(order_by, &a.1 .0, &b.1 .0).then(a.0.cmp(&b.0))
                    };
                    indexed.select_nth_unstable_by(k - 1, cmp);
                    indexed.truncate(k);
                    indexed.sort_unstable_by(cmp);
                    rows = indexed.into_iter().map(|(_, kr)| kr).collect();
                }
                _ => {
                    rows.sort_by(|(ka, _), (kb, _)| order_cmp(order_by, ka, kb));
                }
            }
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}

impl RowSource for SortExec<'_> {
    fn output_columns(&self) -> &[String] {
        self.child.output_columns()
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.child.take_origins()
    }
}

/// `limit`: truncate to the first `n` rows. Drains its child fully
/// first — an error on a row past the cutoff must still surface.
pub(crate) struct LimitExec<'q> {
    child: Box<dyn RowSource + 'q>,
    n: usize,
    state: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> LimitExec<'q> {
    pub(crate) fn new(child: Box<dyn RowSource + 'q>, n: usize) -> Self {
        LimitExec { child, n, state: None, batch_rows: super::BATCH_ROWS }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }
}

impl Executor for LimitExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "limit"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let mut rows = drain(&mut self.child, "limit", cx)?;
            rows.truncate(self.n);
            self.state = Some(Batches::new(rows, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}

impl RowSource for LimitExec<'_> {
    fn output_columns(&self) -> &[String] {
        self.child.output_columns()
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.child.take_origins()
    }
}
