//! The filter operator: evaluates the full `where` predicate per
//! assembled combination.
//!
//! Pushdown and hash probes below are sound *prefilters*; this operator
//! is where three-valued `where` semantics are actually decided, a
//! combination surviving only on a definite `true`. It is blocking — the
//! parallel-WHERE eligibility decision needs the total combination count,
//! and the serial walk's error selection (earliest combination in
//! lexicographic order) must be reproduced exactly — so it drains its
//! child at open, judges every combination (serially, or partitioned on
//! the pool when the predicate is row-local), then emits the surviving
//! scope levels in batches. When tracing is on it also collects, per
//! surviving combination, the stored-tuple origins the select trace
//! needs.

use std::sync::Arc;

use setrules_sql::ast::Expr;
use setrules_storage::{TableId, TupleHandle, Value};

use crate::bindings::{Bindings, Frame, Level};
use crate::compile::{eval_compiled_predicate, CompiledExpr};
use crate::ctx::QueryCtx;
use crate::error::QueryError;
use crate::eval::eval_predicate;
use crate::parallel;
use crate::stats;

use super::exchange::Exchange;
use super::join::JoinExec;
use super::scan::FromItem;
use super::{Batches, ExecCx, Executor};

/// Serially evaluate one assembled combination: count it, run the
/// full predicate, and keep the level (plus origins) on *true*.
#[allow(clippy::too_many_arguments)]
fn consider(
    ctx: QueryCtx<'_>,
    items: &[FromItem],
    full_pred: Option<&CompiledExpr>,
    predicate: Option<&Expr>,
    want_trace: bool,
    cursor: &[usize],
    bindings: &mut Bindings,
    matching: &mut Vec<Level>,
    origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
) -> Result<(), QueryError> {
    stats::bump(ctx.stats, |s| s.join_combinations += 1);
    let level: Level = items
        .iter()
        .zip(cursor)
        .map(|(it, &i)| Frame {
            name: it.binding.clone(),
            columns: Arc::clone(&it.columns),
            row: it.rows[i].1.clone(),
        })
        .collect();
    bindings.push_level(level);
    let keep = match (full_pred, predicate) {
        (Some(cp), _) => eval_compiled_predicate(ctx, bindings, None, cp),
        (None, Some(p)) => eval_predicate(ctx, bindings, None, p),
        (None, None) => Ok(true),
    };
    let level = bindings.pop_level().expect("pushed above");
    if keep? {
        stats::bump(ctx.stats, |s| s.rows_matched += 1);
        if want_trace {
            origins.push(items.iter().zip(cursor).filter_map(|(it, &i)| it.rows[i].0).collect());
        }
        matching.push(level);
    }
    Ok(())
}

/// The WHERE pass may exchange only when the full predicate is
/// row-local; when an exchange was planned (thread budget, enough
/// combinations) but the predicate is not row-local (correlated
/// subquery needing the shared memo, interpreter fallback), that
/// counts an observable fallback.
fn parallel_where<'p>(
    ctx: QueryCtx<'_>,
    full_pred: &'p Option<Arc<CompiledExpr>>,
    combinations: usize,
) -> Option<(Exchange, &'p CompiledExpr)> {
    let cp = full_pred.as_deref()?;
    let ex = Exchange::plan(ctx, combinations)?;
    if parallel::is_rowlocal(cp) {
        Some((ex, cp))
    } else {
        Exchange::serial_fallback(ctx);
        None
    }
}

/// The `where` operator. Blocking: judges every combination at open,
/// then emits the surviving [`Level`]s in batches.
pub(crate) struct FilterExec<'q> {
    join: JoinExec<'q>,
    full_pred: Option<Arc<CompiledExpr>>,
    pred: Option<&'q Expr>,
    want_trace: bool,
    origins: Vec<Vec<(TableId, TupleHandle)>>,
    batch_rows: usize,
    state: Option<Batches<Level>>,
}

impl<'q> FilterExec<'q> {
    pub(crate) fn new(
        join: JoinExec<'q>,
        full_pred: Option<Arc<CompiledExpr>>,
        pred: Option<&'q Expr>,
        want_trace: bool,
    ) -> Self {
        FilterExec {
            join,
            full_pred,
            pred,
            want_trace,
            origins: Vec::new(),
            batch_rows: super::BATCH_ROWS,
            state: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// The materialized `from` items; valid after open (first pull).
    pub(crate) fn items(&self) -> &[FromItem] {
        self.join.items()
    }

    /// Take the per-surviving-combination origin handles (tracing only).
    pub(crate) fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        std::mem::take(&mut self.origins)
    }

    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Vec<Level>, QueryError> {
        let ctx = cx.ctx;
        let mut cursors: Vec<Vec<usize>> = Vec::new();
        while let Some(batch) = self.join.next_batch(cx)? {
            cx.rows_in("filter", batch.len());
            cursors.extend(batch);
        }
        let mut matching: Vec<Level> = Vec::new();
        if let Some((ex, cp)) = parallel_where(ctx, &self.full_pred, cursors.len()) {
            let items = self.join.items();
            let cursors_ref = &cursors;
            let want_trace = self.want_trace;
            // Workers build the surviving scope levels (and trace
            // origins) too — the serial tail after the exchange is just
            // the merge below.
            let verdicts = ex.judge(ctx, |i| {
                let cursor = &cursors_ref[i];
                let frames: Vec<&[Value]> = cursor
                    .iter()
                    .zip(items.iter())
                    .map(|(&r, it)| it.rows[r].1.as_slice())
                    .collect();
                if !parallel::eval_rowlocal_predicate(cp, &frames)? {
                    return Ok(None);
                }
                let level: Level = items
                    .iter()
                    .zip(cursor)
                    .map(|(it, &r)| Frame {
                        name: it.binding.clone(),
                        columns: Arc::clone(&it.columns),
                        row: it.rows[r].1.clone(),
                    })
                    .collect();
                let orig = want_trace.then(|| {
                    items.iter().zip(cursor).filter_map(|(it, &r)| it.rows[r].0).collect()
                });
                Ok(Some((level, orig)))
            });
            // Merge in partition order: counters first, then the kept
            // levels, stopping at the earliest error — reproducing the
            // serial combination walk exactly.
            for v in verdicts {
                stats::bump(ctx.stats, |s| {
                    s.join_combinations += v.combos;
                    s.rows_matched += v.matched;
                });
                for (level, orig) in v.kept {
                    if let Some(o) = orig {
                        self.origins.push(o);
                    }
                    matching.push(level);
                }
                if let Some(e) = v.err {
                    return Err(e);
                }
            }
        } else {
            for c in &cursors {
                consider(
                    ctx,
                    self.join.items(),
                    self.full_pred.as_deref(),
                    self.pred,
                    self.want_trace,
                    c,
                    cx.bindings,
                    &mut matching,
                    &mut self.origins,
                )?;
            }
        }
        Ok(matching)
    }
}

impl Executor for FilterExec<'_> {
    type Batch = Vec<Level>;

    fn name(&self) -> &'static str {
        "filter"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let matching = self.open(cx)?;
            self.state = Some(Batches::new(matching, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}
