//! The filter operator: evaluates the full `where` predicate per
//! assembled combination.
//!
//! Pushdown and hash probes below are sound *prefilters*; this operator
//! is where three-valued `where` semantics are actually decided, a
//! combination surviving only on a definite `true`. It is blocking — the
//! parallel-WHERE eligibility decision needs the total combination count,
//! and the serial walk's error selection (earliest combination in
//! lexicographic order) must be reproduced exactly — so it drains its
//! child at open, judges every combination (serially, or partitioned on
//! the pool when the predicate is row-local), then emits the surviving
//! scope levels in batches. When tracing is on it also collects, per
//! surviving combination, the stored-tuple origins the select trace
//! needs.

use std::sync::Arc;

use setrules_sql::ast::Expr;
use setrules_storage::{TableId, TupleHandle, Value};

use crate::bindings::{Bindings, Frame, Level};
use crate::compile::{eval_compiled_predicate, CompiledExpr};
use crate::ctx::QueryCtx;
use crate::error::QueryError;
use crate::eval::eval_predicate;
use crate::parallel;
use crate::stats;

use super::join::JoinExec;
use super::scan::FromItem;
use super::{Batches, ExecCx, Executor};

/// Serially evaluate one assembled combination: count it, run the
/// full predicate, and keep the level (plus origins) on *true*.
#[allow(clippy::too_many_arguments)]
fn consider(
    ctx: QueryCtx<'_>,
    items: &[FromItem],
    full_pred: Option<&CompiledExpr>,
    predicate: Option<&Expr>,
    want_trace: bool,
    cursor: &[usize],
    bindings: &mut Bindings,
    matching: &mut Vec<Level>,
    origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
) -> Result<(), QueryError> {
    stats::bump(ctx.stats, |s| s.join_combinations += 1);
    let level: Level = items
        .iter()
        .zip(cursor)
        .map(|(it, &i)| Frame {
            name: it.binding.clone(),
            columns: Arc::clone(&it.columns),
            row: it.rows[i].1.clone(),
        })
        .collect();
    bindings.push_level(level);
    let keep = match (full_pred, predicate) {
        (Some(cp), _) => eval_compiled_predicate(ctx, bindings, None, cp),
        (None, Some(p)) => eval_predicate(ctx, bindings, None, p),
        (None, None) => Ok(true),
    };
    let level = bindings.pop_level().expect("pushed above");
    if keep? {
        stats::bump(ctx.stats, |s| s.rows_matched += 1);
        if want_trace {
            origins.push(items.iter().zip(cursor).filter_map(|(it, &i)| it.rows[i].0).collect());
        }
        matching.push(level);
    }
    Ok(())
}

/// Record a combination a parallel WHERE pass already judged as
/// kept (counters were merged from the partition verdicts).
fn emit_kept(
    items: &[FromItem],
    cursor: &[usize],
    want_trace: bool,
    matching: &mut Vec<Level>,
    origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
) {
    let level: Level = items
        .iter()
        .zip(cursor)
        .map(|(it, &i)| Frame {
            name: it.binding.clone(),
            columns: Arc::clone(&it.columns),
            row: it.rows[i].1.clone(),
        })
        .collect();
    if want_trace {
        origins.push(items.iter().zip(cursor).filter_map(|(it, &i)| it.rows[i].0).collect());
    }
    matching.push(level);
}

/// The WHERE pass may run on the pool only when the full predicate
/// is row-local; with a thread budget and enough combinations, a
/// non-row-local predicate (correlated subquery needing the shared
/// memo, interpreter fallback) counts an observable fallback.
fn parallel_where<'p>(
    ctx: QueryCtx<'_>,
    full_pred: &'p Option<Arc<CompiledExpr>>,
    combinations: usize,
) -> Option<&'p CompiledExpr> {
    let cp = full_pred.as_deref()?;
    if ctx.threads <= 1 || combinations < parallel::PAR_THRESHOLD {
        return None;
    }
    if parallel::is_rowlocal(cp) {
        Some(cp)
    } else {
        stats::bump(ctx.stats, |s| s.serial_fallbacks += 1);
        None
    }
}

/// Merge partition verdicts in partition order: counters first,
/// then the kept combinations, stopping at the earliest error —
/// reproducing the serial combination walk exactly.
fn merge_verdicts(
    ctx: QueryCtx<'_>,
    items: &[FromItem],
    verdicts: Vec<parallel::ChunkVerdict>,
    cursor_of: impl Fn(usize) -> Vec<usize>,
    want_trace: bool,
    matching: &mut Vec<Level>,
    origins: &mut Vec<Vec<(TableId, TupleHandle)>>,
) -> Result<(), QueryError> {
    let parts = verdicts.len() as u64;
    if parts > 1 {
        stats::bump(ctx.stats, |s| {
            s.parallel_scans += 1;
            s.parallel_partitions += parts;
        });
    }
    for v in verdicts {
        stats::bump(ctx.stats, |s| {
            s.join_combinations += v.combos;
            s.rows_matched += v.matched;
        });
        for i in v.kept {
            emit_kept(items, &cursor_of(i), want_trace, matching, origins);
        }
        if let Some(e) = v.err {
            return Err(e);
        }
    }
    Ok(())
}

/// The `where` operator. Blocking: judges every combination at open,
/// then emits the surviving [`Level`]s in batches.
pub(crate) struct FilterExec<'q> {
    join: JoinExec<'q>,
    full_pred: Option<Arc<CompiledExpr>>,
    pred: Option<&'q Expr>,
    want_trace: bool,
    origins: Vec<Vec<(TableId, TupleHandle)>>,
    batch_rows: usize,
    state: Option<Batches<Level>>,
}

impl<'q> FilterExec<'q> {
    pub(crate) fn new(
        join: JoinExec<'q>,
        full_pred: Option<Arc<CompiledExpr>>,
        pred: Option<&'q Expr>,
        want_trace: bool,
    ) -> Self {
        FilterExec {
            join,
            full_pred,
            pred,
            want_trace,
            origins: Vec::new(),
            batch_rows: super::BATCH_ROWS,
            state: None,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// The materialized `from` items; valid after open (first pull).
    pub(crate) fn items(&self) -> &[FromItem] {
        self.join.items()
    }

    /// Take the per-surviving-combination origin handles (tracing only).
    pub(crate) fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        std::mem::take(&mut self.origins)
    }

    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Vec<Level>, QueryError> {
        let ctx = cx.ctx;
        let mut cursors: Vec<Vec<usize>> = Vec::new();
        while let Some(batch) = self.join.next_batch(cx)? {
            cx.rows_in("filter", batch.len());
            cursors.extend(batch);
        }
        let mut matching: Vec<Level> = Vec::new();
        if let Some(cp) = parallel_where(ctx, &self.full_pred, cursors.len()) {
            let items = self.join.items();
            let cursors_ref = &cursors;
            let verdicts = parallel::judge_chunks(cursors.len(), ctx.threads, |i| {
                let frames: Vec<&[Value]> = cursors_ref[i]
                    .iter()
                    .zip(items.iter())
                    .map(|(&r, it)| it.rows[r].1.as_slice())
                    .collect();
                parallel::eval_rowlocal_predicate(cp, &frames)
            });
            merge_verdicts(
                ctx,
                items,
                verdicts,
                |i| cursors[i].clone(),
                self.want_trace,
                &mut matching,
                &mut self.origins,
            )?;
        } else {
            for c in &cursors {
                consider(
                    ctx,
                    self.join.items(),
                    self.full_pred.as_deref(),
                    self.pred,
                    self.want_trace,
                    c,
                    cx.bindings,
                    &mut matching,
                    &mut self.origins,
                )?;
            }
        }
        Ok(matching)
    }
}

impl Executor for FilterExec<'_> {
    type Batch = Vec<Level>;

    fn name(&self) -> &'static str {
        "filter"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let matching = self.open(cx)?;
            self.state = Some(Batches::new(matching, self.batch_rows));
        }
        let batch = self.state.as_mut().expect("opened above").next();
        if let Some(b) = &batch {
            cx.batch_out(self.name(), b.len());
        }
        Ok(batch)
    }
}
