//! The aggregation operator (grouped pipeline).
//!
//! Two implementations live here, selected at open:
//!
//! * **Two-phase streaming aggregation** (compiled mode, when the whole
//!   grouped statement lowers to a [`GroupProgram`]): the filter's
//!   batches are accumulated as they stream — each batch exchanges into
//!   per-partition *partial* accumulators (group key, row count, and the
//!   collected non-NULL argument values of every aggregate call), merged
//!   into global groups in partition order — so group-by never
//!   materializes the full input. The *final* phase then evaluates
//!   `having`, the projection list, and the `order by` keys once per
//!   group (exchanged across groups when there are enough), folding each
//!   aggregate's merged value vector through the same
//!   [`fold_aggregate`] kernel the interpreter uses. Because partial
//!   vectors concatenate in partition order, fold order — and therefore
//!   float rounding, overflow sites, dedup order for `distinct`, and
//!   error selection — is exactly the serial encounter order.
//! * **The legacy drain-then-partition pass** (interpreted mode, or any
//!   statement the program builder refuses: correlated/outer references,
//!   subqueries next to aggregates, unresolvable names): drains the
//!   filter, partitions the combinations into groups in first-seen
//!   order, then evaluates per group through the interpreter.
//!
//! Error ordering is preserved across both paths: the filter is blocking
//! (all its errors surface on the first pull), wildcard expansion runs
//! right after that first pull, group-key errors surface in combination
//! order, and aggregate-argument errors are *recorded* per (group, leaf)
//! during the partial phase but raised only when the final phase actually
//! reaches that aggregate node — so Kleene short-circuits still skip them
//! exactly like the per-group interpreter walk.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Range;
use std::sync::Arc;

use setrules_sql::ast::{AggFunc, BinaryOp, Expr, SelectStmt, UnaryOp};
use setrules_storage::{TableId, TupleHandle, Value};

use crate::bindings::{Frame, Level};
use crate::compile::{compile, CompiledExpr, Layout, LayoutFrame};
use crate::ctx::ExecMode;
use crate::error::QueryError;
use crate::eval::{self, eval_expr, fold_aggregate};
use crate::parallel;
use crate::select::has_aggregate;

use super::exchange::Exchange;
use super::filter::FilterExec;
use super::project::expand_wildcards;
use super::{Batches, ExecCx, Executor, KeyedRow, RowSource};

/// One aggregate call site: the fold to run and its compiled row-local
/// argument (`None` is `count(*)`).
struct AggLeaf {
    func: AggFunc,
    distinct: bool,
    arg: Option<CompiledExpr>,
}

/// A group-level expression: row-local subtrees evaluate on the group's
/// representative row, [`GroupExpr::Agg`] nodes fold a leaf's merged
/// values, and the structural nodes mirror the interpreter node for node
/// (including Kleene short-circuiting), so a two-phase evaluation returns
/// bit-identical values and errors to the per-group interpreter walk.
enum GroupExpr {
    /// An aggregate-free row-local subtree (evaluated on the repr row).
    Row(CompiledExpr),
    /// Aggregate call number `i` of the program's leaf list.
    Agg(usize),
    Unary { op: UnaryOp, expr: Box<GroupExpr> },
    Binary { left: Box<GroupExpr>, op: BinaryOp, right: Box<GroupExpr> },
    IsNull { expr: Box<GroupExpr>, negated: bool },
    InList { expr: Box<GroupExpr>, list: Vec<GroupExpr>, negated: bool },
    Between { expr: Box<GroupExpr>, low: Box<GroupExpr>, high: Box<GroupExpr>, negated: bool },
    Like {
        expr: Box<GroupExpr>,
        pattern: Box<GroupExpr>,
        escape: Option<Box<GroupExpr>>,
        negated: bool,
    },
}

/// The whole grouped statement, lowered for two-phase evaluation:
/// row-local group keys, the aggregate leaves (in structural reach
/// order: `having`, then projections, then `order by`), and the
/// group-level expression trees. Built only when *every* piece
/// qualifies — anything else (outer references, subqueries, interpreter
/// fallbacks) keeps the legacy serial path.
pub(crate) struct GroupProgram {
    keys: Vec<CompiledExpr>,
    leaves: Vec<AggLeaf>,
    having: Option<GroupExpr>,
    proj: Vec<GroupExpr>,
    order: Vec<GroupExpr>,
}

/// Lower one expression to a [`GroupExpr`], collecting aggregate leaves.
/// `None` means the statement is ineligible for two-phase aggregation.
fn build_group_expr(e: &Expr, layout: &Layout, leaves: &mut Vec<AggLeaf>) -> Option<GroupExpr> {
    if !has_aggregate(e) {
        let ce = compile(e, layout);
        return parallel::is_rowlocal(&ce).then_some(GroupExpr::Row(ce));
    }
    match e {
        Expr::Aggregate { func, arg, distinct } => {
            let arg = match arg.as_deref() {
                Some(a) => {
                    let ce = compile(a, layout);
                    if !parallel::is_rowlocal(&ce) {
                        return None;
                    }
                    Some(ce)
                }
                None => None,
            };
            leaves.push(AggLeaf { func: *func, distinct: *distinct, arg });
            Some(GroupExpr::Agg(leaves.len() - 1))
        }
        Expr::Unary { op, expr } => Some(GroupExpr::Unary {
            op: *op,
            expr: Box::new(build_group_expr(expr, layout, leaves)?),
        }),
        Expr::Binary { left, op, right } => Some(GroupExpr::Binary {
            left: Box::new(build_group_expr(left, layout, leaves)?),
            op: *op,
            right: Box::new(build_group_expr(right, layout, leaves)?),
        }),
        Expr::IsNull { expr, negated } => Some(GroupExpr::IsNull {
            expr: Box::new(build_group_expr(expr, layout, leaves)?),
            negated: *negated,
        }),
        Expr::InList { expr, list, negated } => {
            let needle = build_group_expr(expr, layout, leaves)?;
            let mut items = Vec::with_capacity(list.len());
            for it in list {
                items.push(build_group_expr(it, layout, leaves)?);
            }
            Some(GroupExpr::InList { expr: Box::new(needle), list: items, negated: *negated })
        }
        Expr::Between { expr, low, high, negated } => Some(GroupExpr::Between {
            expr: Box::new(build_group_expr(expr, layout, leaves)?),
            low: Box::new(build_group_expr(low, layout, leaves)?),
            high: Box::new(build_group_expr(high, layout, leaves)?),
            negated: *negated,
        }),
        Expr::Like { expr, pattern, escape, negated } => Some(GroupExpr::Like {
            expr: Box::new(build_group_expr(expr, layout, leaves)?),
            pattern: Box::new(build_group_expr(pattern, layout, leaves)?),
            escape: match escape.as_deref() {
                Some(ex) => Some(Box::new(build_group_expr(ex, layout, leaves)?)),
                None => None,
            },
            negated: *negated,
        }),
        // Subqueries next to an aggregate (and anything not structural)
        // keep the interpreter path.
        _ => None,
    }
}

/// Lower a grouped statement for two-phase evaluation; `None` when any
/// piece is not expressible (the legacy path handles it). Shared by the
/// executor and the `plan:`/`parallel:` explain lines, so the printed
/// shape cannot drift from the executed one.
pub(crate) fn group_program(
    stmt: &SelectStmt,
    layout: &Layout,
    proj: &[(Expr, String)],
) -> Option<GroupProgram> {
    let mut keys = Vec::with_capacity(stmt.group_by.len());
    for g in &stmt.group_by {
        let ce = compile(g, layout);
        if !parallel::is_rowlocal(&ce) {
            return None;
        }
        keys.push(ce);
    }
    // Leaves collect in reach order: having, projections, order keys.
    let mut leaves = Vec::new();
    let having = match &stmt.having {
        Some(h) => Some(build_group_expr(h, layout, &mut leaves)?),
        None => None,
    };
    let mut proj_x = Vec::with_capacity(proj.len());
    for (e, _) in proj {
        proj_x.push(build_group_expr(e, layout, &mut leaves)?);
    }
    let mut order = Vec::with_capacity(stmt.order_by.len());
    for (e, _) in &stmt.order_by {
        order.push(build_group_expr(e, layout, &mut leaves)?);
    }
    Some(GroupProgram { keys, leaves, having, proj: proj_x, order })
}

/// Per-(group, leaf) partial state: the collected non-NULL argument
/// values in encounter order, or the first argument error (sticky — the
/// serial walk would have raised there and never looked further).
#[derive(Clone)]
enum LeafAcc {
    Vals(Vec<Value>),
    Err(QueryError),
}

/// One group discovered by a partial-phase partition, in local
/// first-seen order. `first` indexes the batch row that discovered it
/// (the representative-row candidate).
struct LocalGroup {
    key: Vec<Value>,
    first: usize,
    rows_n: u64,
    leaves: Vec<LeafAcc>,
}

/// A partition's partial-phase output: its local groups, and its first
/// group-key error (evaluation of the range stops there).
struct PartialOutput {
    groups: Vec<LocalGroup>,
    err: Option<QueryError>,
}

/// Phase 1 worker: accumulate one contiguous range of a batch into local
/// groups. Runs on pool workers (row-local expressions only).
fn accumulate_range(batch: &[Level], range: Range<usize>, prog: &GroupProgram) -> PartialOutput {
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<LocalGroup> = Vec::new();
    for i in range {
        let frames: Vec<&[Value]> = batch[i].iter().map(|f| f.row.as_slice()).collect();
        let mut key = Vec::with_capacity(prog.keys.len());
        let mut key_err = None;
        for k in &prog.keys {
            match parallel::eval_rowlocal(k, &frames) {
                Ok(v) => key.push(v),
                Err(e) => {
                    key_err = Some(e);
                    break;
                }
            }
        }
        if let Some(e) = key_err {
            return PartialOutput { groups, err: Some(e) };
        }
        let slot = match index.entry(key) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                groups.push(LocalGroup {
                    key: v.key().clone(),
                    first: i,
                    rows_n: 0,
                    leaves: vec![LeafAcc::Vals(Vec::new()); prog.leaves.len()],
                });
                *v.insert(groups.len() - 1)
            }
        };
        let g = &mut groups[slot];
        g.rows_n += 1;
        for (leaf, acc) in prog.leaves.iter().zip(g.leaves.iter_mut()) {
            // count(*) needs only rows_n; an already-errored leaf stays
            // errored (the serial fold would have stopped there).
            let (Some(arg), LeafAcc::Vals(vals)) = (&leaf.arg, &mut *acc) else { continue };
            match parallel::eval_rowlocal(arg, &frames) {
                Ok(v) => {
                    if !v.is_null() {
                        vals.push(v);
                    }
                }
                Err(e) => *acc = LeafAcc::Err(e),
            }
        }
    }
    PartialOutput { groups, err: None }
}

/// One global group after the partial phase: representative row (first
/// row of the group in serial order; `None` only for the synthetic empty
/// ungrouped group), total row count, and per-leaf merged state.
struct GroupData {
    repr: Option<Level>,
    rows_n: u64,
    leaves: Vec<LeafAcc>,
}

/// Merge one partition's partial output into the global groups, in
/// partition order: value vectors concatenate (serial encounter order),
/// errors are sticky earliest-first, and a partition's key error raises
/// after its preceding rows merged — exactly the serial walk's first
/// error.
fn merge_partial(
    batch: &[Level],
    out: PartialOutput,
    index: &mut HashMap<Vec<Value>, usize>,
    groups: &mut Vec<GroupData>,
    n_leaves: usize,
) -> Result<(), QueryError> {
    for lg in out.groups {
        let slot = match index.entry(lg.key) {
            Entry::Occupied(o) => *o.get(),
            Entry::Vacant(v) => {
                groups.push(GroupData {
                    repr: Some(batch[lg.first].clone()),
                    rows_n: 0,
                    leaves: vec![LeafAcc::Vals(Vec::new()); n_leaves],
                });
                *v.insert(groups.len() - 1)
            }
        };
        let g = &mut groups[slot];
        g.rows_n += lg.rows_n;
        for (dst, src) in g.leaves.iter_mut().zip(lg.leaves) {
            match (&mut *dst, src) {
                (LeafAcc::Err(_), _) => {}
                (LeafAcc::Vals(d), LeafAcc::Vals(mut s)) => d.append(&mut s),
                (d, LeafAcc::Err(e)) => *d = LeafAcc::Err(e),
            }
        }
    }
    match out.err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Final-phase evaluation of one group-level expression. Mirrors the
/// interpreter node for node (Kleene short-circuit included); reaching an
/// [`GroupExpr::Agg`] node raises that leaf's recorded error or folds its
/// merged values — so a short-circuited aggregate's error is skipped
/// exactly like the per-group interpreter walk.
fn eval_group_expr(
    ge: &GroupExpr,
    frames: &[&[Value]],
    rows_n: u64,
    accs: &[LeafAcc],
    leaves: &[AggLeaf],
) -> Result<Value, QueryError> {
    match ge {
        GroupExpr::Row(ce) => parallel::eval_rowlocal(ce, frames),
        GroupExpr::Agg(i) => match &accs[*i] {
            LeafAcc::Err(e) => Err(e.clone()),
            LeafAcc::Vals(vals) => match &leaves[*i].arg {
                // count(*) counts rows, including all-NULL ones.
                None => Ok(Value::Int(rows_n as i64)),
                Some(_) => fold_aggregate(leaves[*i].func, leaves[*i].distinct, vals.clone()),
            },
        },
        GroupExpr::Unary { op, expr } => {
            let v = eval_group_expr(expr, frames, rows_n, accs, leaves)?;
            eval::apply_unary(*op, &v)
        }
        GroupExpr::Binary { left, op, right } => {
            if matches!(op, BinaryOp::And | BinaryOp::Or) {
                let l = eval::truth(&eval_group_expr(left, frames, rows_n, accs, leaves)?)?;
                match (op, l) {
                    (BinaryOp::And, Some(false)) => return Ok(Value::Bool(false)),
                    (BinaryOp::Or, Some(true)) => return Ok(Value::Bool(true)),
                    _ => {}
                }
                let r = eval::truth(&eval_group_expr(right, frames, rows_n, accs, leaves)?)?;
                let out = match op {
                    BinaryOp::And => eval::kleene_and(l, r),
                    _ => eval::kleene_or(l, r),
                };
                return Ok(out.map_or(Value::Null, Value::Bool));
            }
            let l = eval_group_expr(left, frames, rows_n, accs, leaves)?;
            let r = eval_group_expr(right, frames, rows_n, accs, leaves)?;
            eval::apply_binary(&l, *op, &r)
        }
        GroupExpr::IsNull { expr, negated } => {
            let v = eval_group_expr(expr, frames, rows_n, accs, leaves)?;
            Ok(Value::Bool(v.is_null() != *negated))
        }
        GroupExpr::InList { expr, list, negated } => {
            let needle = eval_group_expr(expr, frames, rows_n, accs, leaves)?;
            let mut vals = Vec::with_capacity(list.len());
            for item in list {
                vals.push(eval_group_expr(item, frames, rows_n, accs, leaves)?);
            }
            eval::in_semantics(&needle, vals.iter(), *negated)
        }
        GroupExpr::Between { expr, low, high, negated } => {
            let v = eval_group_expr(expr, frames, rows_n, accs, leaves)?;
            let lo = eval_group_expr(low, frames, rows_n, accs, leaves)?;
            let hi = eval_group_expr(high, frames, rows_n, accs, leaves)?;
            eval::between_semantics(&v, &lo, &hi, *negated)
        }
        GroupExpr::Like { expr, pattern, escape, negated } => {
            let v = eval_group_expr(expr, frames, rows_n, accs, leaves)?;
            let p = eval_group_expr(pattern, frames, rows_n, accs, leaves)?;
            let esc = match escape {
                Some(ex) => Some(eval_group_expr(ex, frames, rows_n, accs, leaves)?),
                None => None,
            };
            eval::like_semantics(&v, &p, esc.as_ref(), *negated)
        }
    }
}

/// The grouped pipeline top: one output row per group that passes
/// `having`. Implements [`RowSource`].
pub(crate) struct AggregateExec<'q> {
    filter: FilterExec<'q>,
    stmt: &'q SelectStmt,
    columns: Vec<String>,
    proj: Vec<(Expr, String)>,
    label: &'static str,
    legacy: Option<Batches<Vec<Level>>>,
    phased: Option<Batches<KeyedRow>>,
    batch_rows: usize,
}

impl<'q> AggregateExec<'q> {
    pub(crate) fn new(filter: FilterExec<'q>, stmt: &'q SelectStmt) -> Self {
        AggregateExec {
            filter,
            stmt,
            columns: Vec::new(),
            proj: Vec::new(),
            label: "aggregate",
            legacy: None,
            phased: None,
            batch_rows: super::BATCH_ROWS,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// Pull the first batch (surfacing every filter error — the filter is
    /// blocking), expand wildcards, and pick the path: two-phase streaming
    /// when the compiled statement lowers to a [`GroupProgram`], the
    /// legacy drain-then-partition pass otherwise.
    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<(), QueryError> {
        let ctx = cx.ctx;
        let first = self.filter.next_batch(cx)?;
        self.proj = expand_wildcards(self.stmt, self.filter.items())?;
        self.columns = self.proj.iter().map(|(_, n)| n.clone()).collect();

        let prog = if ctx.mode == ExecMode::Compiled {
            // The same scope layout the filter evaluated in: outer scopes
            // plus one innermost level holding this query's items.
            let mut layout = cx.bindings.layout();
            layout.push_level(
                self.filter
                    .items()
                    .iter()
                    .map(|it| LayoutFrame {
                        name: it.binding.clone(),
                        columns: Arc::clone(&it.columns),
                    })
                    .collect(),
            );
            group_program(self.stmt, &layout, &self.proj)
        } else {
            None
        };
        match prog {
            Some(prog) => {
                self.label = "final-aggregate";
                let rows = self.run_two_phase(cx, &prog, first)?;
                self.phased = Some(Batches::new(rows, self.batch_rows));
            }
            None => {
                let groups = self.run_legacy(cx, first)?;
                self.legacy = Some(Batches::new(groups, self.batch_rows));
            }
        }
        Ok(())
    }

    /// Two-phase streaming aggregation: accumulate each filter batch into
    /// partial groups (exchanged when big enough), merge in partition
    /// order, then evaluate `having`/projection/`order by` per group
    /// (exchanged across groups when there are enough).
    fn run_two_phase(
        &mut self,
        cx: &mut ExecCx<'_, '_>,
        prog: &GroupProgram,
        first: Option<Vec<Level>>,
    ) -> Result<Vec<KeyedRow>, QueryError> {
        let ctx = cx.ctx;
        let n_leaves = prog.leaves.len();
        let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
        let mut groups: Vec<GroupData> = Vec::new();

        // Phase 1: streaming partial accumulation, batch by batch.
        let mut next = first;
        while let Some(batch) = next {
            cx.rows_in("partial-aggregate", batch.len());
            let outputs = if let Some(ex) = Exchange::plan(ctx, batch.len()) {
                let b = &batch;
                ex.run(ctx, |range| accumulate_range(b, range, prog))
            } else {
                vec![accumulate_range(&batch, 0..batch.len(), prog)]
            };
            for out in outputs {
                if !out.groups.is_empty() {
                    cx.batch_out("partial-aggregate", out.groups.len());
                }
                merge_partial(&batch, out, &mut index, &mut groups, n_leaves)?;
            }
            next = self.filter.next_batch(cx)?;
        }
        drop(index);
        // The ungrouped empty input still yields one row
        // (`select count(*) from empty` is 0): synthesize the group.
        if prog.keys.is_empty() && groups.is_empty() {
            groups.push(GroupData {
                repr: None,
                rows_n: 0,
                leaves: vec![LeafAcc::Vals(Vec::new()); n_leaves],
            });
        }

        // Phase 2: per-group evaluation in global first-seen order.
        if !groups.is_empty() {
            cx.rows_in("final-aggregate", groups.len());
        }
        // Representative bindings for the synthetic empty group: all-NULL
        // frames (the legacy path builds the same).
        let null_repr: Option<Level> = groups.iter().any(|g| g.repr.is_none()).then(|| {
            self.filter
                .items()
                .iter()
                .map(|it| Frame {
                    name: it.binding.clone(),
                    columns: Arc::clone(&it.columns),
                    row: vec![Value::Null; it.columns.len()],
                })
                .collect()
        });
        let eval_one = |g: &GroupData| -> Result<Option<KeyedRow>, QueryError> {
            let repr = match &g.repr {
                Some(l) => l,
                None => null_repr.as_ref().expect("built above for reprless groups"),
            };
            let frames: Vec<&[Value]> = repr.iter().map(|f| f.row.as_slice()).collect();
            if let Some(h) = &prog.having {
                let v = eval_group_expr(h, &frames, g.rows_n, &g.leaves, &prog.leaves)?;
                if eval::truth(&v)? != Some(true) {
                    return Ok(None);
                }
            }
            let mut out = Vec::with_capacity(prog.proj.len());
            for e in &prog.proj {
                out.push(eval_group_expr(e, &frames, g.rows_n, &g.leaves, &prog.leaves)?);
            }
            let mut key = Vec::with_capacity(prog.order.len());
            for e in &prog.order {
                key.push(eval_group_expr(e, &frames, g.rows_n, &g.leaves, &prog.leaves)?);
            }
            Ok(Some((key, out)))
        };
        let mut rows: Vec<KeyedRow> = Vec::new();
        if let Some(ex) = Exchange::plan(ctx, groups.len()) {
            let gs = &groups;
            let verdicts = ex.judge(ctx, |i| eval_one(&gs[i]));
            for v in verdicts {
                rows.extend(v.kept);
                if let Some(e) = v.err {
                    return Err(e);
                }
            }
        } else {
            for g in &groups {
                if let Some(r) = eval_one(g)? {
                    rows.push(r);
                }
            }
        }
        Ok(rows)
    }

    /// Drain the filter and partition the matching combinations into
    /// groups in first-seen order — the historical pass, kept verbatim as
    /// the interpreted-mode oracle and the fallback for statements the
    /// program builder refuses.
    fn run_legacy(
        &mut self,
        cx: &mut ExecCx<'_, '_>,
        first: Option<Vec<Level>>,
    ) -> Result<Vec<Vec<Level>>, QueryError> {
        let ctx = cx.ctx;
        let mut matching: Vec<Level> = Vec::new();
        let mut next = first;
        while let Some(batch) = next {
            cx.rows_in("aggregate", batch.len());
            matching.extend(batch);
            next = self.filter.next_batch(cx)?;
        }

        // Partition matching rows into groups.
        let mut group_rows: Vec<Vec<Level>> = Vec::new();
        if self.stmt.group_by.is_empty() {
            group_rows.push(matching);
        } else {
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for level in matching {
                cx.bindings.push_level(level);
                let mut key = Vec::with_capacity(self.stmt.group_by.len());
                let mut key_err = None;
                for g in &self.stmt.group_by {
                    match eval_expr(ctx, cx.bindings, None, g) {
                        Ok(v) => key.push(v),
                        Err(e) => {
                            key_err = Some(e);
                            break;
                        }
                    }
                }
                let level = cx.bindings.pop_level().expect("pushed above");
                if let Some(e) = key_err {
                    return Err(e);
                }
                let slot = *index.entry(key).or_insert_with(|| {
                    group_rows.push(Vec::new());
                    group_rows.len() - 1
                });
                group_rows[slot].push(level);
            }
        }
        Ok(group_rows)
    }
}

impl Executor for AggregateExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        self.label
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.legacy.is_none() && self.phased.is_none() {
            self.open(cx)?;
        }
        if let Some(state) = &mut self.phased {
            let batch = state.next();
            if let Some(b) = &batch {
                cx.batch_out(self.label, b.len());
            }
            return Ok(batch);
        }
        let ctx = cx.ctx;
        // A group can be filtered out by `having`, so keep pulling group
        // batches until one yields at least one output row.
        while let Some(groups) = self.legacy.as_mut().expect("opened above").next() {
            let mut out_batch: Vec<KeyedRow> = Vec::new();
            for rows in groups {
                // Representative bindings for non-aggregate expressions:
                // the first row of the group, or all-NULL frames for the
                // empty ungrouped case (`select count(*) from empty`).
                let repr: Level = match rows.first() {
                    Some(l) => l.clone(),
                    None => self
                        .filter
                        .items()
                        .iter()
                        .map(|it| Frame {
                            name: it.binding.clone(),
                            columns: std::sync::Arc::clone(&it.columns),
                            row: vec![Value::Null; it.columns.len()],
                        })
                        .collect(),
                };
                cx.bindings.push_level(repr);
                let result = (|| -> Result<Option<KeyedRow>, QueryError> {
                    if let Some(h) = &self.stmt.having {
                        let v = eval_expr(ctx, cx.bindings, Some(&rows), h)?;
                        if crate::eval::truth(&v)? != Some(true) {
                            return Ok(None);
                        }
                    }
                    let mut out = Vec::with_capacity(self.proj.len());
                    for (e, _) in &self.proj {
                        out.push(eval_expr(ctx, cx.bindings, Some(&rows), e)?);
                    }
                    let mut key = Vec::with_capacity(self.stmt.order_by.len());
                    for (e, _) in &self.stmt.order_by {
                        key.push(eval_expr(ctx, cx.bindings, Some(&rows), e)?);
                    }
                    Ok(Some((key, out)))
                })();
                cx.bindings.pop_level();
                if let Some(pair) = result? {
                    out_batch.push(pair);
                }
            }
            if !out_batch.is_empty() {
                cx.batch_out(self.label, out_batch.len());
                return Ok(Some(out_batch));
            }
        }
        Ok(None)
    }
}

impl RowSource for AggregateExec<'_> {
    fn output_columns(&self) -> &[String] {
        &self.columns
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.filter.take_origins()
    }
}
