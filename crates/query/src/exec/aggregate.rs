//! The aggregation operator (grouped pipeline): partitions the surviving
//! combinations into groups (first-seen order), then evaluates `having`,
//! the projection list, and the `order by` keys once per group.
//!
//! Blocking by nature — a group's aggregate needs every one of its rows —
//! it drains the filter at open, expands wildcards (after the filter, for
//! error ordering), and partitions immediately, so a `group by` key error
//! surfaces at open in combination order. Per-group evaluation then
//! streams in batches; a group failing `having` yields no row, so batches
//! regroup until at least one row is produced.

use std::collections::HashMap;

use setrules_sql::ast::{Expr, SelectStmt};
use setrules_storage::{TableId, TupleHandle, Value};

use crate::bindings::{Frame, Level};
use crate::error::QueryError;
use crate::eval::eval_expr;

use super::filter::FilterExec;
use super::project::expand_wildcards;
use super::{Batches, ExecCx, Executor, KeyedRow, RowSource};

/// The grouped pipeline top: one output row per group that passes
/// `having`. Implements [`RowSource`].
pub(crate) struct AggregateExec<'q> {
    filter: FilterExec<'q>,
    stmt: &'q SelectStmt,
    columns: Vec<String>,
    proj: Vec<(Expr, String)>,
    state: Option<Batches<Vec<Level>>>,
    batch_rows: usize,
}

impl<'q> AggregateExec<'q> {
    pub(crate) fn new(filter: FilterExec<'q>, stmt: &'q SelectStmt) -> Self {
        AggregateExec {
            filter,
            stmt,
            columns: Vec::new(),
            proj: Vec::new(),
            state: None,
            batch_rows: super::BATCH_ROWS,
        }
    }

    #[cfg(test)]
    pub(crate) fn with_batch_rows(mut self, batch_rows: usize) -> Self {
        self.batch_rows = batch_rows;
        self
    }

    /// Drain the filter, expand wildcards, and partition the matching
    /// combinations into groups in first-seen order.
    fn open(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Vec<Vec<Level>>, QueryError> {
        let ctx = cx.ctx;
        let mut matching: Vec<Level> = Vec::new();
        while let Some(batch) = self.filter.next_batch(cx)? {
            cx.rows_in("aggregate", batch.len());
            matching.extend(batch);
        }
        self.proj = expand_wildcards(self.stmt, self.filter.items())?;
        self.columns = self.proj.iter().map(|(_, n)| n.clone()).collect();

        // Partition matching rows into groups.
        let mut group_rows: Vec<Vec<Level>> = Vec::new();
        if self.stmt.group_by.is_empty() {
            group_rows.push(matching);
        } else {
            let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
            for level in matching {
                cx.bindings.push_level(level);
                let mut key = Vec::with_capacity(self.stmt.group_by.len());
                let mut key_err = None;
                for g in &self.stmt.group_by {
                    match eval_expr(ctx, cx.bindings, None, g) {
                        Ok(v) => key.push(v),
                        Err(e) => {
                            key_err = Some(e);
                            break;
                        }
                    }
                }
                let level = cx.bindings.pop_level().expect("pushed above");
                if let Some(e) = key_err {
                    return Err(e);
                }
                let slot = *index.entry(key).or_insert_with(|| {
                    group_rows.push(Vec::new());
                    group_rows.len() - 1
                });
                group_rows[slot].push(level);
            }
        }
        Ok(group_rows)
    }
}

impl Executor for AggregateExec<'_> {
    type Batch = Vec<KeyedRow>;

    fn name(&self) -> &'static str {
        "aggregate"
    }

    fn next_batch(&mut self, cx: &mut ExecCx<'_, '_>) -> Result<Option<Self::Batch>, QueryError> {
        if self.state.is_none() {
            let group_rows = self.open(cx)?;
            self.state = Some(Batches::new(group_rows, self.batch_rows));
        }
        let ctx = cx.ctx;
        // A group can be filtered out by `having`, so keep pulling group
        // batches until one yields at least one output row.
        while let Some(groups) = self.state.as_mut().expect("opened above").next() {
            let mut out_batch: Vec<KeyedRow> = Vec::new();
            for rows in groups {
                // Representative bindings for non-aggregate expressions:
                // the first row of the group, or all-NULL frames for the
                // empty ungrouped case (`select count(*) from empty`).
                let repr: Level = match rows.first() {
                    Some(l) => l.clone(),
                    None => self
                        .filter
                        .items()
                        .iter()
                        .map(|it| Frame {
                            name: it.binding.clone(),
                            columns: std::sync::Arc::clone(&it.columns),
                            row: vec![Value::Null; it.columns.len()],
                        })
                        .collect(),
                };
                cx.bindings.push_level(repr);
                let result = (|| -> Result<Option<KeyedRow>, QueryError> {
                    if let Some(h) = &self.stmt.having {
                        let v = eval_expr(ctx, cx.bindings, Some(&rows), h)?;
                        if crate::eval::truth(&v)? != Some(true) {
                            return Ok(None);
                        }
                    }
                    let mut out = Vec::with_capacity(self.proj.len());
                    for (e, _) in &self.proj {
                        out.push(eval_expr(ctx, cx.bindings, Some(&rows), e)?);
                    }
                    let mut key = Vec::with_capacity(self.stmt.order_by.len());
                    for (e, _) in &self.stmt.order_by {
                        key.push(eval_expr(ctx, cx.bindings, Some(&rows), e)?);
                    }
                    Ok(Some((key, out)))
                })();
                cx.bindings.pop_level();
                if let Some(pair) = result? {
                    out_batch.push(pair);
                }
            }
            if !out_batch.is_empty() {
                cx.batch_out(self.name(), out_batch.len());
                return Ok(Some(out_batch));
            }
        }
        Ok(None)
    }
}

impl RowSource for AggregateExec<'_> {
    fn output_columns(&self) -> &[String] {
        &self.columns
    }

    fn take_origins(&mut self) -> Vec<Vec<(TableId, TupleHandle)>> {
        self.filter.take_origins()
    }
}
